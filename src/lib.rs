//! # smdb — A Framework for Self-Managing Database Systems
//!
//! Facade crate re-exporting the public API of the whole workspace. See
//! the repository `README.md` for an architecture overview and
//! `DESIGN.md` for the system inventory.
//!
//! The workspace reproduces Kossmann & Schlosser, *"A Framework for
//! Self-Managing Database Systems"*, ICDE Workshops 2019:
//!
//! * [`storage`] — a Hyrise-like in-memory chunked column store,
//! * [`query`] — queries, execution, and the query plan cache,
//! * [`cost`] — logical and calibrated (learned) cost models, what-if costing,
//! * [`forecast`] — the workload predictor (clustering, analyzers, scenarios),
//! * [`lp`] — simplex + branch-and-bound ILP and the feature-ordering model,
//! * [`core`] — the framework itself (driver, organizer, tuner pipeline),
//! * [`runtime`] — the online serving runtime (worker pool, background
//!   tuning thread, fault injection and rollback),
//! * [`workload`] — deterministic data and workload generators,
//! * [`obs`] — decision-trail observability (tracing spans, metrics,
//!   the flight recorder every tuning decision lands in).
//!
//! ```
//! use std::sync::Arc;
//! use smdb::core::driver::Driver;
//! use smdb::core::FeatureKind;
//! use smdb::cost::CalibratedCostModel;
//! use smdb::query::{Database, Query};
//! use smdb::storage::value::ColumnValues;
//! use smdb::storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};
//!
//! // A small table wrapped into a self-manageable database.
//! let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
//! let table = Table::from_columns(
//!     "events",
//!     schema,
//!     vec![ColumnValues::Int((0..1000).map(|i| i % 50).collect())],
//!     250,
//! )
//! .unwrap();
//! let mut engine = StorageEngine::default();
//! let table_id = engine.create_table(table).unwrap();
//! let db = Database::new(engine);
//!
//! // Attach the self-management framework.
//! let driver = Driver::builder(db.clone())
//!     .learned_estimator(Arc::new(CalibratedCostModel::new()))
//!     .features(vec![FeatureKind::Indexing])
//!     .build();
//!
//! // Serve a bucket of traffic; the plan cache observes it.
//! let queries: Vec<Query> = (0..40)
//!     .map(|i| {
//!         Query::new(
//!             table_id,
//!             "events",
//!             vec![ScanPredicate::eq(smdb::common::ColumnId(0), i % 50)],
//!             None,
//!             "point",
//!         )
//!     })
//!     .collect();
//! driver.run_bucket(&queries).unwrap();
//!
//! // Tune: the driver proposes, gates and applies configuration changes.
//! let report = driver.force_tune().unwrap();
//! assert!(report.applied_actions > 0);
//! assert!(!db.engine().current_config().indexes.is_empty());
//! ```

pub use smdb_common as common;
pub use smdb_core as core;
pub use smdb_cost as cost;
pub use smdb_durable as durable;
pub use smdb_forecast as forecast;
pub use smdb_lp as lp;
pub use smdb_obs as obs;
pub use smdb_query as query;
pub use smdb_runtime as runtime;
pub use smdb_storage as storage;
pub use smdb_workload as workload;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use smdb_common::{ChunkColumnRef, Cost, LogicalTime};
}
