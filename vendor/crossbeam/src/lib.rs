//! Offline shim for `crossbeam`.
//!
//! Only `crossbeam::thread::scope` is consumed by this workspace (the
//! assessor's candidate fan-out); std has had scoped threads since 1.63,
//! so the shim adapts the call signature: crossbeam passes the scope
//! handle back into each spawned closure and returns `Result` (Err when a
//! child panicked), while std re-raises child panics at the end of the
//! scope. Under the shim a child panic therefore propagates as a panic
//! out of `scope` rather than as `Err`, which is equivalent for callers
//! that `expect` the result.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads tied to the enclosing scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// (crossbeam's signature) so nested spawns remain possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing from the caller's stack
    /// is allowed; all spawned threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u32; 4];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .expect("no panics");
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }
}
