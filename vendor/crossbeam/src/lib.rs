//! Offline shim for `crossbeam`.
//!
//! Two slices of crossbeam are consumed by this workspace:
//! `crossbeam::thread::scope` (the assessor's candidate fan-out) and
//! `crossbeam::deque::Injector` (the scan pool's shared work queue).
//!
//! Std has had scoped threads since 1.63, so the `thread` shim adapts
//! the call signature: crossbeam passes the scope handle back into each
//! spawned closure and returns `Result` (Err when a child panicked),
//! while std re-raises child panics at the end of the scope. Under the
//! shim a child panic therefore propagates as a panic out of `scope`
//! rather than as `Err`, which is equivalent for callers that `expect`
//! the result.
//!
//! The `deque` shim keeps crossbeam's `Injector` / `Steal` API but backs
//! it with a mutexed ring buffer instead of a lock-free deque — the
//! workspace's consumers batch work into morsels, so queue operations
//! are far off the hot path and the simple backend keeps the shim
//! std-only and obviously correct.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle for spawning threads tied to the enclosing scope.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// (crossbeam's signature) so nested spawns remain possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which borrowing from the caller's stack
    /// is allowed; all spawned threads are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// A shared FIFO work queue, mirroring `crossbeam::deque::Injector`.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Outcome of a steal attempt, mirroring `crossbeam::deque::Steal`.
    /// The mutexed backend never loses a race mid-pop, so `Retry` is
    /// never produced — it exists for API compatibility.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; try again (unused by this backend).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A FIFO injector queue shared by any number of producers and
    /// stealers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// An empty queue.
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task at the back.
        pub fn push(&self, task: T) {
            match self.queue.lock() {
                Ok(mut q) => q.push_back(task),
                Err(poisoned) => poisoned.into_inner().push_back(task),
            }
        }

        /// Steals the task at the front.
        pub fn steal(&self) -> Steal<T> {
            let mut q = match self.queue.lock() {
                Ok(q) => q,
                Err(poisoned) => poisoned.into_inner(),
            };
            match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            match self.queue.lock() {
                Ok(q) => q.is_empty(),
                Err(poisoned) => poisoned.into_inner().is_empty(),
            }
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            match self.queue.lock() {
                Ok(q) => q.len(),
                Err(poisoned) => poisoned.into_inner().len(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u32; 4];
        super::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .expect("no panics");
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn injector_is_fifo_and_shared() {
        let q = super::deque::Injector::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal(), super::deque::Steal::Success(1));
        assert_eq!(q.steal().success(), Some(2));
        assert_eq!(q.steal(), super::deque::Steal::<i32>::Empty);

        let shared = std::sync::Arc::new(super::deque::Injector::new());
        super::thread::scope(|scope| {
            for i in 0..4 {
                let q = std::sync::Arc::clone(&shared);
                scope.spawn(move |_| q.push(i));
            }
        })
        .expect("no panics");
        let mut got: Vec<i32> = std::iter::from_fn(|| shared.steal().success()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
