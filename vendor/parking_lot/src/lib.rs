//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a writer panicked) is recovered by
//! taking the inner guard — matching parking_lot, which has no poisoning
//! concept at all.

use std::sync;

/// Mutual exclusion lock with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// Readers-writer lock with parking_lot's panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new readers-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
