//! Offline shim for `criterion`.
//!
//! The benches compile against (and can run under) this std-only stand-in:
//! it executes each closure for a short fixed sampling schedule and prints
//! mean wall-clock time per iteration. There is no statistical analysis,
//! plotting, or baseline comparison — the point is that `cargo test`
//! still type-checks every bench target and `cargo bench` produces
//! usable relative numbers without the network registry.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement state handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the sampling schedule.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_iters: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_iters: self.sample_iters,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_one(name, self.sample_iters, f);
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.name), self.sample_iters, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, self.sample_iters, |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warm-up + ensures the closure calls iter at least once
    b.iters = iters.max(1);
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    println!("bench {name:<48} {:>12.3} µs/iter", per_iter * 1e6);
}

/// Collects bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut ran = 0u64;
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        group.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(ran >= 3);
    }
}
