//! Offline shim for `proptest`.
//!
//! Implements exactly the strategy surface this workspace's property
//! tests consume — numeric ranges, tuples, `collection::vec`,
//! `option::of`, and `prop_map` — plus the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Cases are generated from a
//! seed derived deterministically from the test's module path and name,
//! so every run explores the same inputs (seed-determinism is a repo
//! invariant enforced by `smdb-lint`). Failing cases print their case
//! index and panic; there is no shrinking.

pub mod strategy;

pub mod test_runner {
    //! Runner configuration and the deterministic case generator.

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator handed to strategies (SplitMix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream for one test case from the test's fully
        /// qualified name and the case index (FNV-1a over the name).
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw below `bound` (`bound ≥ 1`).
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact length or a
    /// half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Some` (3 in 4 draws) or `None`.
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs one `proptest!`-style test body over generated cases.
///
/// Not called directly — the [`proptest!`] macro expands to this.
pub fn run_cases(
    config: &test_runner::ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut test_runner::TestRng, u32),
) {
    for case in 0..config.cases {
        body(&mut test_runner::TestRng::for_case(test_name, case), case);
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                $crate::run_cases(&__config, __name, |__rng, __case| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __run = || -> () { $body };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)).is_err() {
                        panic!("property {} failed at deterministic case {}", __name, __case);
                    }
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("shim::bounds", 0);
        for _ in 0..2048 {
            let v = (-3i64..9).generate(&mut rng);
            assert!((-3..9).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let strat = crate::collection::vec((0u32..4, 0.0f64..1.0), 2..7).prop_map(|v| v.len());
        let mut rng = TestRng::for_case("shim::compose", 1);
        for _ in 0..256 {
            let len = strat.generate(&mut rng);
            assert!((2..7).contains(&len));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("shim::det", 7);
        let mut b = TestRng::for_case("shim::det", 7);
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0i64..10, 0i64..10), scale in 1usize..4) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(scale.min(3), scale);
        }
    }
}
