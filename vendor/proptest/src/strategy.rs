//! The [`Strategy`] trait and the built-in strategies over ranges,
//! tuples, and mapped values.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is a pure deterministic function of the [`TestRng`] stream.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.below(span.max(1)) as $wide) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                debug_assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(rng.below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
