//! Offline shim for the `rand` crate.
//!
//! The build environment has no network registry, so this workspace vendors
//! the *exact* API subset it consumes: [`rngs::StdRng`], [`SeedableRng`],
//! and [`RngExt`] with `random`, `random_range`, and `random_bool`. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! bit-for-bit across platforms and runs, which is precisely what the
//! repo's seed-determinism invariant (lint rule L2) requires.
//!
//! Anything the real crate offers beyond this surface (thread_rng,
//! OS entropy, distributions) is deliberately absent: entropy-based
//! constructors would defeat reproducibility, and the lint pass bans them.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly distributed `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// State initialisation runs the seed through four rounds of the
    /// SplitMix64 finalizer, as recommended by the xoshiro authors, so
    /// nearby seeds produce uncorrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible uniformly at random by [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's contract.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Multiply-shift bounded draw (Lemire); span ≥ 1.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty random_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::random(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods, mirroring `rand::Rng` / `rand::RngExt`.
pub trait RngExt: RngCore {
    /// Uniform value of type `T` (integers over their full domain,
    /// `f64` over `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value from the given range.
    fn random_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept so `use rand::Rng` keeps compiling against the shim.
pub use crate::RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..32).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(xs[0], c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..4096 {
            let v: i64 = rng.random_range(-5..17);
            assert!((-5..17).contains(&v));
            let u: usize = rng.random_range(0..=9);
            assert!(u <= 9);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!(0..64).any(|_| rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
    }
}
