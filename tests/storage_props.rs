//! Property-based tests for the storage substrate: encoding round-trips,
//! filter agreement across encodings and indexes, configuration
//! diff/apply round-trips, and engine scan consistency.

use proptest::prelude::*;

use smdb::common::{ChunkColumnRef, ColumnId};
use smdb::storage::encoding::{EncodingKind, Segment};
use smdb::storage::index::{ChunkIndex, IndexKind};
use smdb::storage::value::ColumnValues;
use smdb::storage::{ConfigAction, ConfigInstance, PredicateOp, ScanPredicate, Tier};

fn int_column() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-50i64..50, 0..200)
}

fn predicate() -> impl Strategy<Value = ScanPredicate> {
    (0i64..3, -60i64..60, -60i64..60).prop_map(|(kind, a, b)| match kind {
        0 => ScanPredicate::eq(ColumnId(0), a),
        1 => ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, a),
        _ => ScanPredicate::between(ColumnId(0), a.min(b), a.max(b)),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encodings_roundtrip(data in int_column()) {
        let col = ColumnValues::Int(data);
        for kind in EncodingKind::ALL {
            let seg = Segment::encode(&col, kind);
            prop_assert_eq!(seg.decode(), col.clone(), "roundtrip {}", kind);
            prop_assert_eq!(seg.len(), col.len());
        }
    }

    #[test]
    fn filters_agree_across_encodings(data in int_column(), pred in predicate()) {
        let col = ColumnValues::Int(data);
        let reference = {
            let seg = Segment::encode(&col, EncodingKind::Unencoded);
            let mut out = Vec::new();
            seg.filter(&pred, &mut out);
            out
        };
        for kind in EncodingKind::ALL {
            let seg = Segment::encode(&col, kind);
            let mut out = Vec::new();
            seg.filter(&pred, &mut out);
            prop_assert_eq!(&out, &reference, "encoding {} disagrees", kind);
        }
    }

    #[test]
    fn indexes_agree_with_scans(data in int_column(), pred in predicate()) {
        let col = ColumnValues::Int(data);
        let seg = Segment::encode(&col, EncodingKind::Unencoded);
        let mut scan = Vec::new();
        seg.filter(&pred, &mut scan);
        for kind in IndexKind::ALL {
            if !kind.supports(pred.op) {
                continue;
            }
            let idx = ChunkIndex::build(kind, &seg);
            let mut probed = Vec::new();
            prop_assert!(idx.probe(&pred, &mut probed));
            probed.sort_unstable();
            prop_assert_eq!(&probed, &scan, "index {} disagrees", kind);
        }
    }

    #[test]
    fn memory_bytes_positive_and_ordered(data in proptest::collection::vec(0i64..8, 1..300)) {
        // Low-cardinality data: dictionary must not exceed raw.
        let col = ColumnValues::Int(data);
        let raw = Segment::encode(&col, EncodingKind::Unencoded).memory_bytes();
        let dict = Segment::encode(&col, EncodingKind::Dictionary).memory_bytes();
        prop_assert!(raw > 0);
        prop_assert!(dict <= raw + 64, "dict {dict} vs raw {raw}");
    }
}

/// Strategy for small random configurations.
fn config() -> impl Strategy<Value = ConfigInstance> {
    (
        proptest::collection::vec((0u32..2, 0u16..3, 0u32..4, 0usize..2), 0..6),
        proptest::collection::vec((0u32..2, 0u16..3, 0u32..4, 0usize..3), 0..6),
        proptest::collection::vec((0u32..2, 0u32..4, 0usize..2), 0..4),
        0.0f64..512.0,
    )
        .prop_map(|(indexes, encodings, placements, buffer)| {
            let mut c = ConfigInstance::default();
            for (t, col, k, kind) in indexes {
                c.indexes.insert(
                    ChunkColumnRef::new(t, col, k),
                    [IndexKind::Hash, IndexKind::BTree][kind],
                );
            }
            for (t, col, k, enc) in encodings {
                c.encodings.insert(
                    ChunkColumnRef::new(t, col, k),
                    [
                        EncodingKind::Dictionary,
                        EncodingKind::RunLength,
                        EncodingKind::FrameOfReference,
                    ][enc],
                );
            }
            for (t, k, tier) in placements {
                c.placements.insert(
                    (smdb::common::TableId(t), smdb::common::ChunkId(k)),
                    [Tier::Warm, Tier::Cold][tier],
                );
            }
            c.knobs.buffer_pool_mb = buffer;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diff_apply_roundtrips(from in config(), to in config()) {
        let actions = from.diff(&to);
        let mut replayed = from.clone();
        for a in &actions {
            replayed.apply(a);
        }
        prop_assert_eq!(&replayed, &to);
        // Diff to self is empty; diff is minimal in the sense that no
        // action list shorter than 0 reaches an unequal config.
        prop_assert!(to.diff(&to).is_empty());
        // Fingerprints agree iff configs agree.
        prop_assert_eq!(from == to, from.fingerprint() == to.fingerprint());
    }

    #[test]
    fn diff_never_contains_noop_actions(from in config(), to in config()) {
        let mut state = from.clone();
        for a in from.diff(&to) {
            let before = state.fingerprint();
            state.apply(&a);
            // Every action must change the configuration (minimality).
            let changed = state.fingerprint() != before
                || matches!(a, ConfigAction::CreateIndex { .. }); // kind replacement keeps key
            prop_assert!(changed, "no-op action {a} in diff");
        }
    }
}
