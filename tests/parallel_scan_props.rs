//! Morsel-driven parallel scan properties: results, total simulated
//! cost and the soak digest must be *bit-identical* across scan-thread
//! counts and morsel sizes, and a heavy scan on the shared pool must
//! never starve light queries (caller-helps-first scheduling bounds
//! their tail latency).

mod harness;

use std::sync::Arc;

use proptest::prelude::*;

use smdb::common::{ColumnId, Cost, TableId};
use smdb::query::{Database, Query};
use smdb::runtime::{Runtime, RuntimeConfig};
use smdb::storage::value::ColumnValues;
use smdb::storage::{
    Aggregate, AggregateOp, ColumnDef, DataType, PredicateOp, ScanPool, ScanPredicate, Schema,
    StorageEngine, Table,
};

/// Thread counts the determinism contract is checked over.
const THREADS: [usize; 3] = [1, 2, 4];
/// Morsel sizes: single chunk, large, whole table.
const MORSEL_CHUNKS: [usize; 3] = [1, 16, 0];

fn database(keys: Vec<i64>, vals: Vec<i64>, chunk_rows: usize) -> Arc<Database> {
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("v", DataType::Int),
    ])
    .expect("valid schema");
    let table = Table::from_columns(
        "t",
        schema,
        vec![ColumnValues::Int(keys), ColumnValues::Int(vals)],
        chunk_rows,
    )
    .expect("table builds");
    let mut engine = StorageEngine::default();
    engine.create_table(table).expect("unique");
    Database::new(engine)
}

fn columns() -> impl Strategy<Value = (Vec<i64>, Vec<i64>)> {
    proptest::collection::vec((-40i64..40, -1000i64..1000), 1..600)
        .prop_map(|rows| rows.into_iter().unzip())
}

fn query() -> impl Strategy<Value = Query> {
    let pred = (0i64..4, -50i64..50, -50i64..50).prop_map(|(kind, a, b)| match kind {
        0 => ScanPredicate::eq(ColumnId(0), a),
        1 => ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, a),
        2 => ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, a),
        _ => ScanPredicate::between(ColumnId(0), a.min(b), a.max(b)),
    });
    let agg = proptest::option::of((0usize..5).prop_map(|op| {
        let op = [
            AggregateOp::Count,
            AggregateOp::Sum,
            AggregateOp::Avg,
            AggregateOp::Min,
            AggregateOp::Max,
        ][op];
        Aggregate::new(op, ColumnId(1))
    }));
    (proptest::collection::vec(pred, 0..3), agg).prop_map(|(preds, agg)| {
        let grouped = agg.is_some() && preds.len() < 2;
        let mut q = Query::new(TableId(0), "t", preds, agg, "prop");
        if grouped {
            q = q.with_group_by(ColumnId(0));
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core determinism contract: every result field except the
    /// latency model (`sim_latency`, `morsels`) is bit-identical for any
    /// (thread count × morsel size), including float aggregates — not
    /// merely within tolerance.
    #[test]
    fn results_are_bit_identical_across_threads_and_morsels(
        (keys, vals) in columns(),
        q in query(),
        chunk_rows in 1usize..120,
    ) {
        let db = database(keys, vals, chunk_rows);
        let reference = db.run_query(&q).expect("sequential run").output;
        prop_assert_eq!(reference.morsels, 0);
        prop_assert_eq!(reference.sim_latency, reference.sim_cost);
        for threads in THREADS {
            for morsel_chunks in MORSEL_CHUNKS {
                db.set_scan_pool(Some(ScanPool::new(threads)), morsel_chunks);
                let out = db.run_query(&q).expect("parallel run").output;
                prop_assert_eq!(out.rows_matched, reference.rows_matched);
                prop_assert_eq!(out.agg_value, reference.agg_value, "bitwise agg");
                prop_assert_eq!(&out.groups, &reference.groups, "bitwise groups");
                prop_assert_eq!(out.sim_cost, reference.sim_cost, "total work");
                prop_assert_eq!(out.rows_scanned, reference.rows_scanned);
                prop_assert_eq!(out.chunks_pruned, reference.chunks_pruned);
                prop_assert_eq!(out.chunks_visited, reference.chunks_visited);
                prop_assert_eq!(out.index_probes, reference.index_probes);
            }
        }
    }

    /// The estimator-facing invariant: because `sim_cost` is independent
    /// of the execution mode, feature extraction (which predicts it)
    /// cannot drift from the parallel access-path choice.
    #[test]
    fn feature_extraction_is_execution_mode_independent(
        (keys, vals) in columns(),
        q in query(),
    ) {
        let db = database(keys, vals, 64);
        let config = db.engine().current_config();
        let features = {
            let engine = db.engine();
            let ctx = smdb::cost::features::ConfigContext::new(&engine, &config);
            smdb::cost::extract_features(&engine, &ctx, &q, &config).expect("extracts")
        };
        db.set_scan_pool(Some(ScanPool::new(4)), 1);
        let out = db.run_query(&q).expect("parallel run").output;
        let after = {
            let engine = db.engine();
            let ctx = smdb::cost::features::ConfigContext::new(&engine, &config);
            smdb::cost::extract_features(&engine, &ctx, &q, &config).expect("extracts")
        };
        prop_assert_eq!(&features, &after, "features saw the execution mode");
        // And the quantity they predict is the mode-independent one.
        db.set_scan_pool(None, 1);
        let seq = db.run_query(&q).expect("sequential run").output;
        prop_assert_eq!(out.sim_cost, seq.sim_cost);
    }
}

/// End-to-end soak digest invariance: the full serving runtime (worker
/// pool, live tuning, fault injection) produces the same result digest
/// for every scan-thread count and morsel size.
#[test]
fn soak_digest_is_scan_thread_and_morsel_invariant() {
    let (_, plan) = harness::medium_soak();
    let mut digests = Vec::new();
    for (scan_threads, morsel_chunks) in [(1, 1), (2, 1), (4, 16), (4, 0)] {
        let (db, _) = harness::medium_soak();
        let outcome = Runtime::new(
            db,
            RuntimeConfig {
                workers: 2,
                bucket_capacity: Cost(400.0),
                scan_threads,
                morsel_chunks,
                ..RuntimeConfig::default()
            },
        )
        .run(&plan)
        .expect("soak runs");
        assert_eq!(outcome.stats.errors, 0);
        assert_eq!(outcome.stats.wrong_results, 0);
        digests.push((scan_threads, morsel_chunks, outcome.stats.result_digest));
    }
    let reference = digests[0].2;
    for (threads, morsels, digest) in &digests {
        assert_eq!(
            *digest, reference,
            "digest drifted at scan_threads={threads} morsel_chunks={morsels}"
        );
    }
}

/// Starvation bound: while a heavy scan floods the shared pool from one
/// thread, light queries submitted from another must keep completing —
/// caller-helps-first scheduling means a submitter executes its own
/// morsels instead of queueing behind the heavy job, so the light p99
/// stays bounded (measured here in simulated cost, which is scheduling-
/// independent, plus a liveness check in wall time).
#[test]
fn heavy_scans_do_not_starve_light_queries() {
    let keys: Vec<i64> = (0..60_000).map(|i| i % 100).collect();
    let vals: Vec<i64> = (0..60_000).map(|i| i % 7).collect();
    let db = database(keys, vals, 500); // 120 chunks
    db.set_scan_pool(Some(ScanPool::new(2)), 4);

    let heavy = Query::new(
        TableId(0),
        "t",
        vec![],
        Some(Aggregate::new(AggregateOp::Sum, ColumnId(1))),
        "heavy",
    );
    let light = Query::new(
        TableId(0),
        "t",
        vec![ScanPredicate::eq(ColumnId(0), 3)],
        None,
        "light",
    );

    // Unloaded baseline: the latency model is a pure function of the
    // query, so contention must never change it (no cross-query
    // queueing is ever charged).
    let unloaded = db.run_query(&light).expect("light runs").output;

    let (light_wall_ms, light_outputs) = std::thread::scope(|scope| {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammer = {
            let db = db.clone();
            let heavy = heavy.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut runs = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    db.run_query(&heavy).expect("heavy runs");
                    runs += 1;
                }
                runs
            })
        };
        let mut walls = Vec::with_capacity(200);
        let mut outputs = Vec::with_capacity(200);
        for _ in 0..200 {
            let r = db.run_query(&light).expect("light runs");
            walls.push(r.wall_ns as f64 / 1e6);
            outputs.push(r.output);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(hammer.join().expect("hammer joins") > 0);
        (walls, outputs)
    });

    // All 200 light queries completed under heavy-scan pressure
    // (liveness), none had to wait for the heavy job's remaining
    // morsels: the wall-clock p99 stays orders of magnitude below what
    // queueing behind even one 120-chunk heavy scan per light query
    // would cost, and the latency model reports the unloaded figure.
    let mut sorted = light_wall_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = sorted[((sorted.len() as f64 * 0.99).ceil() as usize).min(sorted.len()) - 1];
    assert!(
        p99 < 500.0,
        "light p99 {p99} ms — starved by the heavy scan"
    );
    for out in light_outputs {
        assert_eq!(out.sim_latency, unloaded.sim_latency);
        assert_eq!(out.rows_matched, unloaded.rows_matched);
    }
}
