//! Property-based tests for the Section III-B ordering LP: for arbitrary
//! dependence/impact matrices the ILP must return a valid permutation
//! whose objective matches the exhaustive optimum, and the model must
//! have the paper's exact variable/constraint counts.

#![allow(clippy::needless_range_loop)] // matrix fixtures use explicit indices

use proptest::prelude::*;

use smdb::lp::branch_bound::IlpOptions;
use smdb::lp::ordering::OrderingProblem;
use smdb::lp::permutation::{all_permutations, brute_force_order};

/// Strategy: reciprocal dependence matrix (d_{B,A} = 1/d_{A,B}) with
/// ratios in [0.25, 4] and impacts in [0.5, 8].
fn matrices(n: usize) -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Vec<f64>>)> {
    let pairs = n * (n - 1) / 2;
    (
        proptest::collection::vec(0.25f64..4.0, pairs),
        proptest::collection::vec(0.5f64..8.0, n * n),
    )
        .prop_map(move |(ds, ws)| {
            let mut d = vec![vec![1.0; n]; n];
            let mut idx = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    d[a][b] = ds[idx];
                    d[b][a] = 1.0 / ds[idx];
                    idx += 1;
                }
            }
            let mut w = vec![vec![1.0; n]; n];
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        w[a][b] = ws[a * n + b];
                    }
                }
            }
            (d, w)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ilp_matches_exhaustive_optimum_n4((d, w) in matrices(4)) {
        let p = OrderingProblem::new(d, w).expect("square");
        let lp = p.solve(&IlpOptions::default()).expect("solves");
        let brute = brute_force_order(&p).expect("n small");
        // Valid permutation.
        let mut sorted = lp.order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Optimal objective.
        prop_assert!((lp.objective - brute.objective).abs() < 1e-6,
            "lp {} vs brute {}", lp.objective, brute.objective);
        // Decoded order achieves the reported objective.
        prop_assert!((p.order_objective(&lp.order) - lp.objective).abs() < 1e-6);
    }

    #[test]
    fn ilp_matches_exhaustive_optimum_n3((d, w) in matrices(3)) {
        let p = OrderingProblem::new(d, w).expect("square");
        let lp = p.solve(&IlpOptions::default()).expect("solves");
        let brute = brute_force_order(&p).expect("n small");
        prop_assert!((lp.objective - brute.objective).abs() < 1e-6);
    }

    #[test]
    fn heuristic_is_feasible_and_bounded_by_optimum((d, w) in matrices(4)) {
        let p = OrderingProblem::new(d, w).expect("square");
        let h = p.heuristic_order();
        let mut sorted = h.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, vec![0, 1, 2, 3]);
        let brute = brute_force_order(&p).expect("n small");
        prop_assert!(p.order_objective(&h) <= brute.objective + 1e-9);
        // Encoding of the heuristic is feasible in the model.
        let model = p.build_model().expect("model builds");
        prop_assert!(model.is_feasible(&p.encode_order(&h), 1e-6));
    }
}

#[test]
fn model_sizes_follow_paper_formulas() {
    for n in 2..=9usize {
        let p = OrderingProblem::new(vec![vec![1.0; n]; n], vec![vec![1.0; n]; n]).expect("square");
        let m = p.build_model().expect("model builds");
        assert_eq!(m.num_vars(), 2 * n * n - n, "vars at n={n}");
        assert_eq!(m.num_constraints(), 2 * n * n, "constraints at n={n}");
    }
}

#[test]
fn objective_sums_pairwise_weights_over_all_permutations() {
    // For a fixed 3-feature instance, verify order_objective against a
    // hand-rolled sum for every permutation.
    let d = vec![
        vec![1.0, 2.0, 0.5],
        vec![0.5, 1.0, 3.0],
        vec![2.0, 1.0 / 3.0, 1.0],
    ];
    let w = vec![
        vec![1.0, 1.5, 2.0],
        vec![1.0, 1.0, 0.5],
        vec![3.0, 1.0, 1.0],
    ];
    let p = OrderingProblem::new(d.clone(), w.clone()).expect("square");
    for perm in all_permutations(3).expect("small") {
        let mut manual = 0.0;
        for i in 0..3 {
            for j in (i + 1)..3 {
                let (a, b) = (perm[i], perm[j]);
                manual += d[a][b] * w[a][b];
            }
        }
        assert!((p.order_objective(&perm) - manual).abs() < 1e-12);
    }
}
