//! Cross-crate integration: the full self-management loop against the
//! TPC-H-flavoured catalog.

use std::sync::Arc;

use smdb::core::driver::{Driver, OrderingPolicy};
use smdb::core::{ConstraintSet, FeatureKind};
use smdb::cost::CalibratedCostModel;
use smdb::prelude::*;
use smdb::query::Database;
use smdb::storage::StorageEngine;
use smdb::workload::generators::scan_heavy_mix;
use smdb::workload::tpch::{build_catalog, TpchTemplates};
use smdb::workload::{MixSchedule, WorkloadGenerator};

fn setup() -> (Arc<Database>, WorkloadGenerator) {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 12_000, 1_500, 77).expect("catalog builds");
    let templates = TpchTemplates::new(catalog);
    // Blended HTAP mix: scans exercise compression/placement, point
    // lookups exercise indexing.
    let mix: Vec<f64> = scan_heavy_mix()
        .iter()
        .zip(&smdb::workload::generators::point_heavy_mix())
        .map(|(a, b)| a + b)
        .collect();
    let generator = WorkloadGenerator::new(templates, MixSchedule::Stationary(mix), 123);
    (Database::new(engine), generator)
}

#[test]
fn full_loop_improves_ground_truth_cost() {
    let (db, generator) = setup();
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .features(vec![
            FeatureKind::Indexing,
            FeatureKind::Compression,
            FeatureKind::Placement,
            FeatureKind::BufferPool,
        ])
        .ordering_policy(OrderingPolicy::LpOptimized)
        .constraints(ConstraintSet {
            index_memory_bytes: Some(8 * 1024 * 1024),
            ..ConstraintSet::default()
        })
        .build();

    for bucket in 0..3 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 120))
            .expect("bucket runs");
    }

    let probe = generator.bucket_queries(99, 120);
    let before: Cost = probe
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost)
        .sum();
    // Two adaptive passes with observation in between, as in production:
    // the model learns the reconfigured regimes from live traffic.
    let report = driver.force_tune().expect("tuning runs");
    assert!(report.applied_actions > 0, "nothing applied: {report:?}");
    for bucket in 3..6 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 120))
            .expect("bucket runs");
    }
    driver.force_tune().expect("second pass runs");
    let after: Cost = probe
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost)
        .sum();
    assert!(
        after.ms() < before.ms() * 0.9,
        "expected >10% improvement: before {before}, after {after}"
    );
}

#[test]
fn monitoring_is_what_feeds_the_predictor() {
    let (db, generator) = setup();
    let driver = Driver::builder(db.clone()).build();
    db.set_monitoring(false);
    driver
        .run_bucket(&generator.bucket_queries(0, 50))
        .expect("bucket runs");
    assert!(
        driver.forecast().is_empty(),
        "nothing observed, no forecast"
    );

    db.set_monitoring(true);
    driver
        .run_bucket(&generator.bucket_queries(1, 50))
        .expect("bucket runs");
    let forecast = driver.forecast();
    assert!(!forecast.is_empty());
    assert!(
        forecast
            .expected()
            .expect("expected scenario")
            .workload
            .total_weight()
            > 0.0
    );
}

#[test]
fn index_memory_constraint_respected_end_to_end() {
    let (db, generator) = setup();
    let budget: i64 = 256 * 1024; // deliberately tight
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .features(vec![FeatureKind::Indexing])
        .constraints(ConstraintSet {
            index_memory_bytes: Some(budget),
            ..ConstraintSet::default()
        })
        .build();
    for bucket in 0..3 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 120))
            .expect("bucket runs");
    }
    driver.force_tune().expect("tuning runs");
    let actual = db.engine().memory_report().index_bytes as i64;
    // Estimated sizes drive the budget; allow modest estimation slack.
    assert!(
        actual <= budget * 13 / 10,
        "index memory {actual} exceeds budget {budget} beyond estimation slack"
    );
}

#[test]
fn tuning_prediction_matches_realized_cost_direction() {
    let (db, generator) = setup();
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .features(vec![FeatureKind::Indexing])
        .build();
    for bucket in 0..3 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 150))
            .expect("bucket runs");
    }
    let report = driver.force_tune().expect("tuning runs");
    let predicted: Cost = report
        .proposals
        .iter()
        .filter(|p| p.accepted)
        .map(|p| p.predicted_benefit)
        .sum();
    assert!(predicted.ms() > 0.0, "accepted proposals predict benefit");

    // Realized: re-run the same bucket workload and compare to the
    // forecast-horizon cost scale. Direction must agree (improvement).
    let probe = generator.bucket_queries(0, 150);
    let realized: Cost = probe
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost)
        .sum();
    assert!(realized.ms() > 0.0);
}

#[test]
fn feedback_loop_records_and_completes() {
    let (db, generator) = setup();
    let driver = Driver::builder(db).build();
    for bucket in 0..3 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 100))
            .expect("bucket runs");
    }
    driver.force_tune().expect("first tuning");
    assert_eq!(driver.config_storage().len(), 1);
    assert!(driver.config_storage().feedback().is_empty());

    for bucket in 3..6 {
        driver
            .run_bucket(&generator.bucket_queries(bucket, 100))
            .expect("bucket runs");
    }
    driver.force_tune().expect("second tuning");
    let feedback = driver.config_storage().feedback();
    assert_eq!(feedback.len(), 1, "first instance completed");
}
