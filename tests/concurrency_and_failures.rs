//! Concurrency and failure-injection tests: the database facade must
//! serve queries while configurations are applied, and the framework
//! must propagate (not swallow) engine errors. The runtime soak tests
//! at the bottom exercise the full online loop — worker pool, live
//! tuning thread, injected apply failures and rollback.

mod harness;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smdb::common::json::Json;
use smdb::common::{ChunkColumnRef, ColumnId, TableId};
use smdb::obs::TrailEvent;
use smdb::query::{Database, Query};
use smdb::storage::value::ColumnValues;
use smdb::storage::{
    ColumnDef, ConfigAction, DataType, IndexKind, ScanPredicate, Schema, StorageEngine, Table,
};

fn database(rows: i64) -> Arc<Database> {
    let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).expect("valid");
    let table = Table::from_columns(
        "t",
        schema,
        vec![ColumnValues::Int((0..rows).map(|i| i % 100).collect())],
        1_000,
    )
    .expect("builds");
    let mut engine = StorageEngine::default();
    engine.create_table(table).expect("unique");
    Database::new(engine)
}

fn query(v: i64) -> Query {
    Query::new(
        TableId(0),
        "t",
        vec![ScanPredicate::eq(ColumnId(0), v)],
        None,
        "pt",
    )
}

#[test]
fn queries_and_reconfiguration_run_concurrently() {
    let db = database(20_000);
    let stop = Arc::new(AtomicBool::new(false));
    let chunks = db.engine().table(TableId(0)).expect("table").chunk_count() as u32;

    std::thread::scope(|scope| {
        // Reader threads hammer queries.
        let mut readers = Vec::new();
        for r in 0..3 {
            let db = db.clone();
            let stop = stop.clone();
            readers.push(scope.spawn(move || {
                let mut total = 0u64;
                let mut i = r;
                // A guaranteed minimum of iterations (scheduling under
                // parallel test load may start readers after the writer
                // finished), then run until the writer signals stop.
                while total < 25 || !stop.load(Ordering::Relaxed) {
                    let out = db.run_query(&query((i % 100) as i64)).expect("query runs");
                    // Matching rows never change: configuration actions are
                    // physical, not logical.
                    assert_eq!(out.output.rows_matched, 200);
                    total += 1;
                    i += 1;
                }
                total
            }));
        }
        // Writer applies and reverts indexes/encodings concurrently.
        for round in 0..3 {
            for chunk in 0..chunks {
                db.apply_config(&[ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(0, 0, chunk),
                    kind: if round % 2 == 0 {
                        IndexKind::Hash
                    } else {
                        IndexKind::BTree
                    },
                }])
                .expect("index applies");
            }
            for chunk in 0..chunks {
                db.apply_config(&[ConfigAction::DropIndex {
                    target: ChunkColumnRef::new(0, 0, chunk),
                }])
                .expect("drop applies");
            }
        }
        stop.store(true, Ordering::Relaxed);
        let totals: Vec<u64> = readers
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert!(totals.iter().all(|&t| t > 0), "every reader made progress");
    });
    // Back to the clean configuration.
    assert!(db.engine().current_config().indexes.is_empty());
}

#[test]
fn invalid_actions_propagate_and_partial_application_is_visible() {
    let db = database(2_000);
    // Second action is invalid (duplicate index): apply_config must fail…
    let actions = vec![
        ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, 0),
            kind: IndexKind::Hash,
        },
        ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, 0),
            kind: IndexKind::Hash,
        },
    ];
    let err = db.apply_config(&actions);
    assert!(err.is_err());
    // …and the first action remains applied (sequential semantics, as
    // with DDL batches): callers observe exactly how far it got.
    assert_eq!(db.engine().current_config().indexes.len(), 1);
}

#[test]
fn unknown_targets_error_cleanly() {
    let db = database(2_000);
    let bad_table = ConfigAction::CreateIndex {
        target: ChunkColumnRef::new(9, 0, 0),
        kind: IndexKind::Hash,
    };
    assert!(db.apply_config(&[bad_table]).is_err());
    let bad_chunk = ConfigAction::DropIndex {
        target: ChunkColumnRef::new(0, 0, 99),
    };
    assert!(db.apply_config(&[bad_chunk]).is_err());
    let bad_knob = ConfigAction::SetKnob {
        knob: smdb::storage::KnobKind::BufferPoolMb,
        value: -5.0,
    };
    assert!(db.apply_config(&[bad_knob]).is_err());
    // The engine is untouched by the failed batch.
    assert_eq!(
        db.engine().current_config(),
        smdb::storage::ConfigInstance::default()
    );
}

#[test]
fn monitoring_is_thread_safe_under_contention() {
    let db = database(5_000);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..200 {
                    db.run_query(&query(((t * 50 + i) % 100) as i64))
                        .expect("runs");
                }
            });
        }
    });
    // One template, 800 recorded executions.
    assert_eq!(db.plan_cache().len(), 1);
    let fp = query(0).fingerprint();
    assert_eq!(db.plan_cache().get(fp).expect("entry").executions, 800);
}

#[test]
fn runtime_soak_tunes_online_and_rolls_back_injected_failures() {
    // The bench `soak` binary's fixture, reused verbatim so the tier-1
    // gate and `BENCH_runtime.json` measure the same scenario.
    let (db, plan) = harness::bench_soak();
    let runtime = harness::soak_runtime(Arc::clone(&db), 4);
    runtime.driver().flight_recorder().set_auto_dump(false);
    let outcome = runtime.run(&plan).expect("soak survives its faults");

    // Correctness under concurrent reconfiguration: every planned query
    // was served and every answer matched the pre-tuning oracle.
    let planned: usize = plan.iter().map(|b| b.queries.len()).sum();
    assert_eq!(outcome.stats.queries as usize, planned);
    assert_eq!(outcome.stats.errors, 0, "serving never errored");
    assert_eq!(outcome.stats.wrong_results, 0, "zero wrong results");

    // The self-management loop did real online work.
    assert!(
        outcome.tuning.actions_applied >= 20,
        "expected >= 20 online actions, got {}",
        outcome.tuning.actions_applied
    );
    assert!(
        outcome.injected_failures >= 3,
        "expected >= 3 injected failures, got {}",
        outcome.injected_failures
    );
    assert_eq!(
        outcome.tuning.rollbacks, outcome.injected_failures,
        "every injected failure rolled back"
    );
    assert_eq!(outcome.tuning.pending_actions, 0, "queue drained at end");
    assert!(
        !outcome.tuning.paused,
        "tuning recovered from its cooldowns"
    );

    // Every rollback restored the *prior* good ConfigStorage instance:
    // the injected failures all precede the first complete application,
    // so each restored configuration is the build-time baseline.
    let driver = runtime.driver();
    let records = driver.config_storage().rollbacks();
    assert_eq!(records.len(), outcome.tuning.rollbacks);
    for record in &records {
        assert_eq!(
            &record.restored_config,
            driver.baseline_config(),
            "rollback target is the last good instance"
        );
        assert!(!record.abandoned_actions.is_empty() || !record.cause.is_empty());
    }

    // The decision trail matches the rollback records one-to-one: each
    // injected fault produced exactly one action_rolled_back event, and
    // every one names the restored instance — the build-time baseline,
    // since the injected failures all precede the first stored instance.
    let trail = driver.flight_recorder().events();
    let rolled: Vec<(&String, &String)> = trail
        .iter()
        .filter_map(|(_, e)| match e {
            TrailEvent::ActionRolledBack {
                restored, cause, ..
            } => Some((restored, cause)),
            _ => None,
        })
        .collect();
    assert_eq!(
        rolled.len(),
        outcome.injected_failures,
        "one rollback event per injected fault"
    );
    for (restored, cause) in &rolled {
        assert_eq!(restored.as_str(), "baseline", "rollback names its target");
        assert!(cause.contains("injected"), "cause names the fault: {cause}");
    }

    // The trail's JSON export round-trips through the std-only parser
    // with every event intact.
    let text = driver.flight_recorder().to_json().to_string_compact();
    let parsed = smdb::common::json::parse(&text).expect("trail JSON parses");
    assert_eq!(
        parsed
            .get("events")
            .and_then(Json::as_array)
            .map(<[_]>::len),
        Some(trail.len())
    );

    // Once a reconfiguration finally sticks it is stored, and the
    // engine's live configuration is exactly that instance.
    assert!(outcome.tuning.stored_instances >= 1);
    let latest = driver
        .config_storage()
        .latest_config()
        .expect("a tuned instance was stored");
    assert_eq!(db.engine().current_config(), latest);
    assert!(
        outcome.tuned_mean.ms() < outcome.cold_mean.ms(),
        "tuned heavy phase ({}) faster than cold ({})",
        outcome.tuned_mean,
        outcome.cold_mean
    );
}

#[test]
fn runtime_soak_results_are_identical_across_worker_counts() {
    // Smaller stream, same machinery: the merged digest must not depend
    // on how the bucket is partitioned over threads.
    let (db2, plan) = harness::small_soak();
    let (db4, _) = harness::small_soak();
    let two = harness::soak_runtime(db2, 2)
        .run(&plan)
        .expect("2-worker soak runs");
    let four = harness::soak_runtime(db4, 4)
        .run(&plan)
        .expect("4-worker soak runs");
    assert_eq!(two.stats.queries, four.stats.queries);
    assert_eq!(two.stats.wrong_results + four.stats.wrong_results, 0);
    assert_eq!(
        two.stats.result_digest, four.stats.result_digest,
        "result digest is worker-count invariant"
    );
}
