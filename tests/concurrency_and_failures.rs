//! Concurrency and failure-injection tests: the database facade must
//! serve queries while configurations are applied, and the framework
//! must propagate (not swallow) engine errors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smdb::common::{ChunkColumnRef, ColumnId, TableId};
use smdb::query::{Database, Query};
use smdb::storage::value::ColumnValues;
use smdb::storage::{
    ColumnDef, ConfigAction, DataType, IndexKind, ScanPredicate, Schema, StorageEngine, Table,
};

fn database(rows: i64) -> Arc<Database> {
    let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).expect("valid");
    let table = Table::from_columns(
        "t",
        schema,
        vec![ColumnValues::Int((0..rows).map(|i| i % 100).collect())],
        1_000,
    )
    .expect("builds");
    let mut engine = StorageEngine::default();
    engine.create_table(table).expect("unique");
    Database::new(engine)
}

fn query(v: i64) -> Query {
    Query::new(
        TableId(0),
        "t",
        vec![ScanPredicate::eq(ColumnId(0), v)],
        None,
        "pt",
    )
}

#[test]
fn queries_and_reconfiguration_run_concurrently() {
    let db = database(20_000);
    let stop = Arc::new(AtomicBool::new(false));
    let chunks = db.engine().table(TableId(0)).expect("table").chunk_count() as u32;

    std::thread::scope(|scope| {
        // Reader threads hammer queries.
        let mut readers = Vec::new();
        for r in 0..3 {
            let db = db.clone();
            let stop = stop.clone();
            readers.push(scope.spawn(move || {
                let mut total = 0u64;
                let mut i = r;
                // A guaranteed minimum of iterations (scheduling under
                // parallel test load may start readers after the writer
                // finished), then run until the writer signals stop.
                while total < 25 || !stop.load(Ordering::Relaxed) {
                    let out = db.run_query(&query((i % 100) as i64)).expect("query runs");
                    // Matching rows never change: configuration actions are
                    // physical, not logical.
                    assert_eq!(out.output.rows_matched, 200);
                    total += 1;
                    i += 1;
                }
                total
            }));
        }
        // Writer applies and reverts indexes/encodings concurrently.
        for round in 0..3 {
            for chunk in 0..chunks {
                db.apply_config(&[ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(0, 0, chunk),
                    kind: if round % 2 == 0 {
                        IndexKind::Hash
                    } else {
                        IndexKind::BTree
                    },
                }])
                .expect("index applies");
            }
            for chunk in 0..chunks {
                db.apply_config(&[ConfigAction::DropIndex {
                    target: ChunkColumnRef::new(0, 0, chunk),
                }])
                .expect("drop applies");
            }
        }
        stop.store(true, Ordering::Relaxed);
        let totals: Vec<u64> = readers
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect();
        assert!(totals.iter().all(|&t| t > 0), "every reader made progress");
    });
    // Back to the clean configuration.
    assert!(db.engine().current_config().indexes.is_empty());
}

#[test]
fn invalid_actions_propagate_and_partial_application_is_visible() {
    let db = database(2_000);
    // Second action is invalid (duplicate index): apply_config must fail…
    let actions = vec![
        ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, 0),
            kind: IndexKind::Hash,
        },
        ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, 0),
            kind: IndexKind::Hash,
        },
    ];
    let err = db.apply_config(&actions);
    assert!(err.is_err());
    // …and the first action remains applied (sequential semantics, as
    // with DDL batches): callers observe exactly how far it got.
    assert_eq!(db.engine().current_config().indexes.len(), 1);
}

#[test]
fn unknown_targets_error_cleanly() {
    let db = database(2_000);
    let bad_table = ConfigAction::CreateIndex {
        target: ChunkColumnRef::new(9, 0, 0),
        kind: IndexKind::Hash,
    };
    assert!(db.apply_config(&[bad_table]).is_err());
    let bad_chunk = ConfigAction::DropIndex {
        target: ChunkColumnRef::new(0, 0, 99),
    };
    assert!(db.apply_config(&[bad_chunk]).is_err());
    let bad_knob = ConfigAction::SetKnob {
        knob: smdb::storage::KnobKind::BufferPoolMb,
        value: -5.0,
    };
    assert!(db.apply_config(&[bad_knob]).is_err());
    // The engine is untouched by the failed batch.
    assert_eq!(
        db.engine().current_config(),
        smdb::storage::ConfigInstance::default()
    );
}

#[test]
fn monitoring_is_thread_safe_under_contention() {
    let db = database(5_000);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..200 {
                    db.run_query(&query(((t * 50 + i) % 100) as i64))
                        .expect("runs");
                }
            });
        }
    });
    // One template, 800 recorded executions.
    assert_eq!(db.plan_cache().len(), 1);
    let fp = query(0).fingerprint();
    assert_eq!(db.plan_cache().get(fp).expect("entry").executions, 800);
}
