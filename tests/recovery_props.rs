//! Crash-point property tests over the durability layer.
//!
//! The contract under test: recovery is a *total, deterministic*
//! function of whatever bytes survived the crash. Whatever prefix of
//! the WAL made it to storage — a clean boundary, half a record, a
//! bit-flipped checksum, a duplicated tail — recovery must never
//! panic, must degrade to the longest valid prefix, and the resumed
//! run must land on the same result digest as the uninterrupted one.
//!
//! Three layers of evidence:
//! * a property sweep truncating the WAL at arbitrary byte offsets,
//! * the torn-write fault matrix (truncate / flip / duplicate, three
//!   crash attempts each) injected *while the soak is running*,
//! * byte-identity: recovering the same store twice yields the same
//!   serving-state encoding and the same stored-instance set.

mod harness;

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use smdb::core::durability::{decode_serving_state, encode_serving_state};
use smdb::core::{DurabilityConfig, StoredInstance};
use smdb::durable::{
    MemPersistence, Persistence, TornWriteKind, TornWritePersistence, TornWritePlan,
};
use smdb::obs::TrailEvent;
use smdb::runtime::{recover_and_resume, recover_runtime, BucketPlan};

/// Snapshot cadence: with the 10-bucket small fixture this leaves
/// snapshots at buckets 0, 4 and 8, so most crash points replay a
/// non-trivial WAL tail.
const SNAPSHOT_EVERY: u64 = 4;

fn dconfig() -> DurabilityConfig {
    DurabilityConfig {
        snapshot_every_buckets: SNAPSHOT_EVERY,
    }
}

/// One uninterrupted durable run of the shared small fixture; every
/// crash-point case recovers from a copy of its store and must match
/// its digest.
struct Reference {
    digest: u64,
    queries: u64,
    instances: Vec<StoredInstance>,
    plan: Vec<BucketPlan>,
    store: Arc<MemPersistence>,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let (db, plan) = harness::small_soak();
        let store = Arc::new(MemPersistence::new());
        let runtime = harness::durable_soak_runtime(db, store.clone(), SNAPSHOT_EVERY);
        let outcome = runtime.run(&plan).expect("reference soak runs");
        assert_eq!(outcome.stats.errors, 0);
        assert_eq!(outcome.stats.wrong_results, 0);
        Reference {
            digest: outcome.stats.result_digest,
            queries: outcome.stats.queries,
            instances: runtime.driver().config_storage().snapshot(),
            plan,
            store,
        }
    })
}

/// Deep-copies a store so each crash case mutates its own universe
/// (recovery truncate-repairs the WAL in place).
fn copy_store(src: &dyn Persistence) -> Arc<MemPersistence> {
    let dst = Arc::new(MemPersistence::new());
    for name in src.list().expect("lists") {
        let blob = src.read(&name).expect("reads").expect("listed blob exists");
        dst.write_atomic(&name, &blob).expect("writes");
    }
    dst
}

/// Truncates the copied WAL at `cut` bytes: the crash point.
fn crashed_store(src: &dyn Persistence, cut: usize) -> Arc<MemPersistence> {
    let store = copy_store(src);
    store
        .mutate(smdb::core::durability::WAL_NAME, |b| b.truncate(cut))
        .expect("wal blob exists");
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Crash at an *arbitrary byte offset* into the WAL: recovery never
    /// panics, is deterministic (two independent recoveries of the same
    /// surviving prefix agree on everything), and the resumed run
    /// reproduces the uninterrupted digest.
    #[test]
    fn crash_at_any_wal_byte_offset_recovers_deterministically(frac in 0.0f64..1.0) {
        let reference = reference();
        let wal = reference
            .store
            .read(smdb::core::durability::WAL_NAME)
            .expect("reads")
            .expect("reference run wrote a WAL");
        let cut = (frac * wal.len() as f64) as usize;

        let first = recover_and_resume(
            crashed_store(reference.store.as_ref(), cut),
            dconfig(),
            harness::recovery_config(2),
            &reference.plan,
        )
        .expect("recovery is total");
        let second = recover_and_resume(
            crashed_store(reference.store.as_ref(), cut),
            dconfig(),
            harness::recovery_config(2),
            &reference.plan,
        )
        .expect("recovery is total");

        // Correct: the surviving prefix plus re-served buckets equals
        // the uninterrupted run.
        prop_assert_eq!(first.outcome.stats.result_digest, reference.digest);
        prop_assert_eq!(first.outcome.stats.queries, reference.queries);
        prop_assert_eq!(first.outcome.stats.wrong_results, 0);
        prop_assert_eq!(first.outcome.stats.errors, 0);

        // Deterministic: same surviving prefix, same recovery.
        prop_assert_eq!(first.resumed_at_bucket, second.resumed_at_bucket);
        prop_assert_eq!(first.replayed_records, second.replayed_records);
        prop_assert_eq!(first.dropped_records, second.dropped_records);
        prop_assert_eq!(
            first.outcome.stats.result_digest,
            second.outcome.stats.result_digest
        );
    }
}

/// The torn-write fault matrix, injected live: the soak runs against a
/// sabotaged backend that corrupts one append mid-flight and fails the
/// call — the run dies with an error (never a panic), and recovery
/// degrades to the last valid WAL prefix, records a `recovered` trail
/// event naming the dropped-record count, and the resumed run matches
/// the uninterrupted digest.
#[test]
fn torn_writes_recover_to_last_valid_prefix() {
    let reference = reference();
    // Offset 7 lands inside the 8-byte frame header: truncation leaves
    // a partial header, the bit flip corrupts the checksum field.
    for attempt in [1usize, 4, 8] {
        for kind in TornWriteKind::ALL {
            let (db, _) = harness::small_soak();
            let torn = Arc::new(TornWritePersistence::new(
                MemPersistence::new(),
                TornWritePlan::tearing(attempt, kind, 7),
            ));
            let dying = harness::durable_soak_runtime(db, torn.clone(), SNAPSHOT_EVERY);
            let died = dying.run(&reference.plan);
            assert!(
                died.is_err(),
                "append {attempt} {}: the torn write must surface as an error",
                kind.label()
            );
            assert_eq!(torn.injected(), 1, "exactly one fault fired");

            let (recovered, rec) =
                recover_runtime(torn.clone(), dconfig(), harness::recovery_config(2))
                    .expect("recovery is total")
                    .expect("a snapshot exists");
            assert!(
                rec.dropped_records >= 1,
                "append {attempt} {}: the torn record must be dropped, got {}",
                kind.label(),
                rec.dropped_records
            );

            // The trail names the recovery and its dropped-record count.
            let events = recovered.driver().flight_recorder().events();
            let trail = events
                .iter()
                .find_map(|(_, e)| match e {
                    TrailEvent::Recovered {
                        replayed_records,
                        dropped_records,
                        ..
                    } => Some((*replayed_records, *dropped_records)),
                    _ => None,
                })
                .expect("a recovered trail event");
            assert_eq!(trail, (rec.replayed_records, rec.dropped_records));

            let outcome = recovered
                .run_resumed(
                    &reference.plan,
                    rec.serving.bucket,
                    rec.serving.stats.clone(),
                )
                .expect("resumed run completes");
            assert_eq!(
                outcome.stats.result_digest,
                reference.digest,
                "append {attempt} {}: digest differs from the uninterrupted run",
                kind.label()
            );
            assert_eq!(outcome.stats.wrong_results, 0);
            assert_eq!(outcome.stats.errors, 0);
        }
    }
}

/// Byte-identity of recovery: two recoveries of the same store agree on
/// the serving-state *encoding*, the encoding round-trips through
/// decode, and the recovered instance set equals the live driver's.
#[test]
fn recovered_state_round_trips_byte_identically() {
    let reference = reference();
    let (first, rec1) = recover_runtime(
        copy_store(reference.store.as_ref()),
        dconfig(),
        harness::recovery_config(2),
    )
    .expect("recovers")
    .expect("snapshot exists");
    let (_, rec2) = recover_runtime(
        copy_store(reference.store.as_ref()),
        dconfig(),
        harness::recovery_config(2),
    )
    .expect("recovers")
    .expect("snapshot exists");

    let bytes = encode_serving_state(&rec1.serving);
    assert_eq!(
        bytes,
        encode_serving_state(&rec2.serving),
        "independent recoveries must encode byte-identically"
    );
    let reencoded = encode_serving_state(&decode_serving_state(&bytes).expect("decodes"));
    assert_eq!(bytes, reencoded, "encoding is a fixed point of the codec");

    assert_eq!(rec1.dropped_records, 0, "clean shutdown drops nothing");
    assert_eq!(
        first.driver().config_storage().snapshot(),
        reference.instances,
        "recovered instance set equals the live driver's"
    );
    assert_eq!(rec1.instances, rec2.instances);
}

/// Losing the whole WAL is still recoverable: serving resumes from the
/// latest snapshot (bucket 8 under the cadence-4 plan) and the re-served
/// tail reproduces the uninterrupted digest.
#[test]
fn empty_wal_recovers_from_latest_snapshot() {
    let reference = reference();
    let recovered = recover_and_resume(
        crashed_store(reference.store.as_ref(), 0),
        dconfig(),
        harness::recovery_config(2),
        &reference.plan,
    )
    .expect("recovery is total");
    assert_eq!(
        recovered.resumed_at_bucket, 8,
        "an empty WAL falls back to the latest snapshot"
    );
    assert_eq!(recovered.replayed_records, 0);
    assert_eq!(recovered.outcome.stats.result_digest, reference.digest);
}
