//! Shared soak fixtures for the integration tests.
//!
//! Every soak-style test used to re-declare the same seeded stream and
//! runtime configuration inline; the duplicates had already drifted
//! apart once (bucket capacities, fault plans). This module is the one
//! place the fixtures live: the *bench* fixture mirrors the `soak`
//! bench binary so the tier-1 gate and `BENCH_runtime.json` measure the
//! same scenario, the *small* fixture is the cheap 10-bucket stream the
//! determinism and trail tests share, and the *medium* fixture sits in
//! between for the parallel-scan digest sweep.
//!
//! Not every test file uses every fixture, hence the allow.
#![allow(dead_code)]

use std::sync::Arc;

use smdb::common::Cost;
use smdb::core::{DurabilityConfig, DurabilityManager};
use smdb::durable::Persistence;
use smdb::query::Database;
use smdb::runtime::{
    events_database, generate, BucketPlan, FaultPlan, Runtime, RuntimeConfig, StreamConfig,
};

/// The bench `soak` binary's fixture: 24 event kinds, 1 000 rows each,
/// 40 default-shaped buckets over 24 000 rows.
pub fn bench_soak() -> (Arc<Database>, Vec<BucketPlan>) {
    let (db, table) = events_database(24, 1_000).expect("fixture builds");
    let stream = StreamConfig {
        buckets: 40,
        ..StreamConfig::default()
    };
    (db, generate(table, 24_000, &stream))
}

/// The small 10-bucket stream (6 event kinds, 3 000 rows) the
/// determinism, trail and recovery tests share.
pub fn small_soak() -> (Arc<Database>, Vec<BucketPlan>) {
    let (db, table) = events_database(6, 500).expect("fixture builds");
    let stream = StreamConfig {
        buckets: 10,
        heavy_queries: 60,
        light_queries: 8,
        heavy_len: 3,
        light_len: 2,
        ..StreamConfig::default()
    };
    (db, generate(table, 3_000, &stream))
}

/// The mid-size 8-bucket stream (12 event kinds, 7 000 rows) used by
/// the parallel-scan digest sweep.
pub fn medium_soak() -> (Arc<Database>, Vec<BucketPlan>) {
    let (db, table) = events_database(12, 600).expect("fixture builds");
    let stream = StreamConfig {
        buckets: 8,
        heavy_queries: 40,
        light_queries: 6,
        heavy_len: 3,
        light_len: 2,
        ..StreamConfig::default()
    };
    (db, generate(table, 7_000, &stream))
}

/// A soak runtime with an explicit bucket capacity and fault plan; the
/// rest (slice budget, SLA) matches the bench `soak` binary.
pub fn soak_runtime_with(
    db: Arc<Database>,
    workers: usize,
    bucket_capacity: Cost,
    fault_plan: FaultPlan,
) -> Runtime {
    Runtime::new(
        db,
        RuntimeConfig {
            workers,
            bucket_capacity,
            slice_budget: 6,
            fault_plan,
            sla_p95: Some(Cost(1.0)),
            ..RuntimeConfig::default()
        },
    )
}

/// The bench `soak` binary's runtime: three injected apply failures so
/// the rollback path is exercised.
pub fn soak_runtime(db: Arc<Database>, workers: usize) -> Runtime {
    soak_runtime_with(
        db,
        workers,
        Cost(800.0),
        FaultPlan::failing_attempts([0, 1, 2]),
    )
}

/// The runtime configuration the recovery tests serve under: no
/// injected apply faults (the tuner's rollback cooldown is thread-local
/// and not part of the boundary record — see `smdb::runtime::recover`).
pub fn recovery_config(workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        bucket_capacity: Cost(500.0),
        ..RuntimeConfig::default()
    }
}

/// A durable soak runtime logging to `persistence` with the given
/// snapshot cadence.
pub fn durable_soak_runtime(
    db: Arc<Database>,
    persistence: Arc<dyn Persistence>,
    snapshot_every_buckets: u64,
) -> Runtime {
    let dconfig = DurabilityConfig {
        snapshot_every_buckets,
    };
    Runtime::new_durable(
        db,
        recovery_config(2),
        Arc::new(DurabilityManager::new(persistence, dconfig)),
    )
}
