//! Property-based tests for the workload generators: schedules, mixes and
//! the TPC-H-flavoured template set.

use proptest::prelude::*;

use smdb::storage::StorageEngine;
use smdb::workload::tpch::{build_catalog, TpchTemplates, NUM_TEMPLATES};
use smdb::workload::{MixSchedule, WorkloadGenerator};

fn mix() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..10.0, NUM_TEMPLATES)
}

fn generator(schedule: MixSchedule, seed: u64) -> WorkloadGenerator {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 1_000, 250, 3).expect("catalog builds");
    WorkloadGenerator::new(TpchTemplates::new(catalog), schedule, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bucket_queries_deterministic_and_sized(
        m in mix(),
        bucket in 0u64..50,
        count in 0usize..60,
        seed in 0u64..100,
    ) {
        let g = generator(MixSchedule::Stationary(m), seed);
        let a = g.bucket_queries(bucket, count);
        let b = g.bucket_queries(bucket, count);
        prop_assert_eq!(a.len(), count);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x, y, "same (seed, bucket) must regenerate identically");
        }
    }

    #[test]
    fn drift_mix_is_convex_combination(
        from in mix(),
        to in mix(),
        buckets in 1u64..40,
        at in 0u64..80,
    ) {
        let s = MixSchedule::Drift { from: from.clone(), to: to.clone(), buckets };
        let m = s.mix_at(at);
        for i in 0..NUM_TEMPLATES {
            let lo = from[i].min(to[i]) - 1e-12;
            let hi = from[i].max(to[i]) + 1e-12;
            prop_assert!(m[i] >= lo && m[i] <= hi,
                "drifted weight {} outside [{lo}, {hi}]", m[i]);
        }
    }

    #[test]
    fn seasonal_mix_alternates_exactly(
        day in mix(),
        night in mix(),
        period in 2u64..20,
        at in 0u64..100,
    ) {
        let s = MixSchedule::Seasonal { day: day.clone(), night: night.clone(), period };
        let m = s.mix_at(at);
        if (at % period) < period / 2 {
            prop_assert_eq!(m, day);
        } else {
            prop_assert_eq!(m, night);
        }
    }

    #[test]
    fn expected_counts_match_total(
        m in mix(),
        bucket in 0u64..20,
        count in 1usize..500,
    ) {
        let g = generator(MixSchedule::Stationary(m), 5);
        let counts = g.expected_counts(bucket, count);
        prop_assert_eq!(counts.len(), NUM_TEMPLATES);
        let total: f64 = counts.iter().sum();
        prop_assert!((total - count as f64).abs() < 1e-6);
        prop_assert!(counts.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn every_template_always_executes(id in 0usize..NUM_TEMPLATES, seed in 0u64..50) {
        let mut engine = StorageEngine::default();
        let catalog = build_catalog(&mut engine, 1_000, 250, 3).expect("catalog builds");
        let templates = TpchTemplates::new(catalog);
        let mut rng = smdb::common::seeded_rng(seed);
        let q = templates.sample(id, &mut rng);
        let out = engine
            .scan_grouped(q.table(), q.predicates(), q.aggregate(), q.group_by())
            .expect("template executes");
        prop_assert!(out.sim_cost.ms() > 0.0);
        // Grouped templates must return groups, plain ones must not.
        prop_assert_eq!(out.groups.is_some(), q.group_by().is_some());
    }
}
