//! GROUP BY integration: grouped results are exact, stable under
//! physical reconfiguration, and the framework tunes grouped workloads.

use std::sync::Arc;

use smdb::core::driver::Driver;
use smdb::core::FeatureKind;
use smdb::cost::CalibratedCostModel;
use smdb::query::{Database, Query};
use smdb::storage::StorageEngine;
use smdb::workload::tpch::{build_catalog, li, TpchTemplates};

fn setup() -> (Arc<Database>, TpchTemplates) {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 12_000, 1_500, 21).expect("catalog builds");
    (Database::new(engine), TpchTemplates::new(catalog))
}

fn grouped_report(templates: &TpchTemplates, seed: u64) -> Query {
    let mut rng = smdb::common::seeded_rng(seed);
    templates.sample(12, &mut rng) // q1_revenue_by_returnflag
}

#[test]
fn grouped_results_are_exact_and_complete() {
    let (db, templates) = setup();
    let q = grouped_report(&templates, 5);
    let out = db.run_query(&q).expect("runs").output;
    let groups = out.groups.expect("grouped query returns groups");
    // Three return flags; their sums partition the global sum.
    assert_eq!(groups.len(), 3);
    let global = {
        let ungrouped = Query::new(
            q.table(),
            "lineitem",
            q.predicates().to_vec(),
            q.aggregate().copied(),
            "global",
        );
        db.run_query(&ungrouped)
            .expect("runs")
            .output
            .agg_value
            .expect("sum")
    };
    let partitioned: f64 = groups.iter().map(|(_, v)| v).sum();
    assert!((partitioned - global).abs() < 1e-6 * global.abs().max(1.0));
}

#[test]
fn grouped_results_invariant_under_reconfiguration() {
    let (db, templates) = setup();
    let q = grouped_report(&templates, 9);
    let before = db
        .run_query(&q)
        .expect("runs")
        .output
        .groups
        .expect("groups");

    // Index + re-encode the predicate and group columns.
    let lineitem = templates.catalog().lineitem;
    let chunks = db.engine().table(lineitem).expect("table").chunk_count() as u32;
    let mut actions = Vec::new();
    for chunk in 0..chunks {
        actions.push(smdb::storage::ConfigAction::CreateIndex {
            target: smdb::common::ChunkColumnRef {
                table: lineitem,
                column: smdb::common::ColumnId(li::SHIPDATE),
                chunk: smdb::common::ChunkId(chunk),
            },
            kind: smdb::storage::IndexKind::BTree,
        });
        actions.push(smdb::storage::ConfigAction::SetEncoding {
            target: smdb::common::ChunkColumnRef {
                table: lineitem,
                column: smdb::common::ColumnId(li::RETURNFLAG),
                chunk: smdb::common::ChunkId(chunk),
            },
            kind: smdb::storage::EncodingKind::Dictionary,
        });
    }
    db.apply_config(&actions).expect("actions apply");

    let after = db
        .run_query(&q)
        .expect("runs")
        .output
        .groups
        .expect("groups");
    // Float summation order may differ between probe and scan paths;
    // compare group keys exactly and values within relative tolerance.
    assert_eq!(before.len(), after.len());
    for ((k1, v1), (k2, v2)) in before.iter().zip(&after) {
        assert_eq!(k1, k2);
        assert!(
            (v1 - v2).abs() <= 1e-9 * v1.abs().max(1.0),
            "group {k1}: {v1} vs {v2}"
        );
    }
}

#[test]
fn framework_tunes_grouped_workloads() {
    let (db, templates) = setup();
    let model = Arc::new(CalibratedCostModel::new());

    // Start-up calibration (the paper's "minimal set of queries is run
    // to create training data"): observe a physically diverse clone so
    // the model has seen every encoding regime before tuning.
    {
        let engine = db.engine();
        let mut variant = engine.clone();
        let lineitem = templates.catalog().lineitem;
        for chunk in 0..4u32 {
            variant
                .apply_action(&smdb::storage::ConfigAction::SetEncoding {
                    target: smdb::common::ChunkColumnRef {
                        table: lineitem,
                        column: smdb::common::ColumnId(li::SHIPDATE),
                        chunk: smdb::common::ChunkId(chunk),
                    },
                    kind: smdb::storage::EncodingKind::Dictionary,
                })
                .expect("applies");
        }
        let config = variant.current_config();
        for i in 0..60 {
            let q = grouped_report(&templates, 1000 + i);
            let out = variant
                .scan_grouped(q.table(), q.predicates(), q.aggregate(), q.group_by())
                .expect("scan runs");
            model
                .observe(&variant, &q, &config, out.sim_cost)
                .expect("observes");
        }
        model.refit().expect("fits");
    }

    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
        .build();
    // A grouped-report-heavy workload.
    let queries: Vec<Query> = (0..120).map(|i| grouped_report(&templates, i)).collect();
    for _ in 0..3 {
        driver.run_bucket(&queries).expect("bucket runs");
    }
    let before: f64 = queries
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost.ms())
        .sum();
    let report = driver.force_tune().expect("tuning runs");
    assert!(report.applied_actions > 0, "{report:?}");
    let after: f64 = queries
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost.ms())
        .sum();
    assert!(after < before, "before {before} after {after}");
}
