//! Property tests for the lint scanner: banned tokens hidden inside
//! string literals, comments, or `#[cfg(test)]` code must never fire,
//! while a real violation must always be found no matter how much
//! literal/comment noise surrounds it.

use proptest::prelude::*;
use smdb_lint::rules::{registry, Finding};
use smdb_lint::scan::scan_source;

/// Fragments that would each trip some rule if they appeared in code
/// position (in the right path scope).
const PAYLOADS: &[&str] = &[
    ".unwrap()",
    ".expect(\"boom\")",
    "panic!(\"no\")",
    "todo!()",
    "unimplemented!()",
    "thread_rng",
    "SystemTime::now",
    "Instant::now",
    "std::thread::sleep",
    "x == 0.0",
    "y != 1e-6",
];

/// Payloads exempt in `#[cfg(test)]` code (rules with `skip_test_code`;
/// the entropy rule deliberately fires even in tests).
const TEST_EXEMPT_PAYLOADS: &[&str] = &[
    ".unwrap()",
    ".expect(\"boom\")",
    "panic!(\"no\")",
    "Instant::now",
    "x == 0.0",
];

/// Paths covering every rule's include scope.
const PATHS: &[&str] = &[
    "crates/core/src/generated.rs",
    "crates/lp/src/generated.rs",
    "crates/cost/src/generated.rs",
    "crates/workload/src/generated.rs",
];

fn all_findings(path: &str, src: &str) -> Vec<Finding> {
    let scanned = scan_source(path, src);
    let mut out = Vec::new();
    for rule in registry() {
        rule.check_file(&scanned, &mut out);
    }
    out
}

fn join_payloads(picks: &[usize], from: &[&str]) -> String {
    picks
        .iter()
        .map(|&i| from[i % from.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #[test]
    fn payloads_inside_string_literals_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, PAYLOADS).replace('"', "\\\"");
        let src = format!("fn lib() {{ let s = \"{inner}\"; let n = s.len(); }}\n");
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn payloads_inside_raw_strings_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, PAYLOADS);
        let src = format!("fn lib() {{ let s = r#\"{inner}\"#; let n = s.len(); }}\n");
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn payloads_inside_comments_never_fire(
        (picks, path_idx, block) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                                     0usize..PATHS.len(),
                                     proptest::option::of(0u8..2))
    ) {
        let inner = join_payloads(&picks, PAYLOADS);
        let src = match block {
            Some(_) => format!("fn lib() {{ /* {inner} */ let n = 1; }}\n"),
            None => format!("fn lib() {{ let n = 1; }} // {inner}\n"),
        };
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn test_gated_payloads_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..TEST_EXEMPT_PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, TEST_EXEMPT_PAYLOADS);
        let src = format!(
            "fn lib() {{ let n = 1; }}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ {inner}; }}\n}}\n"
        );
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn real_violation_survives_any_noise(
        (noise, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 0..5),
                              0usize..PATHS.len())
    ) {
        // Noise goes into a comment and a string; the real unwrap sits in
        // plain library code and must be reported exactly once.
        let inner = join_payloads(&noise, PAYLOADS).replace('"', "");
        let src = format!(
            "// {inner}\nfn lib() {{ let s = \"{inner}\"; let v = s.parse::<u32>().unwrap(); }}\n"
        );
        let f = all_findings(PATHS[path_idx], &src);
        let unwraps: Vec<&Finding> = f.iter().filter(|f| f.rule == "no-panic").collect();
        prop_assert_eq!(unwraps.len(), 1, "src: {}\nall: {:?}", src, f);
        prop_assert_eq!(unwraps[0].line, 2);
    }
}
