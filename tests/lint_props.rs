//! Property tests for the lint scanner: banned tokens hidden inside
//! string literals, comments, or `#[cfg(test)]` code must never fire,
//! while a real violation must always be found no matter how much
//! literal/comment noise surrounds it.

use proptest::prelude::*;
use smdb_lint::locks::{analyze_locks, lock_findings};
use smdb_lint::parse::lex;
use smdb_lint::rules::{registry, Finding};
use smdb_lint::scan::{scan_source, ScannedFile};

/// Fragments that would each trip some rule if they appeared in code
/// position (in the right path scope).
const PAYLOADS: &[&str] = &[
    ".unwrap()",
    ".expect(\"boom\")",
    "panic!(\"no\")",
    "todo!()",
    "unimplemented!()",
    "thread_rng",
    "SystemTime::now",
    "Instant::now",
    "std::thread::sleep",
    "x == 0.0",
    "y != 1e-6",
];

/// Payloads exempt in `#[cfg(test)]` code (rules with `skip_test_code`;
/// the entropy rule deliberately fires even in tests).
const TEST_EXEMPT_PAYLOADS: &[&str] = &[
    ".unwrap()",
    ".expect(\"boom\")",
    "panic!(\"no\")",
    "Instant::now",
    "x == 0.0",
];

/// Paths covering every rule's include scope.
const PATHS: &[&str] = &[
    "crates/core/src/generated.rs",
    "crates/lp/src/generated.rs",
    "crates/cost/src/generated.rs",
    "crates/workload/src/generated.rs",
];

fn all_findings(path: &str, src: &str) -> Vec<Finding> {
    let scanned = scan_source(path, src);
    let mut out = Vec::new();
    for rule in registry() {
        rule.check_file(&scanned, &mut out);
    }
    out
}

fn join_payloads(picks: &[usize], from: &[&str]) -> String {
    picks
        .iter()
        .map(|&i| from[i % from.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    #[test]
    fn payloads_inside_string_literals_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, PAYLOADS).replace('"', "\\\"");
        let src = format!("fn lib() {{ let s = \"{inner}\"; let n = s.len(); }}\n");
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn payloads_inside_raw_strings_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, PAYLOADS);
        let src = format!("fn lib() {{ let s = r#\"{inner}\"#; let n = s.len(); }}\n");
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn payloads_inside_comments_never_fire(
        (picks, path_idx, block) in (proptest::collection::vec(0usize..PAYLOADS.len(), 1..6),
                                     0usize..PATHS.len(),
                                     proptest::option::of(0u8..2))
    ) {
        let inner = join_payloads(&picks, PAYLOADS);
        let src = match block {
            Some(_) => format!("fn lib() {{ /* {inner} */ let n = 1; }}\n"),
            None => format!("fn lib() {{ let n = 1; }} // {inner}\n"),
        };
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn test_gated_payloads_never_fire(
        (picks, path_idx) in (proptest::collection::vec(0usize..TEST_EXEMPT_PAYLOADS.len(), 1..6),
                              0usize..PATHS.len())
    ) {
        let inner = join_payloads(&picks, TEST_EXEMPT_PAYLOADS);
        let src = format!(
            "fn lib() {{ let n = 1; }}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ {inner}; }}\n}}\n"
        );
        let f = all_findings(PATHS[path_idx], &src);
        prop_assert!(f.is_empty(), "false positives: {f:?}\nsrc: {src}");
    }

    #[test]
    fn real_violation_survives_any_noise(
        (noise, path_idx) in (proptest::collection::vec(0usize..PAYLOADS.len(), 0..5),
                              0usize..PATHS.len())
    ) {
        // Noise goes into a comment and a string; the real unwrap sits in
        // plain library code and must be reported exactly once.
        let inner = join_payloads(&noise, PAYLOADS).replace('"', "");
        let src = format!(
            "// {inner}\nfn lib() {{ let s = \"{inner}\"; let v = s.parse::<u32>().unwrap(); }}\n"
        );
        let f = all_findings(PATHS[path_idx], &src);
        let unwraps: Vec<&Finding> = f.iter().filter(|f| f.rule == "no-panic").collect();
        prop_assert_eq!(unwraps.len(), 1, "src: {}\nall: {:?}", src, f);
        prop_assert_eq!(unwraps[0].line, 2);
    }
}

// ---------------------------------------------------------------------------
// Lexer properties
// ---------------------------------------------------------------------------

/// Alphabet chosen to stress every lexer mode: string/char/raw-string
/// delimiters, comment openers that may never close, multibyte text, and
/// ordinary punctuation.
const STRESS_CHARS: &[char] = &[
    'a', 'b', '_', '0', '9', ' ', '\n', '\t', '"', '\'', '\\', '/', '*', '#', 'r', 'b', '(', ')',
    '{', '}', '[', ']', ';', ':', '.', '&', '=', '<', '>', '!', 'é', 'λ', '中', '🦀',
];

fn stress_source(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|&b| STRESS_CHARS[b as usize % STRESS_CHARS.len()])
        .collect()
}

proptest! {
    /// Token spans partition the source byte-exactly: contiguous,
    /// non-overlapping, starting at 0 and ending at `len` — for ANY
    /// input, including unterminated strings/comments and multibyte
    /// text. Every downstream rule depends on this geometry.
    #[test]
    fn lexer_spans_partition_any_source(
        bytes in proptest::collection::vec(0u8..=255, 0..120)
    ) {
        let src = stress_source(&bytes);
        let stream = lex(&src);
        let mut cursor = 0usize;
        for t in &stream.tokens {
            prop_assert_eq!(t.start, cursor, "gap/overlap in {src:?}");
            prop_assert!(t.end > t.start, "empty token in {src:?}");
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "spans must end at len: {src:?}");
    }

    /// Every span slices the source at a char boundary, so `Token::text`
    /// can never panic.
    #[test]
    fn lexer_spans_slice_cleanly(
        bytes in proptest::collection::vec(0u8..=255, 0..120)
    ) {
        let src = stress_source(&bytes);
        for t in &lex(&src).tokens {
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            let _ = t.text(&src);
        }
    }

    /// The sanitized line projection preserves byte geometry: same line
    /// count as the source and byte-identical lengths per line (literal
    /// and comment interiors blank to spaces, never shrink or grow).
    #[test]
    fn sanitized_lines_preserve_byte_geometry(
        bytes in proptest::collection::vec(0u8..=255, 0..120)
    ) {
        let src = stress_source(&bytes);
        let scanned = scan_source("crates/core/src/generated.rs", &src);
        let raw_lines: Vec<&str> = src.lines().collect();
        prop_assert_eq!(scanned.lines.len(), raw_lines.len());
        for (line, raw) in scanned.lines.iter().zip(&raw_lines) {
            prop_assert_eq!(line.code.len(), raw.len(), "line {}: {raw:?}", line.number);
        }
    }

    /// `#[cfg(test)]` marking: code after the gated `{` is in-test, code
    /// before the attribute is not, wherever the boundary falls.
    #[test]
    fn cfg_test_regions_split_exactly_at_the_gated_block(
        fillers in proptest::collection::vec(0usize..PAYLOADS.len(), 0..4)
    ) {
        let noise = join_payloads(&fillers, PAYLOADS).replace('"', "");
        let src = format!(
            "fn lib() {{ let a = 1; // {noise}\n}}\n\
             #[cfg(test)]\nmod tests {{\n    fn t() {{ let b = 2; }}\n}}\n\
             fn lib2() {{ let c = 3; }}\n"
        );
        let scanned = scan_source("crates/core/src/generated.rs", &src);
        // The gated region spans the block only: `{` through matching `}`
        // inclusive; the attribute and `mod tests` header stay non-test.
        let body_open = src.find("mod tests {").expect("fixture") + "mod tests ".len();
        let body_close = src.rfind("}\nfn lib2").expect("fixture") + 1;
        for t in scanned.tokens.iter().filter(|t| t.is_code()) {
            let inside = t.start >= body_open && t.end <= body_close;
            prop_assert_eq!(
                t.in_test, inside,
                "token {:?} at {}..{}", t.text(&src), t.start, t.end
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Lock-order fixtures (L9)
// ---------------------------------------------------------------------------

const LOCK_DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }\n";

fn analyze_fixture(files: &[(&str, String)]) -> smdb_lint::LockAnalysis {
    let scanned: Vec<ScannedFile> = files
        .iter()
        .map(|(path, src)| scan_source(path, src))
        .collect();
    analyze_locks(&scanned)
}

#[test]
fn lock_graph_two_cycle_across_files_is_a_finding() {
    let r = analyze_fixture(&[(
        "crates/x/src/pair.rs",
        format!(
            "{LOCK_DECLS}\
             fn f(s: &S) {{ let ga = s.a.lock(); let gb = s.b.lock(); }}\n\
             fn g(s: &S) {{ let gb = s.b.lock(); let ga = s.a.lock(); }}\n"
        ),
    )]);
    assert_eq!(r.cycles.len(), 1, "edges: {:?}", r.edges);
    assert_eq!(r.cycles[0], ["pair.a", "pair.b", "pair.a"]);
    let findings = lock_findings(&r);
    assert_eq!(findings.len(), 1);
    assert!(
        findings[0].exempt_from_budget,
        "lock-order cycles must never be budgetable"
    );
}

#[test]
fn lock_graph_three_cycle_is_a_finding() {
    let r = analyze_fixture(&[(
        "crates/x/src/tri.rs",
        format!(
            "{LOCK_DECLS}\
             fn f(s: &S) {{ let g1 = s.a.lock(); let g2 = s.b.lock(); }}\n\
             fn g(s: &S) {{ let g1 = s.b.lock(); let g2 = s.c.lock(); }}\n\
             fn h(s: &S) {{ let g1 = s.c.lock(); let g2 = s.a.lock(); }}\n"
        ),
    )]);
    assert_eq!(r.cycles.len(), 1, "edges: {:?}", r.edges);
    assert_eq!(r.cycles[0].len(), 4, "closed 3-walk: {:?}", r.cycles[0]);
    assert_eq!(lock_findings(&r).len(), 1);
}

#[test]
fn lock_graph_consistent_global_order_is_clean() {
    let r = analyze_fixture(&[(
        "crates/x/src/ordered.rs",
        format!(
            "{LOCK_DECLS}\
             fn f(s: &S) {{ let g1 = s.a.lock(); let g2 = s.b.lock(); }}\n\
             fn g(s: &S) {{ let g1 = s.a.lock(); let g2 = s.c.lock(); }}\n\
             fn h(s: &S) {{ let g1 = s.b.lock(); let g2 = s.c.lock(); }}\n"
        ),
    )]);
    assert!(r.acyclic(), "cycles: {:?}", r.cycles);
    assert!(!r.edges.is_empty(), "fixture should still produce edges");
    assert!(lock_findings(&r).is_empty());
}
