//! Property-based tests for the observability primitives: histogram
//! merge algebra and quantile error bounds, flight-recorder ring
//! behaviour, and counter totals under concurrent increments.

use std::sync::Arc;

use proptest::prelude::*;

use smdb::common::Cost;
use smdb::core::KpiCollector;
use smdb::obs::metrics::{counter, Histogram};
use smdb::obs::{FlightRecorder, TrailEvent};

fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    h
}

/// The exact `ceil(n·p)`-th smallest sample — the rank rule both the
/// histogram and `KpiCollector::percentile_response` use.
fn exact_quantile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.001f64..1.0e6, 1..160)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Index-wise count addition makes merge exactly associative and
    /// commutative — per-thread histograms can be combined in any order.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in samples(), b in samples(), c in samples(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(&ab, &ba, "commutative");
        prop_assert_eq!(ab_c.total(), (a.len() + b.len() + c.len()) as u64);
    }

    /// Every quantile is an upper bound on the exact ranked sample and
    /// overshoots by at most the containing bucket's width.
    #[test]
    fn histogram_quantiles_stay_within_one_bucket(
        s in samples(), p in 0.01f64..1.0,
    ) {
        let h = hist_of(&s);
        let q = h.quantile(p).expect("non-empty");
        let exact = exact_quantile(&s, p);
        prop_assert!(q >= exact, "quantile {q} below exact {exact}");
        prop_assert!(
            q - exact <= Histogram::bucket_width(exact),
            "quantile {q} more than one bucket above exact {exact}"
        );
    }

    /// On identical samples the histogram's p50/p95/p99 agree with the
    /// KPI collector's percentiles to within one bucket width — the two
    /// views of latency never tell conflicting stories.
    #[test]
    fn histogram_agrees_with_kpi_collector_percentiles(s in samples()) {
        let h = hist_of(&s);
        let kpis = KpiCollector::new(Cost(1_000.0), 0.3);
        for &v in &s {
            kpis.record_query(Cost(v));
        }
        for (p, kpi_value) in [
            (0.5, kpis.percentile_response(0.5)),
            (0.95, kpis.p95_response()),
            (0.99, kpis.p99_response()),
        ] {
            let q = h.quantile(p).expect("non-empty");
            let exact = kpi_value.ms();
            prop_assert!(
                q >= exact && q - exact <= Histogram::bucket_width(exact),
                "p{}: histogram {q} vs collector {exact}", (p * 100.0) as u32
            );
        }
    }

    /// The ring stays bounded, keeps exactly the most recent events, and
    /// its sequence numbers keep counting across evictions.
    #[test]
    fn flight_recorder_ring_is_bounded_and_recent(
        capacity in 1usize..48, pushes in 0u64..160,
    ) {
        let rec = FlightRecorder::new(capacity);
        for at in 0..pushes {
            rec.record(TrailEvent::ActionsQueued { at, actions: at as usize });
        }
        let events = rec.events();
        prop_assert_eq!(events.len(), (pushes as usize).min(capacity));
        prop_assert_eq!(rec.dropped(), pushes.saturating_sub(capacity as u64));
        // The retained suffix is exactly the last `len` events, in order.
        let first_kept = pushes - events.len() as u64;
        for (i, (seq, event)) in events.iter().enumerate() {
            let expected_at = first_kept + i as u64;
            prop_assert_eq!(*seq, expected_at, "seq counts across evictions");
            prop_assert_eq!(
                event,
                &TrailEvent::ActionsQueued {
                    at: expected_at,
                    actions: expected_at as usize,
                }
            );
        }
    }
}

#[test]
fn counter_totals_survive_concurrent_fan_out() {
    // A name no other test uses: the registry is process-global.
    let c = counter("test.obs_props.fan_out");
    let threads = 4u64;
    let per_thread = 1_000u64;
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            let c = Arc::clone(&c);
            scope.spawn(move |_| {
                for i in 0..per_thread {
                    if i % 2 == 0 {
                        c.inc();
                    } else {
                        c.add(2);
                    }
                }
            });
        }
    })
    .expect("no worker panicked");
    // Half the iterations add 1, half add 2.
    let expected = threads * (per_thread / 2) * 3;
    assert_eq!(counter("test.obs_props.fan_out").get(), expected);
}
