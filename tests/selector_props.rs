//! Property-based tests for the selector classes: feasibility under
//! arbitrary budgets/groups and the quality ordering
//! `optimal ≥ genetic ≥ greedy` (genetic is greedy-seeded).

use proptest::prelude::*;

use smdb::common::{ChunkColumnRef, Cost};
use smdb::core::candidate::{Assessment, Candidate, SelectionInput};
use smdb::core::selectors::{
    GeneticSelector, GreedySelector, OptimalSelector, RiskCriterion, RobustSelector, Selector,
};
use smdb::storage::{ConfigAction, IndexKind};

#[derive(Debug, Clone)]
struct Item {
    desirability: Vec<f64>,
    bytes: i64,
    group: Option<u64>,
}

fn items(max_n: usize) -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(-20.0f64..40.0, 2),
            0i64..2_000,
            proptest::option::of(0u64..4),
        )
            .prop_map(|(desirability, bytes, group)| Item {
                desirability,
                bytes,
                group,
            }),
        1..max_n,
    )
}

fn build(items: &[Item]) -> (Vec<Candidate>, Vec<Assessment>) {
    let candidates: Vec<Candidate> = items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            Candidate::new(
                ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(0, 0, i as u32),
                    kind: IndexKind::Hash,
                },
                item.group,
            )
        })
        .collect();
    let assessments: Vec<Assessment> = items
        .iter()
        .enumerate()
        .map(|(i, item)| Assessment {
            candidate: i,
            per_scenario: item.desirability.clone(),
            probabilities: vec![0.5, 0.5],
            confidence: 1.0,
            permanent_bytes: item.bytes,
            one_time_cost: Cost(1.0),
        })
        .collect();
    (candidates, assessments)
}

fn value(assessments: &[Assessment], chosen: &[usize]) -> f64 {
    chosen
        .iter()
        .map(|&i| assessments[i].expected_desirability())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_selectors_feasible(spec in items(24), budget in 0i64..20_000) {
        let (candidates, assessments) = build(&spec);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(budget),
            scenario_base_costs: None,
        };
        let selectors: Vec<Box<dyn Selector>> = vec![
            Box::new(GreedySelector),
            Box::new(OptimalSelector),
            Box::new(GeneticSelector { generations: 10, population: 16, ..GeneticSelector::default() }),
            Box::new(RobustSelector::new(RiskCriterion::WorstCase)),
            Box::new(RobustSelector::new(RiskCriterion::MeanVariance { lambda: 1.0 })),
            Box::new(RobustSelector::new(RiskCriterion::Cvar { alpha: 0.4 })),
        ];
        for s in &selectors {
            let chosen = s.select(&input).expect("selection succeeds");
            prop_assert!(input.is_feasible(&chosen), "{} infeasible: {chosen:?}", s.name());
            // No duplicates.
            let mut dedup = chosen.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), chosen.len());
        }
    }

    #[test]
    fn quality_ordering_holds(spec in items(20), budget in 100i64..10_000) {
        let (candidates, assessments) = build(&spec);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(budget),
            scenario_base_costs: None,
        };
        let greedy = value(&assessments, &GreedySelector.select(&input).expect("greedy"));
        let optimal = value(&assessments, &OptimalSelector.select(&input).expect("optimal"));
        let genetic = value(
            &assessments,
            &GeneticSelector { generations: 20, population: 24, ..GeneticSelector::default() }
                .select(&input)
                .expect("genetic"),
        );
        prop_assert!(optimal >= greedy - 1e-9, "optimal {optimal} < greedy {greedy}");
        prop_assert!(optimal >= genetic - 1e-9, "optimal {optimal} < genetic {genetic}");
        prop_assert!(genetic >= greedy - 1e-9, "genetic {genetic} < greedy {greedy} (greedy-seeded)");
        prop_assert!(greedy >= 0.0);
    }

    #[test]
    fn unbudgeted_optimal_takes_exactly_the_positive_ungrouped(spec in items(16)) {
        let (candidates, assessments) = build(&spec);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        let chosen = OptimalSelector.select(&input).expect("optimal");
        for (i, a) in assessments.iter().enumerate() {
            let positive = a.expected_desirability() > 0.0;
            if candidates[i].exclusive_group.is_none() {
                prop_assert_eq!(chosen.contains(&i), positive,
                    "ungrouped candidate {} mis-selected", i);
            } else if chosen.contains(&i) {
                prop_assert!(positive, "negative grouped candidate {} selected", i);
            }
        }
    }
}
