//! Tier-1 enforcement of the repo's static-analysis pass.
//!
//! `cargo test` runs the same engine as the `smdb-lint` binary, so the
//! invariants in `crates/lint/src/rules.rs` and the `lint.toml` budget
//! ratchet gate every change — no separate CI wiring required. The LP
//! audit additionally re-derives the paper's ordering-model size
//! formulas (Section III-B) across `|S| = 2..=8`.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repository_passes_smdb_lint() {
    let report = smdb_lint::lint_repo(repo_root()).expect("lint pass runs");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        !report.failed(),
        "smdb-lint found violations:\n{}",
        report.render_human()
    );
}

#[test]
fn budget_ratchet_has_no_slack() {
    // Budgets in lint.toml must track the actual finding counts exactly;
    // an over-generous budget would let new panics slip in unnoticed.
    let report = smdb_lint::lint_repo(repo_root()).expect("lint pass runs");
    let slack: Vec<String> = report
        .tightening_hints()
        .iter()
        .map(|a| {
            format!(
                "[{}] {}: budget {} > findings {}",
                a.rule, a.path, a.budget, a.count
            )
        })
        .collect();
    assert!(
        slack.is_empty(),
        "lint.toml budgets have slack — ratchet them down:\n{}",
        slack.join("\n")
    );
}

#[test]
fn ordering_model_matches_paper_formulas() {
    let audits = smdb_lint::audit_lp().expect("audit builds models");
    let (lo, hi) = smdb_lint::AUDIT_SIZES;
    assert_eq!(audits.len(), hi - lo + 1);
    for audit in &audits {
        assert!(
            audit.passed(),
            "LP audit failed:\n{}",
            smdb_lint::render_audit(audit)
        );
    }
}

#[test]
fn ordering_model_size_regression_at_three_features() {
    // |S| = 3 → 2·9 − 3 = 15 variables, 2·9 = 18 constraints. Pinned as
    // concrete numbers so a formula typo can't cancel itself out.
    let problem = smdb_lp::audit::audit_instance(3).expect("instance builds");
    let model = problem.build_model().expect("model builds");
    assert_eq!(model.num_vars(), 15);
    assert_eq!(model.num_constraints(), 18);
}
