//! Tier-1 enforcement of the repo's static-analysis pass.
//!
//! `cargo test` runs the same engine as the `smdb-lint` binary, so the
//! invariants in `crates/lint/src/rules.rs` and the `lint.toml` budget
//! ratchet gate every change — no separate CI wiring required. The LP
//! audit additionally re-derives the paper's ordering-model size
//! formulas (Section III-B) across `|S| = 2..=8`.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repository_passes_smdb_lint() {
    let report = smdb_lint::lint_repo(repo_root()).expect("lint pass runs");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        !report.failed(),
        "smdb-lint found violations:\n{}",
        report.render_human()
    );
}

#[test]
fn budget_ratchet_has_no_slack() {
    // Budgets in lint.toml must track the actual finding counts exactly;
    // an over-generous budget would let new panics slip in unnoticed.
    let report = smdb_lint::lint_repo(repo_root()).expect("lint pass runs");
    let slack: Vec<String> = report
        .tightening_hints()
        .iter()
        .map(|a| {
            format!(
                "[{}] {}: budget {} > findings {}",
                a.rule, a.path, a.budget, a.count
            )
        })
        .collect();
    assert!(
        slack.is_empty(),
        "lint.toml budgets have slack — ratchet them down:\n{}",
        slack.join("\n")
    );
}

/// Pre-rewrite finding counts for the six legacy rules (L1–L6), pinned
/// at the point the regex line scanner was replaced by the token-stream
/// backend. The only non-zero rule is the grandfathered `no-panic` long
/// tail tracked in lint.toml; a drift in either direction means the
/// lexer projection changed rule semantics.
#[test]
fn legacy_rules_reproduce_pre_rewrite_counts() {
    let cfg = smdb_lint::load_config(repo_root()).expect("config loads");
    let scanned = smdb_lint::scan_repo(repo_root(), &cfg).expect("scan runs");
    let mut findings = Vec::new();
    for file in &scanned {
        for rule in smdb_lint::registry() {
            rule.check_file(file, &mut findings);
        }
    }
    let count = |id: &str| findings.iter().filter(|f| f.rule == id).count();
    assert_eq!(count("no-panic"), 12, "grandfathered unwrap/expect tail");
    assert_eq!(count("no-entropy"), 0);
    assert_eq!(count("no-float-eq"), 0);
    assert_eq!(count("no-wall-clock"), 0);
    assert_eq!(count("obs-clock"), 0);
    assert_eq!(count("thread-discipline"), 0);
}

/// Writes a throwaway repo under the cargo tmp dir and lints it with the
/// default (budget-free) config, as the binary would.
fn lint_fixture(name: &str, files: &[(&str, &str)]) -> smdb_lint::LintReport {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, src).expect("write fixture");
    }
    smdb_lint::lint_repo(&root).expect("fixture lints")
}

fn assert_fails_with(report: &smdb_lint::LintReport, rule: &str) {
    assert!(
        report.failed(),
        "fixture should fail:\n{}",
        report.render_human()
    );
    assert_eq!(report.exit_code(), 1);
    assert!(
        report.violations.iter().any(|v| v.rule == rule),
        "expected a [{rule}] violation:\n{}",
        report.render_human()
    );
}

#[test]
fn map_iteration_fixture_exits_nonzero() {
    let report = lint_fixture(
        "lint-fixture-l7",
        &[(
            "crates/obs/src/generated.rs",
            "fn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m {\n        let _ = (k, v);\n    }\n}\n",
        )],
    );
    assert_fails_with(&report, "map-iteration");
}

#[test]
fn atomic_ordering_fixture_exits_nonzero() {
    let report = lint_fixture(
        "lint-fixture-l8",
        &[(
            "crates/core/src/generated.rs",
            "fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::SeqCst)\n}\n",
        )],
    );
    assert_fails_with(&report, "atomic-ordering");
}

#[test]
fn lock_order_fixture_exits_nonzero() {
    let report = lint_fixture(
        "lint-fixture-l9",
        &[(
            "crates/core/src/generated.rs",
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }\n\
             fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }\n",
        )],
    );
    assert_fails_with(&report, "lock-order");
}

#[test]
fn layering_violation_fixture_exits_nonzero() {
    // storage (layer 2) reaching up into core (layer 5) is an illegal
    // upward edge regardless of budgets.
    let report = lint_fixture(
        "lint-fixture-layering",
        &[(
            "crates/storage/src/generated.rs",
            "use smdb_core::driver::Driver;\nfn f(_d: &Driver) {}\n",
        )],
    );
    assert_fails_with(&report, "crate-layering");
}

#[test]
fn concurrency_audit_of_this_repo_is_clean_and_validates() {
    let cfg = smdb_lint::load_config(repo_root()).expect("config loads");
    let scanned = smdb_lint::scan_repo(repo_root(), &cfg).expect("scan runs");
    let audit = smdb_lint::audit_concurrency(&scanned);
    assert!(
        !audit.failed(),
        "concurrency audit must stay clean: layering cycles/violations or lock cycles"
    );
    assert!(audit.locks.acyclic(), "global lock graph must stay acyclic");
    let json = smdb_lint::audit::audit_to_json(&audit);
    smdb_lint::validate_concurrency_audit(&json).expect("self-emitted audit validates");
    // Round-trip through the JSON parser, as ci.sh consumes it.
    let parsed = smdb_common::json::parse(&json.to_string_pretty()).expect("parses");
    smdb_lint::validate_concurrency_audit(&parsed).expect("round-tripped audit validates");
}

#[test]
fn ordering_model_matches_paper_formulas() {
    let audits = smdb_lint::audit_lp().expect("audit builds models");
    let (lo, hi) = smdb_lint::AUDIT_SIZES;
    assert_eq!(audits.len(), hi - lo + 1);
    for audit in &audits {
        assert!(
            audit.passed(),
            "LP audit failed:\n{}",
            smdb_lint::render_audit(audit)
        );
    }
}

#[test]
fn ordering_model_size_regression_at_three_features() {
    // |S| = 3 → 2·9 − 3 = 15 variables, 2·9 = 18 constraints. Pinned as
    // concrete numbers so a formula typo can't cancel itself out.
    let problem = smdb_lp::audit::audit_instance(3).expect("instance builds");
    let model = problem.build_model().expect("model builds");
    assert_eq!(model.num_vars(), 15);
    assert_eq!(model.num_constraints(), 18);
}
