//! Deterministic trace-replay tests over the flight-recorder trail.
//!
//! The decision trail is a correctness oracle: every event's `at` stamp
//! is logical time and every input to a decision is seeded, so the same
//! seed must replay the *byte-identical* trail, and the tuning thread's
//! decision subsequence must not depend on how many workers served the
//! buckets.

mod harness;

use std::sync::Arc;

use smdb::common::Cost;
use smdb::core::driver::{Driver, OrderingPolicy};
use smdb::core::FeatureKind;
use smdb::obs::{PanicDump, TrailEvent};
use smdb::runtime::{FaultPlan, Runtime};

/// The shared small soak fixture, served with one injected apply
/// failure so the trail contains a rollback.
fn soak_runtime(db: Arc<smdb::query::Database>, workers: usize) -> Runtime {
    harness::soak_runtime_with(db, workers, Cost(500.0), FaultPlan::failing_attempts([0]))
}

/// Runs the fixture soak and returns the trail (events + JSON export).
fn run_soak(workers: usize) -> (Vec<(u64, TrailEvent)>, String) {
    let (db, plan) = harness::small_soak();
    let runtime = soak_runtime(db, workers);
    let recorder = Arc::clone(runtime.driver().flight_recorder());
    recorder.set_auto_dump(false);
    let _dump = PanicDump::new(Arc::clone(&recorder));
    runtime.run(&plan).expect("soak runs");
    (recorder.events(), recorder.to_json().to_string_pretty())
}

#[test]
fn same_seed_soaks_replay_byte_identical_trails() {
    let (first_events, first_json) = run_soak(2);
    let (second_events, second_json) = run_soak(2);
    assert!(
        first_events.len() > 10,
        "expected a substantial trail, got {} events",
        first_events.len()
    );
    assert_eq!(
        first_events, second_events,
        "same seed must replay the same decisions"
    );
    assert_eq!(first_json, second_json, "JSON export is byte-identical");
    // The trail saw the whole loop: trigger, assessment, queueing, the
    // injected failure's rollback, and a stored instance afterwards.
    for kind in [
        "tuning_triggered",
        "candidate_assessed",
        "actions_queued",
        "action_rolled_back",
        "instance_stored",
    ] {
        assert!(
            first_events.iter().any(|(_, e)| e.kind() == kind),
            "no {kind} event in the trail"
        );
    }
}

#[test]
fn decision_subsequence_is_worker_count_invariant() {
    let decisions = |events: &[(u64, TrailEvent)]| -> Vec<TrailEvent> {
        events
            .iter()
            .filter(|(_, e)| e.is_decision())
            .map(|(_, e)| e.clone())
            .collect()
    };
    let (two, _) = run_soak(2);
    let (four, _) = run_soak(4);
    let two = decisions(&two);
    let four = decisions(&four);
    assert!(!two.is_empty(), "the tuning thread made decisions");
    assert_eq!(
        two, four,
        "tuning decisions must not depend on the worker count"
    );
}

#[test]
fn lp_ordering_decision_records_objective_and_dependence() {
    let (db, plan) = harness::small_soak();
    let driver = Driver::builder(db)
        .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
        .ordering_policy(OrderingPolicy::LpOptimized)
        .kpi_bucket_capacity(Cost(500.0))
        .build();
    driver.flight_recorder().set_auto_dump(false);
    let _dump = PanicDump::new(Arc::clone(driver.flight_recorder()));
    for bucket in plan.iter().take(3) {
        driver.run_bucket(&bucket.queries).expect("bucket runs");
    }
    driver.force_tune().expect("tuning runs");

    let events = driver.flight_recorder().events();
    let (order, objective, dependence) = events
        .iter()
        .find_map(|(_, e)| match e {
            TrailEvent::IlpOrderChosen {
                order,
                objective,
                dependence,
                ..
            } => Some((order.clone(), *objective, dependence.clone())),
            _ => None,
        })
        .expect("an ilp_order_chosen event");
    let mut sorted = order.clone();
    sorted.sort();
    assert_eq!(sorted, vec!["compression", "indexing"]);
    assert!(objective.is_finite(), "objective {objective} is finite");
    assert_eq!(dependence.len(), 2, "d_{{A,B}} is |S| x |S|");
    assert!(dependence.iter().all(|row| row.len() == 2));
    assert!(dependence
        .iter()
        .flatten()
        .all(|d| d.is_finite() && *d >= 0.0));
    // The per-feature assessments around the ordering decision name the
    // same features the order lists.
    for feature in ["indexing", "compression"] {
        assert!(
            events.iter().any(|(_, e)| matches!(
                e,
                TrailEvent::CandidateAssessed { feature: f, .. } if f == feature
            )),
            "no candidate_assessed event for {feature}"
        );
    }
}
