//! Property-based tests for the workload predictor: analyzers respect
//! their contracts, histories diff plan-cache snapshots exactly, and
//! clustering conserves weight.

use proptest::prelude::*;

use smdb::common::{ColumnId, Cost, LogicalTime, TableId};
use smdb::forecast::analyzer::WorkloadAnalyzer;
use smdb::forecast::analyzers::{AutoRegressive, LastValue, LinearTrend, MovingAverage, Seasonal};
use smdb::forecast::cluster::cluster_templates;
use smdb::forecast::{PredictorConfig, WorkloadHistory, WorkloadPredictor};
use smdb::query::{PlanCache, Query};
use smdb::storage::ScanPredicate;

fn analyzers() -> Vec<Box<dyn WorkloadAnalyzer>> {
    vec![
        Box::new(LastValue),
        Box::new(MovingAverage::new(3)),
        Box::new(LinearTrend),
        Box::new(Seasonal::new(4)),
        Box::new(AutoRegressive::new(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analyzer_contracts(
        series in proptest::collection::vec(0.0f64..100.0, 0..40),
        horizon in 0usize..6,
    ) {
        for a in analyzers() {
            let f = a.forecast(&series, horizon);
            prop_assert_eq!(f.len(), horizon, "{} horizon", a.name());
            prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0),
                "{} produced invalid forecast {f:?}", a.name());
        }
    }

    #[test]
    fn history_counts_match_recorded_executions(
        bucket_counts in proptest::collection::vec(0usize..12, 1..8),
    ) {
        let q = Query::new(
            TableId(0),
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 1i64)],
            None,
            "q",
        );
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        for (bucket, &count) in bucket_counts.iter().enumerate() {
            for _ in 0..count {
                cache.record(&q, Cost(1.0), LogicalTime(bucket as u64));
            }
            hist.observe(LogicalTime(bucket as u64), &cache.snapshot());
        }
        let total: usize = bucket_counts.iter().sum();
        if total == 0 {
            prop_assert!(hist.template(q.fingerprint()).is_none()
                || hist.template(q.fingerprint()).expect("exists").total == 0.0);
        } else {
            let th = hist.template(q.fingerprint()).expect("observed");
            let series = th.series(0, bucket_counts.len() as u64);
            let expected: Vec<f64> = bucket_counts.iter().map(|&c| c as f64).collect();
            prop_assert_eq!(series, expected);
            prop_assert_eq!(th.total, total as f64);
        }
    }

    #[test]
    fn clustering_partitions_and_conserves_weight(
        counts in proptest::collection::vec(1usize..9, 1..24),
        k in 1usize..8,
        seed in 0u64..8,
    ) {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        for (i, &c) in counts.iter().enumerate() {
            let q = Query::new(
                TableId((i % 3) as u32),
                format!("t{}", i % 3),
                vec![ScanPredicate::eq(ColumnId((i % 5) as u16), i as i64)],
                None,
                format!("q{i}"),
            );
            for _ in 0..c {
                cache.record(&q, Cost(1.0), LogicalTime(0));
            }
        }
        hist.observe(LogicalTime(0), &cache.snapshot());
        let n_templates = hist.len();

        let clusters = cluster_templates(&hist, k, seed);
        let members: usize = clusters.iter().map(|c| c.members.len()).sum();
        prop_assert_eq!(members, n_templates, "partition covers all templates");
        prop_assert!(clusters.len() <= k.min(n_templates));
        let weight: f64 = clusters.iter().map(|c| c.total_weight).sum();
        let expected: f64 = hist.iter().map(|(_, th)| th.total).sum();
        prop_assert!((weight - expected).abs() < 1e-9);
        for c in &clusters {
            prop_assert!(c.members.contains(&c.representative));
        }
    }

    #[test]
    fn forecast_probabilities_normalised(
        counts in proptest::collection::vec(1usize..10, 1..6),
        samples in 0usize..4,
    ) {
        let mut cache = PlanCache::default();
        let mut hist = WorkloadHistory::new();
        for (bucket, &c) in counts.iter().enumerate() {
            let q = Query::new(
                TableId(0),
                "t",
                vec![ScanPredicate::eq(ColumnId(0), 1i64)],
                None,
                "q",
            );
            for _ in 0..c {
                cache.record(&q, Cost(1.0), LogicalTime(bucket as u64));
            }
            hist.observe(LogicalTime(bucket as u64), &cache.snapshot());
        }
        let predictor = WorkloadPredictor::new(
            Box::new(LastValue),
            PredictorConfig { samples, ..PredictorConfig::default() },
        );
        let set = predictor.predict(&hist);
        prop_assert!(!set.is_empty());
        prop_assert!((set.total_probability() - 1.0).abs() < 1e-9);
        prop_assert!(set.expected().is_some());
        // Worst case dominates expected in total weight.
        let e = set.expected().expect("expected").workload.total_weight();
        let w = set.worst_case().expect("worst").workload.total_weight();
        prop_assert!(w >= e - 1e-9);
    }
}
