//! Property-based tests for the delta-aware what-if cost cache: under
//! arbitrary configuration-action sequences, cached and uncached
//! workload costs stay bit-identical, and re-assessing after a cache
//! flush matches a fresh assessor exactly.

use std::sync::Arc;

use proptest::prelude::*;

use smdb::common::{ChunkColumnRef, ChunkId, ColumnId, TableId};
use smdb::core::assessor::{Assessor, WhatIfAssessor};
use smdb::core::candidate::Candidate;
use smdb::cost::{LogicalCostModel, WhatIf};
use smdb::forecast::{ForecastSet, ScenarioKind, WorkloadScenario};
use smdb::query::{Query, WeightedQuery, Workload};
use smdb::storage::value::ColumnValues;
use smdb::storage::{
    ColumnDef, ConfigAction, ConfigInstance, DataType, EncodingKind, IndexKind, KnobKind,
    ScanPredicate, Schema, StorageEngine, Table, Tier,
};

/// Two tables (4 and 2 chunks) so cross-table isolation is exercised.
fn engine() -> (StorageEngine, TableId, TableId) {
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Int),
    ])
    .expect("valid schema");
    let table = Table::from_columns(
        "t",
        schema,
        vec![
            ColumnValues::Int((0..800).map(|i| i % 40).collect()),
            ColumnValues::Int((0..800).map(|i| (i * 7) % 11).collect()),
        ],
        200,
    )
    .expect("builds");
    let schema2 = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).expect("valid schema");
    let table2 = Table::from_columns(
        "u",
        schema2,
        vec![ColumnValues::Int((0..400).map(|i| i % 13).collect())],
        200,
    )
    .expect("builds");
    let mut e = StorageEngine::default();
    let t = e.create_table(table).expect("unique");
    let u = e.create_table(table2).expect("unique");
    (e, t, u)
}

fn workload(t: TableId, u: TableId) -> Workload {
    let q = |tid, col: u16, v: i64, name: &str| {
        Query::new(
            tid,
            "t",
            vec![ScanPredicate::eq(ColumnId(col), v)],
            None,
            name,
        )
    };
    Workload::new(vec![
        WeightedQuery::new(q(t, 0, 7, "q0"), 5.0),
        WeightedQuery::new(q(t, 1, 3, "q1"), 2.0),
        WeightedQuery::new(q(u, 0, 4, "q2"), 9.0),
        WeightedQuery::new(Query::new(t, "t", vec![], None, "scan"), 1.0),
    ])
}

/// Arbitrary configuration actions over the two-table catalog (indexes,
/// encodings, placements, knob moves — including out-of-range chunk and
/// column references, which configurations tolerate as inert entries).
fn action_strategy() -> impl Strategy<Value = ConfigAction> {
    (0u32..5, 0u32..2, 0u16..2, 0u32..4, 0usize..4).prop_map(
        |(discriminator, table, col, chunk, variant)| {
            let target = ChunkColumnRef::new(table, col, chunk);
            match discriminator {
                0 => ConfigAction::CreateIndex {
                    target,
                    kind: [IndexKind::Hash, IndexKind::BTree][variant % 2],
                },
                1 => ConfigAction::DropIndex { target },
                2 => ConfigAction::SetEncoding {
                    target,
                    kind: [
                        EncodingKind::Unencoded,
                        EncodingKind::Dictionary,
                        EncodingKind::RunLength,
                        EncodingKind::FrameOfReference,
                    ][variant],
                },
                3 => ConfigAction::SetPlacement {
                    table: TableId(table),
                    chunk: ChunkId(chunk),
                    tier: [Tier::Hot, Tier::Warm, Tier::Cold][variant % 3],
                },
                _ => ConfigAction::SetKnob {
                    knob: KnobKind::BufferPoolMb,
                    value: variant as f64 * 16.0,
                },
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After every prefix of an arbitrary action sequence, the cached
    /// workload cost equals the uncached one bit-for-bit — the cache may
    /// never change a tuning decision, only its latency.
    #[test]
    fn cached_workload_cost_is_bit_identical(
        actions in proptest::collection::vec(action_strategy(), 1..12),
    ) {
        let (engine, t, u) = engine();
        let est: Arc<dyn smdb::cost::CostEstimator> =
            Arc::new(LogicalCostModel::default());
        let cached = WhatIf::new(est.clone());
        let plain = WhatIf::uncached(est);
        let w = workload(t, u);
        let mut config = ConfigInstance::default();
        for (i, action) in actions.iter().enumerate() {
            config.apply(action);
            // Twice: first pass fills the cache, second is served by it.
            for pass in 0..2 {
                let a = cached.workload_cost(&engine, &w, &config).unwrap();
                let b = plain.workload_cost(&engine, &w, &config).unwrap();
                prop_assert_eq!(
                    a.ms().to_bits(), b.ms().to_bits(),
                    "step {} pass {}: cached {} != uncached {}", i, pass, a.ms(), b.ms()
                );
            }
        }
    }

    /// Flushing the cache and re-assessing must reproduce what a fresh
    /// assessor computes, entry for entry.
    #[test]
    fn reassess_after_flush_matches_fresh_assessor(
        actions in proptest::collection::vec(action_strategy(), 0..6),
        subset_mask in 1u8..15,
    ) {
        let (engine, t, u) = engine();
        let mut base = ConfigInstance::default();
        for action in &actions {
            base.apply(action);
        }
        let scenarios = ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload: workload(t, u),
            }],
        };
        let candidates: Vec<Candidate> = (0..4u32)
            .map(|chunk| Candidate::new(
                ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(t.0, 0, chunk),
                    kind: IndexKind::Hash,
                },
                None,
            ))
            .collect();
        let subset: Vec<usize> =
            (0..4).filter(|i| subset_mask & (1 << i) != 0).collect();

        let est: Arc<dyn smdb::cost::CostEstimator> =
            Arc::new(LogicalCostModel::default());
        let what_if = WhatIf::new(est.clone());
        let warm = WhatIfAssessor::new(what_if.clone(), 0.9);
        // Warm the cache, then flush it mid-flight (as a model refit
        // would) and re-assess the subset.
        warm.assess(&engine, &base, &scenarios, &candidates).unwrap();
        what_if.clear_cache();
        let after_flush = warm
            .reassess(&engine, &base, &scenarios, &candidates, &subset)
            .unwrap();

        let fresh = WhatIfAssessor::new(WhatIf::new(est), 0.9);
        let expected = fresh
            .reassess(&engine, &base, &scenarios, &candidates, &subset)
            .unwrap();

        prop_assert_eq!(after_flush.len(), expected.len());
        for (a, b) in after_flush.iter().zip(&expected) {
            prop_assert_eq!(a.candidate, b.candidate);
            prop_assert_eq!(&a.per_scenario, &b.per_scenario);
            prop_assert_eq!(a.permanent_bytes, b.permanent_bytes);
        }
    }
}
