//! What-if consistency: hypothetical cost estimates must agree with the
//! measured cost once the hypothetical configuration is actually applied
//! — the contract that makes tuning decisions trustworthy.

use std::sync::Arc;

use smdb::common::{ChunkColumnRef, ColumnId};
use smdb::cost::features::ConfigContext;
use smdb::cost::{CalibratedCostModel, CostEstimator, WhatIf};
use smdb::query::{Query, Workload};
use smdb::storage::value::ColumnValues;
use smdb::storage::{
    ColumnDef, ConfigInstance, DataType, EncodingKind, IndexKind, ScanPredicate, Schema,
    StorageEngine, Table, Tier,
};

fn engine() -> (StorageEngine, smdb::common::TableId) {
    let schema = Schema::new(vec![
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("v", DataType::Int),
        ColumnDef::new("ts", DataType::Int),
    ])
    .expect("valid schema");
    let table = Table::from_columns(
        "t",
        schema,
        vec![
            ColumnValues::Int((0..8_000).map(|i| i % 200).collect()),
            ColumnValues::Int((0..8_000).map(|i| (i * 13) % 997).collect()),
            // Sorted timestamp column: range queries over it visit a
            // *varying* number of chunks (pruning), which is what makes
            // the per-chunk-visit coefficient identifiable.
            ColumnValues::Int((0..8_000).collect()),
        ],
        1_000,
    )
    .expect("builds");
    let mut e = StorageEngine::default();
    let t = e.create_table(table).expect("unique");
    (e, t)
}

/// Trains a model on both the plain engine and an indexed/encoded clone
/// so every cost path has observations.
fn trained(engine: &StorageEngine, t: smdb::common::TableId) -> Arc<CalibratedCostModel> {
    let model = Arc::new(CalibratedCostModel::new());
    // Two *separate* variants: one index-only, one encoding-only. A
    // combined variant would make probe work collinear with encoded-scan
    // work across all training queries, leaving the probe coefficient
    // unidentifiable.
    let mut indexed_variant = engine.clone();
    for chunk in 0..4u32 {
        indexed_variant
            .apply_action(&smdb::storage::ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, chunk),
                kind: if chunk % 2 == 0 {
                    IndexKind::Hash
                } else {
                    IndexKind::BTree
                },
            })
            .expect("applies");
    }
    let mut encoded_variant = engine.clone();
    for chunk in 0..6u32 {
        encoded_variant
            .apply_action(&smdb::storage::ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, chunk),
                kind: EncodingKind::Dictionary,
            })
            .expect("applies");
    }
    // Diverse training shapes: point lookups, ranges of varying
    // selectivity, a second column, aggregates — feature variation is
    // what makes the regression coefficients identifiable.
    for (eng, label) in [
        (engine, "plain"),
        (&indexed_variant, "indexed"),
        (&encoded_variant, "encoded"),
    ] {
        let config = eng.current_config();
        for i in 0..60i64 {
            let shapes = [
                Query::new(
                    t,
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i * 7) % 200)],
                    None,
                    "pt",
                ),
                Query::new(
                    t,
                    "t",
                    vec![ScanPredicate::between(ColumnId(0), i % 150, i % 150 + 20)],
                    None,
                    "range",
                ),
                Query::new(
                    t,
                    "t",
                    vec![ScanPredicate::cmp(
                        ColumnId(1),
                        smdb::storage::PredicateOp::Lt,
                        (i * 31) % 997,
                    )],
                    Some(smdb::storage::Aggregate::count()),
                    "agg",
                ),
                {
                    // Varying-width time windows: 1 to ~7 chunks visited.
                    let width = 300 + (i % 7) * 1_000;
                    let start = (i * 211) % (8_000 - width).max(1);
                    Query::new(
                        t,
                        "t",
                        vec![ScanPredicate::between(ColumnId(2), start, start + width)],
                        None,
                        "time_window",
                    )
                },
            ];
            for q in shapes {
                let out = eng
                    .scan(t, q.predicates(), q.aggregate())
                    .expect("scan runs");
                model
                    .observe(eng, &q, &config, out.sim_cost)
                    .unwrap_or_else(|e| panic!("observe {label}: {e}"));
            }
        }
    }
    model.refit().expect("fits");
    model
}

fn workload(t: smdb::common::TableId) -> Workload {
    let mut w = Workload::default();
    for i in 0..40 {
        w.push(
            Query::new(
                t,
                "t",
                vec![ScanPredicate::eq(ColumnId(0), i * 5)],
                None,
                "probe",
            ),
            2.0,
        );
    }
    w
}

/// Applies `config` to a clone and measures the true workload cost.
fn realized(engine: &StorageEngine, config: &ConfigInstance, w: &Workload) -> f64 {
    let mut clone = engine.clone();
    clone
        .apply_all(&clone.current_config().diff(config))
        .expect("actions apply");
    w.queries()
        .iter()
        .map(|wq| {
            clone
                .scan(
                    wq.query.table(),
                    wq.query.predicates(),
                    wq.query.aggregate(),
                )
                .expect("scan runs")
                .sim_cost
                .ms()
                * wq.weight
        })
        .sum()
}

#[test]
fn estimates_track_reality_across_configs() {
    let (engine, t) = engine();
    let model = trained(&engine, t);
    let what_if = WhatIf::new(model);
    let w = workload(t);

    // A spread of hypothetical configurations.
    let mut configs = vec![ConfigInstance::default()];
    let mut indexed = ConfigInstance::default();
    for chunk in 0..8u32 {
        indexed
            .indexes
            .insert(ChunkColumnRef::new(t.0, 0, chunk), IndexKind::Hash);
    }
    configs.push(indexed);
    let mut encoded = ConfigInstance::default();
    for chunk in 0..8u32 {
        encoded
            .encodings
            .insert(ChunkColumnRef::new(t.0, 0, chunk), EncodingKind::Dictionary);
    }
    configs.push(encoded);

    for (i, config) in configs.iter().enumerate() {
        let estimated = what_if
            .workload_cost(&engine, &w, config)
            .expect("estimates")
            .ms();
        let actual = realized(&engine, config, &w);
        let rel = (estimated - actual).abs() / actual.max(1e-9);
        assert!(
            rel < 0.35,
            "config {i}: estimate {estimated:.2} vs actual {actual:.2} (rel {rel:.2})"
        );
    }

    // Crucially, the *ranking* of configurations must be correct.
    let est: Vec<f64> = configs
        .iter()
        .map(|c| {
            what_if
                .workload_cost(&engine, &w, c)
                .expect("estimates")
                .ms()
        })
        .collect();
    let act: Vec<f64> = configs.iter().map(|c| realized(&engine, c, &w)).collect();
    let best_est = (0..3)
        .min_by(|&a, &b| est[a].total_cmp(&est[b]))
        .expect("3 configs");
    let best_act = (0..3)
        .min_by(|&a, &b| act[a].total_cmp(&act[b]))
        .expect("3 configs");
    assert_eq!(
        best_est, best_act,
        "estimator must rank the best config first"
    );
}

#[test]
fn estimation_never_mutates_the_engine() {
    let (engine, t) = engine();
    let model = trained(&engine, t);
    let before = engine.current_config();
    let w = workload(t);
    let mut hypo = ConfigInstance::default();
    hypo.indexes
        .insert(ChunkColumnRef::new(t.0, 0, 0), IndexKind::BTree);
    hypo.placements
        .insert((t, smdb::common::ChunkId(1)), Tier::Cold);
    let ctx = ConfigContext::new(&engine, &hypo);
    for wq in w.queries() {
        model
            .query_cost(&engine, &ctx, &wq.query, &hypo)
            .expect("estimates");
    }
    assert_eq!(engine.current_config(), before);
}

#[test]
fn composite_index_estimates_track_reality() {
    let (engine, t) = engine();
    let model = trained(&engine, t);
    let what_if = WhatIf::new(model);

    // Conjunctive two-column point workload.
    let mut w = Workload::default();
    for i in 0..30i64 {
        w.push(
            Query::new(
                t,
                "t",
                vec![
                    ScanPredicate::eq(ColumnId(0), (i * 7) % 200),
                    ScanPredicate::eq(ColumnId(1), (i * 13) % 997),
                ],
                None,
                "pair",
            ),
            2.0,
        );
    }

    let mut composite = ConfigInstance::default();
    for chunk in 0..8u32 {
        composite.indexes.insert(
            ChunkColumnRef::new(t.0, 0, chunk),
            IndexKind::CompositeHash {
                second: ColumnId(1),
            },
        );
    }
    let base = ConfigInstance::default();
    let est_base = what_if.workload_cost(&engine, &w, &base).expect("est").ms();
    let est_comp = what_if
        .workload_cost(&engine, &w, &composite)
        .expect("est")
        .ms();
    let act_base = realized(&engine, &base, &w);
    let act_comp = realized(&engine, &composite, &w);
    // Composite must be predicted AND measured as a large win.
    assert!(
        act_comp < act_base * 0.2,
        "measured {act_comp} vs {act_base}"
    );
    assert!(
        est_comp < est_base * 0.5,
        "estimated {est_comp} vs {est_base}"
    );
}
