//! Combined tuning of multiple dependent features (Section III).
//!
//! Determines impact ratios `W∅/W_A` and the dependence matrix `d_{A,B}`
//! automatically, solves the paper's integer LP for the tuning order, and
//! verifies it against exhaustive permutation search.
//!
//! ```text
//! cargo run --release --example feature_ordering
//! ```

use std::sync::Arc;

use smdb::core::tuner::standard_tuner;
use smdb::core::{ConstraintSet, FeatureKind, MultiFeatureTuner};
use smdb::cost::{CalibratedCostModel, WhatIf};
use smdb::forecast::{ForecastSet, ScenarioKind, WorkloadScenario};
use smdb::lp::permutation::brute_force_order;
use smdb::query::Workload;
use smdb::storage::StorageEngine;
use smdb::workload::generators::scan_heavy_mix;
use smdb::workload::tpch::{build_catalog, TpchTemplates, NUM_TEMPLATES};

fn main() {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 20_000, 2_000, 5).expect("catalog builds");
    let templates = TpchTemplates::new(catalog);

    // Train the adaptive cost model — on the plain engine *and* a
    // physically diverse variant, so every encoding/index regime has
    // observations (the paper's start-up calibration run).
    let model = Arc::new(CalibratedCostModel::new());
    let mut rng = smdb::common::seeded_rng(9);
    let mut variant = engine.clone();
    let lineitem = templates.catalog().lineitem;
    for chunk in 0..4u32 {
        for (col, kind) in [
            (1u16, smdb::storage::EncodingKind::Dictionary),
            (5u16, smdb::storage::EncodingKind::Dictionary),
        ] {
            variant
                .apply_action(&smdb::storage::ConfigAction::SetEncoding {
                    target: smdb::common::ChunkColumnRef {
                        table: lineitem,
                        column: smdb::common::ColumnId(col),
                        chunk: smdb::common::ChunkId(chunk),
                    },
                    kind,
                })
                .expect("applies");
        }
        variant
            .apply_action(&smdb::storage::ConfigAction::CreateIndex {
                target: smdb::common::ChunkColumnRef {
                    table: lineitem,
                    column: smdb::common::ColumnId(1),
                    chunk: smdb::common::ChunkId(chunk),
                },
                kind: smdb::storage::IndexKind::Hash,
            })
            .expect("applies");
    }
    for eng in [&engine, &variant] {
        let config = eng.current_config();
        for i in 0..150 {
            let q = templates.sample(i % NUM_TEMPLATES, &mut rng);
            let out = eng
                .scan_grouped(q.table(), q.predicates(), q.aggregate(), q.group_by())
                .expect("scan runs");
            model
                .observe(eng, &q, &config, out.sim_cost)
                .expect("observation absorbed");
        }
    }
    model.refit().expect("model fits");
    let what_if = WhatIf::new(model);

    // One expected scenario from a blended HTAP mix.
    let mix: Vec<f64> = scan_heavy_mix()
        .iter()
        .zip(&smdb::workload::generators::point_heavy_mix())
        .map(|(a, b)| a + b)
        .collect();
    let total: f64 = mix.iter().sum();
    let mut workload = Workload::default();
    for (id, &m) in mix.iter().enumerate() {
        workload.push(templates.sample(id, &mut rng), m / total * 250.0);
    }
    let forecast = ForecastSet {
        scenarios: vec![WorkloadScenario {
            kind: ScenarioKind::Expected,
            name: "expected".into(),
            probability: 1.0,
            workload,
        }],
    };

    // Multi-feature tuner over indexing + compression (the paper's
    // running example of dependent features).
    let features = [FeatureKind::Indexing, FeatureKind::Compression];
    let tuners = features
        .iter()
        .map(|&f| standard_tuner(f, what_if.clone()))
        .collect();
    let multi = MultiFeatureTuner::new(tuners, what_if);

    let base = engine.current_config();
    // A tight index-memory budget makes the index selection depend on
    // what compression chose first (cheaper, smaller indexes on
    // dictionary segments) — the dependence the ordering LP exploits.
    let constraints = ConstraintSet {
        index_memory_bytes: Some(512 * 1024),
        ..ConstraintSet::default()
    };
    let report = multi
        .analyze(&engine, &forecast, &base, &constraints)
        .expect("analysis succeeds");

    println!("W_empty = {:.1} ms", report.w_empty.ms());
    for (i, f) in report.features.iter().enumerate() {
        println!(
            "  tune {f:>12} alone: W = {:>8.1} ms   impact = {:.2}",
            report.w_single[i].ms(),
            report.impact[i]
        );
    }
    println!(
        "\nd_{{indexing,compression}} = {:.3}   d_{{compression,indexing}} = {:.3}",
        report.dependence[0][1], report.dependence[1][0]
    );

    let lp = multi.lp_order(&report).expect("LP solves");
    let problem = report.ordering_problem().expect("problem builds");
    let brute = brute_force_order(&problem).expect("small enough");
    let name = |order: &[usize]| -> String {
        order
            .iter()
            .map(|&i| report.features[i].label())
            .collect::<Vec<_>>()
            .join(" -> ")
    };
    println!(
        "\nLP-optimized order:  {}  (objective {:.3})",
        name(&lp.order),
        lp.objective
    );
    println!(
        "brute-force order:   {}  (objective {:.3})",
        name(&brute.order),
        brute.objective
    );
    assert!((lp.objective - brute.objective).abs() < 1e-6);

    // Tune recursively in the optimized order and report the outcome.
    let run = multi
        .tune_in_order(&engine, &forecast, &base, &constraints, &lp.order)
        .expect("recursive tuning succeeds");
    let final_cost = multi
        .what_if()
        .workload_cost(
            &engine,
            &forecast.expected().expect("expected exists").workload,
            &run.final_config,
        )
        .expect("costing succeeds");
    println!(
        "\nafter recursive tuning in LP order: {:.1} ms  ({:.2}x better than W_empty)",
        final_cost.ms(),
        report.w_empty.ms() / final_cost.ms().max(1e-9)
    );
}
