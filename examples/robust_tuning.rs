//! Robust vs expected-case tuning under workload uncertainty.
//!
//! The forecast says "probably scan-heavy", but with real probability the
//! workload turns point-heavy. A risk-averse selector gives up a little
//! expected-case performance to avoid being wrong-footed — the paper's
//! robustness argument (Sections II-C, II-D(c)).
//!
//! ```text
//! cargo run --release --example robust_tuning
//! ```

use smdb::core::enumerator::IndexEnumerator;
use smdb::core::selectors::{GreedySelector, RiskCriterion, RobustSelector, Selector};
use smdb::core::{Assessor, Enumerator, SelectionInput, WhatIfAssessor};
use smdb::cost::{CalibratedCostModel, WhatIf};
use smdb::forecast::{ForecastSet, ScenarioKind, WorkloadScenario};
use smdb::prelude::*;
use smdb::query::Workload;
use smdb::storage::StorageEngine;
use smdb::workload::generators::{point_heavy_mix, scan_heavy_mix};
use smdb::workload::tpch::{build_catalog, TpchTemplates, NUM_TEMPLATES};

fn mix_workload(templates: &TpchTemplates, mix: &[f64], total: f64, seed: u64) -> Workload {
    let mut rng = smdb::common::seeded_rng(seed);
    let sum: f64 = mix.iter().sum();
    let mut w = Workload::default();
    for (id, &m) in mix.iter().enumerate().take(NUM_TEMPLATES) {
        w.push(templates.sample(id, &mut rng), m / sum * total);
    }
    w
}

fn main() {
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 20_000, 2_000, 11).expect("catalog builds");
    let templates = TpchTemplates::new(catalog);

    // Train the adaptive cost model on live executions.
    let model = std::sync::Arc::new(CalibratedCostModel::new());
    let config = engine.current_config();
    let mut rng = smdb::common::seeded_rng(3);
    for i in 0..200 {
        let q = templates.sample(i % NUM_TEMPLATES, &mut rng);
        let out = engine
            .scan(q.table(), q.predicates(), q.aggregate())
            .expect("scan runs");
        model
            .observe(&engine, &q, &config, out.sim_cost)
            .expect("observation absorbed");
    }
    model.refit().expect("model fits");
    let what_if = WhatIf::new(model);

    // Two futures: 65 % scan-heavy, 35 % point-heavy.
    let scenarios = ForecastSet {
        scenarios: vec![
            WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "scan-heavy".into(),
                probability: 0.65,
                workload: mix_workload(&templates, &scan_heavy_mix(), 200.0, 21),
            },
            WorkloadScenario {
                kind: ScenarioKind::Sampled,
                name: "point-heavy shift".into(),
                probability: 0.35,
                workload: mix_workload(&templates, &point_heavy_mix(), 200.0, 22),
            },
        ],
    };

    // Enumerate + assess index candidates once; select twice.
    let base = engine.current_config();
    let candidates = IndexEnumerator::default()
        .enumerate(&engine, &base, &scenarios)
        .expect("enumeration succeeds");
    let assessments = WhatIfAssessor::new(what_if, 0.9)
        .assess(&engine, &base, &scenarios, &candidates)
        .expect("assessment succeeds");
    let budget: f64 = assessments.iter().map(|a| a.budget_weight()).sum::<f64>() * 0.15;
    let input = SelectionInput {
        candidates: &candidates,
        assessments: &assessments,
        memory_budget_bytes: Some(budget as i64),
        scenario_base_costs: None,
    };

    println!(
        "{} index candidates, budget {:.1} KiB\n",
        candidates.len(),
        budget / 1024.0
    );
    for (name, selector) in [
        (
            "expected-case greedy",
            Box::new(GreedySelector) as Box<dyn Selector>,
        ),
        (
            "robust worst-case",
            Box::new(RobustSelector::new(RiskCriterion::WorstCase)),
        ),
    ] {
        let chosen = selector.select(&input).expect("selection succeeds");
        // Evaluate the chosen configuration under each scenario for real.
        let mut tuned = engine.clone();
        let mut target = base.clone();
        for &i in &chosen {
            target.apply(&candidates[i].action);
        }
        tuned.apply_all(&base.diff(&target)).expect("actions apply");
        print!("{name:>22}: {} indexes |", chosen.len());
        for s in scenarios.iter() {
            let cost: Cost = s
                .workload
                .queries()
                .iter()
                .map(|wq| {
                    tuned
                        .scan(
                            wq.query.table(),
                            wq.query.predicates(),
                            wq.query.aggregate(),
                        )
                        .expect("scan runs")
                        .sim_cost
                        * wq.weight
                })
                .sum();
            print!("  {} = {:.1} ms", s.name, cost.ms());
        }
        println!();
    }
    println!("\n(The robust selection should lose less when the shift scenario strikes.)");
}
