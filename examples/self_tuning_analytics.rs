//! A self-tuning analytics database under a day/night workload.
//!
//! The workload alternates between a point-lookup-heavy "day" phase and
//! a scan-heavy "night" phase every 8 buckets. The organizer watches
//! forecasts and KPIs, decides *when* to tune, and the feedback loop
//! records whether each past decision actually helped.
//!
//! ```text
//! cargo run --release --example self_tuning_analytics
//! ```

use std::sync::Arc;

use smdb::core::driver::{Driver, OrderingPolicy};
use smdb::core::organizer::OrganizerConfig;
use smdb::core::{ConstraintSet, FeatureKind};
use smdb::cost::CalibratedCostModel;
use smdb::forecast::analyzers::MovingAverage;
use smdb::query::Database;
use smdb::storage::StorageEngine;
use smdb::workload::generators::{point_heavy_mix, scan_heavy_mix};
use smdb::workload::tpch::{build_catalog, TpchTemplates};
use smdb::workload::{MixSchedule, WorkloadGenerator};

fn main() {
    // TPC-H-flavoured catalog.
    let mut engine = StorageEngine::default();
    let catalog = build_catalog(&mut engine, 20_000, 2_000, 7).expect("catalog builds");
    let templates = TpchTemplates::new(catalog);
    let db = Database::new(engine);

    // Driver with a learned cost model, four features, LP ordering, and
    // an organizer that reacts to forecast shifts.
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .analyzer(Box::new(MovingAverage::new(3)))
        .features(vec![
            FeatureKind::Indexing,
            FeatureKind::Compression,
            FeatureKind::Placement,
            FeatureKind::BufferPool,
        ])
        .ordering_policy(OrderingPolicy::LpOptimized)
        .organizer(OrganizerConfig {
            cost_delta_threshold: 0.15,
            min_interval: 3,
            require_low_utilization: false,
        })
        .constraints(ConstraintSet {
            index_memory_bytes: Some(8 * 1024 * 1024),
            ..ConstraintSet::default()
        })
        .build();

    // Day/night workload: 8 point-heavy buckets then 8 scan-heavy ones.
    let generator = WorkloadGenerator::new(
        templates,
        MixSchedule::Seasonal {
            day: point_heavy_mix(),
            night: scan_heavy_mix(),
            period: 16,
        },
        42,
    );

    println!("bucket | cost (ms) | mean resp | tuned?");
    println!("-------+-----------+-----------+---------------------------");
    for bucket in 0..24u64 {
        let queries = generator.bucket_queries(bucket, 150);
        let report = driver.run_bucket(&queries).expect("bucket runs");
        let tuned = driver.maybe_tune().expect("organizer decides");
        println!(
            "{:>6} | {:>9.1} | {:>9.3} | {}",
            bucket,
            report.bucket_cost.ms(),
            driver.kpis().mean_response().ms(),
            match &tuned {
                Some(run) => format!("TUNED ({:?}, {} actions)", run.trigger, run.applied_actions),
                None => "-".to_string(),
            }
        );
    }

    // The feedback loop: how did past decisions work out?
    println!("\nfeedback on applied configuration instances:");
    for fb in driver.config_storage().feedback() {
        println!(
            "  tuning at {}: observed mean-response improvement {:.3} ms",
            fb.applied_at,
            fb.observed_improvement.ms()
        );
    }
    let open = driver.config_storage().len() - driver.config_storage().feedback().len();
    if open > 0 {
        println!("  ({open} instance(s) still awaiting their after-measurement)");
    }
}
