//! Quickstart: build a small database, let the framework observe a
//! workload, tune, and measure the improvement.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use smdb::core::driver::Driver;
use smdb::core::FeatureKind;
use smdb::cost::CalibratedCostModel;
use smdb::prelude::*;
use smdb::query::{Database, Query};
use smdb::storage::value::ColumnValues;
use smdb::storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

fn main() {
    // 1. A table: 100k rows, 10k-row chunks, one low-cardinality key.
    let schema = Schema::new(vec![
        ColumnDef::new("key", DataType::Int),
        ColumnDef::new("value", DataType::Float),
    ])
    .expect("schema is valid");
    let n = 100_000i64;
    let table = Table::from_columns(
        "events",
        schema,
        vec![
            ColumnValues::Int((0..n).map(|i| i % 500).collect()),
            ColumnValues::Float((0..n).map(|i| i as f64).collect()),
        ],
        10_000,
    )
    .expect("table builds");
    let mut engine = StorageEngine::default();
    let table_id = engine.create_table(table).expect("unique name");
    let db = Database::new(engine);

    // 2. The self-management driver: a learned cost model and two
    //    managed features.
    let model = Arc::new(CalibratedCostModel::new());
    let driver = Driver::builder(db.clone())
        .learned_estimator(model)
        .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
        .build();

    // 3. Serve a point-lookup workload for a few buckets; the framework
    //    observes through the plan cache (zero-ish overhead).
    let workload: Vec<Query> = (0..300)
        .map(|i| {
            Query::new(
                table_id,
                "events",
                vec![ScanPredicate::eq(
                    smdb::common::ColumnId(0),
                    (i % 500) as i64,
                )],
                None,
                "point_by_key",
            )
        })
        .collect();
    for bucket in 0..3 {
        let report = driver.run_bucket(&workload).expect("queries run");
        println!(
            "bucket {bucket}: {} queries, {:.1} ms total",
            report.queries_run,
            report.bucket_cost.ms()
        );
    }

    // 4. Tune and compare.
    let before: Cost = workload
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost)
        .sum();
    let tuning = driver.force_tune().expect("tuning succeeds");
    let after: Cost = workload
        .iter()
        .map(|q| db.run_query(q).expect("runs").output.sim_cost)
        .sum();

    println!(
        "\napplied {} configuration actions:",
        tuning.applied_actions
    );
    for proposal in &tuning.proposals {
        println!(
            "  {}: {} candidates -> {} chosen (accepted: {})",
            proposal.feature, proposal.candidates_enumerated, proposal.chosen, proposal.accepted
        );
    }
    println!(
        "\nworkload cost: {:.1} ms -> {:.1} ms ({:.1}x faster)",
        before.ms(),
        after.ms(),
        before.ms() / after.ms().max(1e-9)
    );
    assert!(after < before, "tuning should improve this workload");
}
