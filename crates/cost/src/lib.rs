//! # smdb-cost — cost estimation for self-management decisions
//!
//! "Cost estimation must be involved at every stage of the tuning
//! process" (Section II-A(d)). This crate supplies it:
//!
//! * [`estimator::CostEstimator`] — the estimator interface: the cost of
//!   one query under a *hypothetical* `ConfigInstance` (what-if
//!   optimization in the sense of Chaudhuri & Narasayya), never mutating
//!   the engine,
//! * [`logical::LogicalCostModel`] — a simple analytic model that ignores
//!   encodings, tiers and index kinds; the paper argues such models are
//!   "not capable of representing the interplay of, e.g., data types,
//!   encodings, and coprocessors" — experiment E9 quantifies exactly that,
//! * [`calibrated::CalibratedCostModel`] — the paper's proposed
//!   hardware-dependent model "created adaptively by learning from
//!   observed query execution costs": an online least-squares regression
//!   over execution features,
//! * [`features`] — the feature extraction shared by the calibrated model
//!   and its training pipeline,
//! * [`what_if`] — workload-level what-if costing and reconfiguration
//!   cost estimation,
//! * [`footprint`] / [`cache`] — delta-aware incremental costing: cache
//!   per-query costs keyed by the configuration slice a query actually
//!   reads, so candidate assessment only re-costs intersecting queries,
//! * [`sizes`] — memory-footprint estimation for hypothetical encodings
//!   and indexes (permanent costs of candidates),
//! * [`regression`] — the in-repo ordinary-least-squares solver.

pub mod cache;
pub mod calibrated;
pub mod estimator;
pub mod features;
pub mod footprint;
pub mod logical;
pub mod regression;
pub mod sizes;
pub mod what_if;

pub use cache::{CacheStats, CostCache};
pub use calibrated::CalibratedCostModel;
pub use estimator::CostEstimator;
pub use features::{extract_features, QueryFeatures, NUM_FEATURES};
pub use footprint::{ActionDelta, QueryFootprint};
pub use logical::LogicalCostModel;
pub use what_if::WhatIf;
