//! The shared what-if cost cache.
//!
//! Keys are `(query instance fingerprint, config footprint hash)` — see
//! [`crate::footprint`] — and values are the unweighted per-query cost in
//! milliseconds. Because estimators are pure functions of
//! `(catalog, footprint slice, query)`, concurrent duplicate computes
//! insert bit-identical values, so results are deterministic regardless
//! of thread count or hit/miss interleaving.
//!
//! Invalidation: entries are dropped when the estimator's
//! [`crate::CostEstimator::version`] moves (learned models refit), via
//! [`CostCache::sync_version`]; catalog changes need no flush because the
//! engine's catalog token is mixed into every footprint hash.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

const SHARDS: usize = 16;

/// Hit/miss counters, for experiment reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Counter growth since an earlier reading of the same cache —
    /// attributes hits/misses to one phase (e.g. a single feature's
    /// what-if assessments) when counters only ever accumulate.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A sharded, `Sync` cost cache shared across assessor threads.
pub struct CostCache {
    shards: Vec<RwLock<HashMap<(u64, u64), f64>>>,
    /// `(catalog token, config fingerprint) -> nonhot_bytes`, memoizing
    /// the O(catalog) `ConfigContext` walk per configuration.
    contexts: RwLock<HashMap<(u64, u64), u64>>,
    /// Estimator version the entries were computed under.
    version: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CostCache {
    /// Creates an empty cache.
    pub fn new() -> CostCache {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || RwLock::new(HashMap::new()));
        CostCache {
            shards,
            contexts: RwLock::new(HashMap::new()),
            version: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: (u64, u64)) -> &RwLock<HashMap<(u64, u64), f64>> {
        &self.shards[(key.0 ^ key.1) as usize % SHARDS]
    }

    /// Flushes entries if the estimator's version moved since they were
    /// computed. Callers invoke this before a batch of lookups; learned
    /// models only move versions at refit time, which the tuning loop
    /// never interleaves with assessment fan-out.
    pub fn sync_version(&self, version: u64) {
        let current = self.version.load(Ordering::Acquire);
        if current != version
            && self
                .version
                .compare_exchange(current, version, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            self.clear();
        }
    }

    /// Looks up a per-query cost (ms), counting the hit or miss.
    pub fn lookup(&self, key: (u64, u64)) -> Option<f64> {
        let got = self.shard(key).read().get(&key).copied();
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Inserts a computed per-query cost (ms).
    pub fn insert(&self, key: (u64, u64), value: f64) {
        self.shard(key).write().insert(key, value);
    }

    /// Looks up a memoized `nonhot_bytes` for a configuration.
    pub fn context_lookup(&self, key: (u64, u64)) -> Option<u64> {
        self.contexts.read().get(&key).copied()
    }

    /// Memoizes a configuration's `nonhot_bytes`.
    pub fn context_insert(&self, key: (u64, u64), nonhot_bytes: u64) {
        self.contexts.write().insert(key, nonhot_bytes);
    }

    /// Drops every entry (counters are kept — they describe workload
    /// behaviour, not current occupancy).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.contexts.write().clear();
    }

    /// Number of cached per-query costs.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for CostCache {
    fn default() -> Self {
        CostCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = CostCache::new();
        assert_eq!(cache.lookup((1, 2)), None);
        cache.insert((1, 2), 4.5);
        assert_eq!(cache.lookup((1, 2)), Some(4.5));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn version_change_flushes_entries() {
        let cache = CostCache::new();
        cache.insert((1, 2), 4.5);
        cache.context_insert((9, 9), 100);
        cache.sync_version(0);
        assert_eq!(cache.len(), 1, "same version keeps entries");
        cache.sync_version(1);
        assert!(cache.is_empty());
        assert_eq!(cache.context_lookup((9, 9)), None);
    }

    #[test]
    fn empty_stats_have_zero_hit_rate() {
        assert_eq!(CostCache::new().stats().hit_rate(), 0.0);
    }
}
