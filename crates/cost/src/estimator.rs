//! The cost-estimator interface.

use smdb_common::{Cost, Result};
use smdb_query::{Query, Workload};
use smdb_storage::{ConfigInstance, StorageEngine};

use crate::features::ConfigContext;

/// What-if cost estimation: the cost of queries under *hypothetical*
/// configurations, computed from catalog statistics without executing or
/// mutating anything.
///
/// "The system can contain different assessors that reflect the use of
/// different cost models" (Section II-D(b)) — estimators are exchanged by
/// swapping trait objects.
pub trait CostEstimator: Send + Sync {
    /// Human-readable name, used in experiment tables.
    fn name(&self) -> &str;

    /// Monotonic version of the estimator's learned state. Estimators
    /// with interior mutability (the calibrated model) bump this whenever
    /// their predictions may change; cost caches flush when it moves.
    /// Stateless estimators keep the default.
    fn version(&self) -> u64 {
        0
    }

    /// Estimated cost of one query under `config`.
    fn query_cost(
        &self,
        engine: &StorageEngine,
        ctx: &ConfigContext,
        query: &Query,
        config: &ConfigInstance,
    ) -> Result<Cost>;

    /// Estimated weighted cost of a workload under `config`. The default
    /// builds one [`ConfigContext`]-shared sum over all queries.
    fn workload_cost(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        let ctx = ConfigContext::new(engine, config);
        let mut total = Cost::ZERO;
        for wq in workload.queries() {
            total += self.query_cost(engine, &ctx, &wq.query, config)? * wq.weight;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};

    /// A constant-cost estimator exercising the default workload sum.
    struct Fixed(f64);

    impl CostEstimator for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn query_cost(
            &self,
            _: &StorageEngine,
            _: &ConfigContext,
            _: &Query,
            _: &ConfigInstance,
        ) -> Result<Cost> {
            Ok(Cost(self.0))
        }
    }

    #[test]
    fn default_workload_cost_weights_queries() {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int(vec![1, 2, 3])], 10).unwrap();
        let mut engine = StorageEngine::default();
        let t = engine.create_table(table).unwrap();
        let q = |v: i64| {
            Query::new(
                TableId(t.0),
                "t",
                vec![ScanPredicate::eq(ColumnId(0), v)],
                None,
                "q",
            )
        };
        let mut workload = Workload::default();
        workload.push(q(1), 2.0);
        workload.push(q(2), 3.0);
        let est = Fixed(4.0);
        let total = est
            .workload_cost(&engine, &workload, &ConfigInstance::default())
            .unwrap();
        assert_eq!(total, Cost(20.0));
    }
}
