//! Execution-profile feature extraction.
//!
//! For a `(query, config)` pair the extractor predicts — from statistics
//! only, without executing anything — how much work of each kind the
//! engine would perform: rows scanned per encoding, index probes and
//! matches, refinement and aggregation rows, all weighted by the
//! estimated tier multiplier. The engine's true cost is (close to) linear
//! in these features, so the calibrated regression model can learn the
//! "hardware" coefficients from observations (Section II-A(d)).
//!
//! Morsel-parallel scans need no mirroring here: the engine computes
//! per-chunk partials with the same access-path rules regardless of
//! execution mode, and `sim_cost` is total work summed in chunk-index
//! order — so the quantity this extractor predicts is independent of
//! thread count and morsel size by construction (the estimator cannot
//! drift from the parallel access-path choice the way it could if the
//! parallel path re-decided access paths per morsel).

use smdb_common::{ChunkColumnRef, Result};
use smdb_query::Query;
use smdb_storage::{
    ConfigAction, ConfigInstance, EncodingKind, ScanPredicate, StorageEngine, Tier,
};

/// Number of features (keep in sync with [`extract_features`]).
pub const NUM_FEATURES: usize = 11;

/// Feature indices, for readability.
pub mod fi {
    pub const INTERCEPT: usize = 0;
    pub const CHUNKS_VISITED: usize = 1;
    pub const SCAN_RAW: usize = 2;
    pub const SCAN_DICT: usize = 3;
    pub const SCAN_RLE: usize = 4;
    pub const SCAN_FOR: usize = 5;
    pub const INDEX_PROBES: usize = 6;
    pub const INDEX_MATCHES: usize = 7;
    pub const REFINE_ROWS: usize = 8;
    pub const AGG_ROWS: usize = 9;
    pub const GROUP_ROWS: usize = 10;
}

/// An extracted feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFeatures(pub [f64; NUM_FEATURES]);

impl QueryFeatures {
    /// The raw feature slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

/// Per-configuration context precomputed once and shared across the
/// queries of a workload: the non-hot footprint that determines
/// buffer-pool hit rates under the hypothetical configuration.
#[derive(Debug, Clone)]
pub struct ConfigContext {
    pub nonhot_bytes: u64,
}

impl ConfigContext {
    /// Computes the context by walking the catalog under `config`.
    pub fn new(engine: &StorageEngine, config: &ConfigInstance) -> ConfigContext {
        let mut nonhot = 0u64;
        for (tid, table) in engine.tables() {
            for (cid, chunk) in table.chunks() {
                if config.tier_of(tid, cid) == Tier::Hot {
                    continue;
                }
                for (col, def) in table.schema().iter() {
                    let target = ChunkColumnRef {
                        table: tid,
                        column: col,
                        chunk: cid,
                    };
                    let stats = chunk.stats(col).expect("stats exist for schema column");
                    nonhot += crate::sizes::estimate_segment_bytes(
                        def.data_type,
                        stats.rows,
                        stats.distinct,
                        stats.runs,
                        config.encoding_of(target),
                    );
                }
            }
        }
        ConfigContext {
            nonhot_bytes: nonhot,
        }
    }

    /// Incrementally derives the context of `base` + `action` from this
    /// context (which must describe `base`), replacing the O(catalog)
    /// walk of [`ConfigContext::new`] with an O(1)/O(columns) delta.
    /// Only encoding changes on non-hot chunks and placement moves
    /// across the hot boundary shift `nonhot_bytes`; the adjustments sum
    /// exactly the same `estimate_segment_bytes` terms the full walk
    /// would, so the result is bit-identical to a fresh context.
    pub fn apply_action(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        action: &ConfigAction,
    ) -> Result<ConfigContext> {
        use smdb_storage::ConfigAction as A;
        let mut nonhot = self.nonhot_bytes;
        match action {
            A::CreateIndex { .. } | A::DropIndex { .. } | A::SetKnob { .. } => {}
            A::SetEncoding { target, kind } => {
                if base.tier_of(target.table, target.chunk) != Tier::Hot {
                    let table = engine.table(target.table)?;
                    let def = table.schema().column(target.column)?;
                    let stats = table.chunk(target.chunk)?.stats(target.column)?;
                    let old = crate::sizes::estimate_segment_bytes(
                        def.data_type,
                        stats.rows,
                        stats.distinct,
                        stats.runs,
                        base.encoding_of(*target),
                    );
                    let new = crate::sizes::estimate_segment_bytes(
                        def.data_type,
                        stats.rows,
                        stats.distinct,
                        stats.runs,
                        *kind,
                    );
                    nonhot = nonhot.saturating_sub(old) + new;
                }
            }
            A::SetPlacement { table, chunk, tier } => {
                let was = base.tier_of(*table, *chunk);
                if was != *tier && (was == Tier::Hot || *tier == Tier::Hot) {
                    let t = engine.table(*table)?;
                    let c = t.chunk(*chunk)?;
                    let mut bytes = 0u64;
                    for (col, def) in t.schema().iter() {
                        let stats = c.stats(col)?;
                        bytes += crate::sizes::estimate_segment_bytes(
                            def.data_type,
                            stats.rows,
                            stats.distinct,
                            stats.runs,
                            base.encoding_of(ChunkColumnRef {
                                table: *table,
                                column: col,
                                chunk: *chunk,
                            }),
                        );
                    }
                    if was == Tier::Hot {
                        nonhot += bytes;
                    } else {
                        nonhot = nonhot.saturating_sub(bytes);
                    }
                }
            }
        }
        Ok(ConfigContext {
            nonhot_bytes: nonhot,
        })
    }

    /// Estimated effective tier multiplier under `config` — mirrors the
    /// engine's buffer-pool model structurally (raw tier penalties are
    /// public hardware documentation; what the estimator does *not* know
    /// are the per-operation millisecond coefficients, which the
    /// calibrated model learns).
    pub fn tier_multiplier(&self, tier: Tier, buffer_pool_mb: f64) -> f64 {
        if tier == Tier::Hot || self.nonhot_bytes == 0 {
            return 1.0;
        }
        let raw = tier.latency_multiplier();
        let buffer = buffer_pool_mb.max(0.0) * 1024.0 * 1024.0;
        let hit = (buffer / self.nonhot_bytes as f64).clamp(0.0, 1.0);
        1.0 + (raw - 1.0) * (1.0 - hit)
    }
}

/// Extracts the estimated execution profile of `query` under `config`.
pub fn extract_features(
    engine: &StorageEngine,
    ctx: &ConfigContext,
    query: &Query,
    config: &ConfigInstance,
) -> Result<QueryFeatures> {
    let mut f = [0.0f64; NUM_FEATURES];
    f[fi::INTERCEPT] = 1.0;

    let table = engine.table(query.table())?;
    let preds = query.predicates();

    for (cid, chunk) in table.chunks() {
        // Pruning mirror: skip chunks no predicate can match.
        let mut pruned = false;
        for p in preds {
            if !chunk.stats(p.column)?.can_match(p) {
                pruned = true;
                break;
            }
        }
        if pruned {
            continue;
        }
        f[fi::CHUNKS_VISITED] += 1.0;
        let tier = config.tier_of(query.table(), cid);
        let mult = ctx.tier_multiplier(tier, config.knobs.buffer_pool_mb);
        let rows = chunk.rows() as f64;

        let selectivity = |p: &ScanPredicate| -> Result<f64> {
            Ok(chunk.stats(p.column)?.estimate_selectivity(p))
        };

        // Composite-index fast path mirror: a pair of equality
        // predicates answered by one multi-attribute probe.
        let composite = preds.iter().enumerate().find_map(|(i, p)| {
            if !matches!(p.op, smdb_storage::PredicateOp::Eq) {
                return None;
            }
            let target = ChunkColumnRef {
                table: query.table(),
                column: p.column,
                chunk: cid,
            };
            let Some(smdb_storage::IndexKind::CompositeHash { second }) = config.index_of(target)
            else {
                return None;
            };
            preds
                .iter()
                .enumerate()
                .find(|(j, q)| {
                    *j != i && q.column == second && matches!(q.op, smdb_storage::PredicateOp::Eq)
                })
                .map(|(j, _)| (i, j))
        });
        let composite = match composite {
            Some((i, j)) => {
                // Access-path rule mirror on the combined selectivity.
                let sel = selectivity(&preds[i])? * selectivity(&preds[j])?;
                (sel <= smdb_storage::scan::INDEX_SELECTIVITY_THRESHOLD).then_some((i, j))
            }
            None => None,
        };
        if let Some((i, j)) = composite {
            let sel_i = selectivity(&preds[i])?;
            let sel_j = selectivity(&preds[j])?;
            let mut est_count = rows * sel_i * sel_j;
            f[fi::INDEX_PROBES] += mult;
            f[fi::INDEX_MATCHES] += est_count * mult;
            for (k, p) in preds.iter().enumerate() {
                if k == i || k == j {
                    continue;
                }
                f[fi::REFINE_ROWS] += est_count * mult;
                est_count *= selectivity(p)?;
            }
            if query.aggregate().is_some() {
                f[fi::AGG_ROWS] += est_count;
                if query.group_by().is_some() {
                    f[fi::GROUP_ROWS] += est_count;
                }
            }
            continue;
        }

        let mut est_count: f64;
        // Scan work units mirror the engine: rows for positional
        // encodings, measured runs for RLE.
        let scan_units = |col: smdb_common::ColumnId, enc: EncodingKind| -> Result<f64> {
            Ok(match enc {
                EncodingKind::RunLength => chunk.stats(col)?.runs as f64,
                _ => rows,
            })
        };
        if preds.is_empty() {
            // Full-chunk selection over column 0's encoding.
            let target = ChunkColumnRef {
                table: query.table(),
                column: smdb_common::ColumnId(0),
                chunk: cid,
            };
            let enc = config.encoding_of(target);
            f[scan_slot(enc)] += scan_units(smdb_common::ColumnId(0), enc)? * mult;
            est_count = rows;
        } else {
            // Driving predicate: first with a config-supported index that
            // passes the engine's access-path selectivity rule.
            let drive_pos = preds
                .iter()
                .position(|p| {
                    let target = ChunkColumnRef {
                        table: query.table(),
                        column: p.column,
                        chunk: cid,
                    };
                    config.index_of(target).is_some_and(|kind| {
                        !matches!(kind, smdb_storage::IndexKind::CompositeHash { .. })
                            && kind.supports(p.op)
                            && chunk
                                .stats(p.column)
                                .map(|s| {
                                    s.estimate_selectivity(p)
                                        <= smdb_storage::scan::INDEX_SELECTIVITY_THRESHOLD
                                })
                                .unwrap_or(false)
                    })
                })
                .unwrap_or(0);
            let driving = &preds[drive_pos];
            let target = ChunkColumnRef {
                table: query.table(),
                column: driving.column,
                chunk: cid,
            };
            let drive_sel = selectivity(driving)?;
            let indexed = config.index_of(target).is_some_and(|kind| {
                !matches!(kind, smdb_storage::IndexKind::CompositeHash { .. })
                    && kind.supports(driving.op)
                    && drive_sel <= smdb_storage::scan::INDEX_SELECTIVITY_THRESHOLD
            });
            est_count = rows * drive_sel;
            if indexed {
                f[fi::INDEX_PROBES] += mult;
                f[fi::INDEX_MATCHES] += est_count * mult;
            } else {
                let enc = config.encoding_of(target);
                f[scan_slot(enc)] += scan_units(driving.column, enc)? * mult;
            }
            for (i, p) in preds.iter().enumerate() {
                if i == drive_pos {
                    continue;
                }
                f[fi::REFINE_ROWS] += est_count * mult;
                est_count *= selectivity(p)?;
            }
        }
        if query.aggregate().is_some() {
            f[fi::AGG_ROWS] += est_count;
            if query.group_by().is_some() {
                f[fi::GROUP_ROWS] += est_count;
            }
        }
    }
    Ok(QueryFeatures(f))
}

fn scan_slot(enc: EncodingKind) -> usize {
    match enc {
        EncodingKind::Unencoded => fi::SCAN_RAW,
        EncodingKind::Dictionary => fi::SCAN_DICT,
        EncodingKind::RunLength => fi::SCAN_RLE,
        EncodingKind::FrameOfReference => fi::SCAN_FOR,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{Aggregate, ColumnDef, ConfigAction, DataType, IndexKind, Schema, Table};

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..1000).map(|i| i % 100).collect()),
                ColumnValues::Float((0..1000).map(|i| i as f64).collect()),
            ],
            250,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn point_query(t: TableId) -> Query {
        Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            Some(Aggregate::count()),
            "point",
        )
    }

    #[test]
    fn scan_path_fills_raw_bucket() {
        let (engine, t) = setup();
        let config = ConfigInstance::default();
        let ctx = ConfigContext::new(&engine, &config);
        let f = extract_features(&engine, &ctx, &point_query(t), &config).unwrap();
        assert_eq!(f.0[fi::CHUNKS_VISITED], 4.0);
        assert_eq!(f.0[fi::SCAN_RAW], 1000.0);
        assert_eq!(f.0[fi::INDEX_PROBES], 0.0);
        // 1% selectivity estimate: ~10 matching rows aggregated.
        assert!((f.0[fi::AGG_ROWS] - 10.0).abs() < 1.0);
    }

    #[test]
    fn hypothetical_index_moves_work_to_probe_buckets() {
        let (engine, t) = setup();
        let mut config = ConfigInstance::default();
        for chunk in 0..4 {
            config
                .indexes
                .insert(ChunkColumnRef::new(t.0, 0, chunk), IndexKind::Hash);
        }
        let ctx = ConfigContext::new(&engine, &config);
        let f = extract_features(&engine, &ctx, &point_query(t), &config).unwrap();
        assert_eq!(f.0[fi::SCAN_RAW], 0.0);
        assert_eq!(f.0[fi::INDEX_PROBES], 4.0);
        assert!(f.0[fi::INDEX_MATCHES] > 0.0);
    }

    #[test]
    fn hypothetical_encoding_moves_bucket_without_touching_engine() {
        let (engine, t) = setup();
        let mut config = ConfigInstance::default();
        for chunk in 0..4 {
            config
                .encodings
                .insert(ChunkColumnRef::new(t.0, 0, chunk), EncodingKind::Dictionary);
        }
        let ctx = ConfigContext::new(&engine, &config);
        let f = extract_features(&engine, &ctx, &point_query(t), &config).unwrap();
        assert_eq!(f.0[fi::SCAN_RAW], 0.0);
        assert_eq!(f.0[fi::SCAN_DICT], 1000.0);
        // Engine itself unchanged.
        assert!(engine.current_config().encodings.is_empty());
    }

    #[test]
    fn placement_scales_features_and_buffer_hides_it() {
        let (engine, t) = setup();
        let mut config = ConfigInstance::default();
        for chunk in 0..4 {
            config
                .placements
                .insert((t, smdb_common::ChunkId(chunk)), Tier::Cold);
        }
        config.knobs.buffer_pool_mb = 0.0;
        let ctx = ConfigContext::new(&engine, &config);
        let cold = extract_features(&engine, &ctx, &point_query(t), &config).unwrap();
        assert!(cold.0[fi::SCAN_RAW] > 1000.0 * 20.0);
        config.knobs.buffer_pool_mb = 1024.0;
        let buffered = extract_features(&engine, &ctx, &point_query(t), &config).unwrap();
        assert!((buffered.0[fi::SCAN_RAW] - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pruning_mirrors_engine() {
        // Sorted key column: point predicate prunes 3 of 4 chunks.
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "sorted",
            schema,
            vec![ColumnValues::Int((0..1000).collect())],
            250,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let t = engine.create_table(table).unwrap();
        let q = Query::new(
            t,
            "sorted",
            vec![ScanPredicate::eq(ColumnId(0), 10i64)],
            None,
            "pt",
        );
        let config = ConfigInstance::default();
        let ctx = ConfigContext::new(&engine, &config);
        let f = extract_features(&engine, &ctx, &q, &config).unwrap();
        assert_eq!(f.0[fi::CHUNKS_VISITED], 1.0);
        assert_eq!(f.0[fi::SCAN_RAW], 250.0);
    }

    #[test]
    fn residual_predicates_fill_refine_bucket() {
        let (engine, t) = setup();
        let q = Query::new(
            t,
            "t",
            vec![
                ScanPredicate::eq(ColumnId(0), 7i64),
                ScanPredicate::cmp(ColumnId(1), smdb_storage::PredicateOp::Lt, 500.0),
            ],
            None,
            "two_preds",
        );
        let config = ConfigInstance::default();
        let ctx = ConfigContext::new(&engine, &config);
        let f = extract_features(&engine, &ctx, &q, &config).unwrap();
        assert!(f.0[fi::REFINE_ROWS] > 0.0);
    }

    #[test]
    fn apply_action_matches_full_walk() {
        let (engine, t) = setup();
        let mut base = ConfigInstance::default();
        base.placements
            .insert((t, smdb_common::ChunkId(1)), Tier::Cold);
        base.encodings
            .insert(ChunkColumnRef::new(t.0, 0, 1), EncodingKind::Dictionary);
        let ctx = ConfigContext::new(&engine, &base);
        let actions = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 1, 1),
                kind: EncodingKind::RunLength,
            },
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 1),
                kind: EncodingKind::Unencoded,
            },
            // Hot chunk: encoding change must not move nonhot bytes.
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: EncodingKind::Dictionary,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(0),
                tier: Tier::Warm,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(1),
                tier: Tier::Hot,
            },
            // Cold -> warm stays non-hot: no byte change.
            ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(1),
                tier: Tier::Warm,
            },
            ConfigAction::SetKnob {
                knob: smdb_storage::KnobKind::BufferPoolMb,
                value: 512.0,
            },
        ];
        for a in actions {
            let mut hypo = base.clone();
            hypo.apply(&a);
            let fast = ctx.apply_action(&engine, &base, &a).unwrap();
            let full = ConfigContext::new(&engine, &hypo);
            assert_eq!(fast.nonhot_bytes, full.nonhot_bytes, "action {a}");
        }
    }

    #[test]
    fn context_counts_nonhot_bytes() {
        let (mut engine, t) = setup();
        let config = ConfigInstance::default();
        assert_eq!(ConfigContext::new(&engine, &config).nonhot_bytes, 0);
        let mut cold = ConfigInstance::default();
        cold.placements
            .insert((t, smdb_common::ChunkId(0)), Tier::Cold);
        assert!(ConfigContext::new(&engine, &cold).nonhot_bytes > 0);
        // Actual engine placement does not matter — only the hypothesis.
        engine
            .apply_action(&ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(1),
                tier: Tier::Warm,
            })
            .unwrap();
        assert_eq!(ConfigContext::new(&engine, &config).nonhot_bytes, 0);
    }
}
