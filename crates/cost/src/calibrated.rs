//! The calibrated (learned) cost model.
//!
//! Implements the paper's adaptive cost estimation (Sections II-A(d) and
//! V): "at database system start, a minimal set of queries is run to
//! create training data …; during further database operation more data
//! points are collected, thus enabling more specialized models". Here the
//! model is an online least-squares regression from execution-profile
//! features to observed cost; every query execution can feed the model.

use parking_lot::RwLock;

use smdb_common::float::exactly_zero;
use smdb_common::{Cost, Result};
use smdb_query::Query;
use smdb_storage::{ConfigInstance, StorageEngine};

use crate::estimator::CostEstimator;
use crate::features::{extract_features, ConfigContext, NUM_FEATURES};
use crate::regression::OnlineRegression;

/// A regression-backed cost model that learns from observed executions.
///
/// Interior mutability lets the shared estimator keep learning while the
/// framework holds it behind `Arc<dyn CostEstimator>`.
pub struct CalibratedCostModel {
    inner: RwLock<Inner>,
    /// Fallback per-row cost before the first fit succeeds.
    bootstrap_row_ms: f64,
    /// Bumped whenever a refit changes the weights, so cost caches keyed
    /// on estimator state know to flush (predictions only move at fit
    /// time; raw observations between fits leave them untouched).
    version: std::sync::atomic::AtomicU64,
}

struct Inner {
    regression: OnlineRegression,
    weights: Option<Vec<f64>>,
    /// Per-feature training support (Gram diagonal) at the last fit.
    support: Vec<f64>,
    /// Refit every `refit_every` observations.
    refit_every: usize,
    since_fit: usize,
}

impl CalibratedCostModel {
    /// Creates an untrained model.
    pub fn new() -> Self {
        CalibratedCostModel {
            inner: RwLock::new(Inner {
                regression: OnlineRegression::new(NUM_FEATURES, 1e-6)
                    .expect("NUM_FEATURES > 0, lambda > 0"),
                weights: None,
                support: vec![0.0; NUM_FEATURES],
                refit_every: 16,
                since_fit: 0,
            }),
            bootstrap_row_ms: 1e-4,
            version: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of observations absorbed so far.
    pub fn observations(&self) -> usize {
        self.inner.read().regression.observations()
    }

    /// Records one observed execution: the query, the configuration it
    /// ran under, and the measured cost. Periodically refits.
    pub fn observe(
        &self,
        engine: &StorageEngine,
        query: &Query,
        config: &ConfigInstance,
        observed: Cost,
    ) -> Result<()> {
        let ctx = ConfigContext::new(engine, config);
        self.observe_with_ctx(engine, &ctx, query, config, observed)
    }

    /// Like [`observe`](Self::observe) with a caller-provided context
    /// (cheaper when batching observations under one configuration).
    pub fn observe_with_ctx(
        &self,
        engine: &StorageEngine,
        ctx: &ConfigContext,
        query: &Query,
        config: &ConfigInstance,
        observed: Cost,
    ) -> Result<()> {
        let features = extract_features(engine, ctx, query, config)?;
        let mut inner = self.inner.write();
        inner
            .regression
            .observe(features.as_slice(), observed.ms())?;
        inner.since_fit += 1;
        if inner.weights.is_none() || inner.since_fit >= inner.refit_every {
            if let Ok(w) = inner.regression.fit_nonnegative() {
                inner.weights = Some(w);
                inner.support = inner.regression.support();
                self.version
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            inner.since_fit = 0;
        }
        Ok(())
    }

    /// Forces a refit now (used by experiments that train in bulk).
    pub fn refit(&self) -> Result<()> {
        let mut inner = self.inner.write();
        let w = inner.regression.fit_nonnegative()?;
        inner.weights = Some(w);
        inner.support = inner.regression.support();
        inner.since_fit = 0;
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// The current weight vector, if fitted.
    pub fn weights(&self) -> Option<Vec<f64>> {
        self.inner.read().weights.clone()
    }
}

impl Default for CalibratedCostModel {
    fn default() -> Self {
        CalibratedCostModel::new()
    }
}

impl CostEstimator for CalibratedCostModel {
    fn name(&self) -> &str {
        "calibrated"
    }

    fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn query_cost(
        &self,
        engine: &StorageEngine,
        ctx: &ConfigContext,
        query: &Query,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        let features = extract_features(engine, ctx, query, config)?;
        let inner = self.inner.read();
        match &inner.weights {
            Some(w) => {
                // Fitted weights for supported dimensions; a conservative
                // bootstrap rate for work the model has never observed.
                // Without this, an unobserved regime (e.g. an encoding no
                // query has ever run under) is predicted as free and the
                // tuner chases it — the optimizer's curse of learned
                // models.
                let estimate: f64 = w
                    .iter()
                    .zip(features.as_slice())
                    .zip(&inner.support)
                    .map(|((wi, fi), &sup)| {
                        if sup > 1e-9 || exactly_zero(*fi) {
                            wi * fi
                        } else {
                            self.bootstrap_row_ms * fi
                        }
                    })
                    .sum();
                // Costs are physically non-negative; a young model can
                // extrapolate below zero.
                Ok(Cost(estimate.max(0.0)))
            }
            None => {
                // Untrained bootstrap: crude per-row guess from the raw
                // work features so early tuning has *something*.
                let rough: f64 = features.as_slice()[2..].iter().sum::<f64>();
                Ok(Cost(rough * self.bootstrap_row_ms))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 40).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn q(t: TableId, v: i64) -> Query {
        Query::new(t, "t", vec![ScanPredicate::eq(ColumnId(0), v)], None, "q")
    }

    #[test]
    fn learns_ground_truth_from_observations() {
        let (engine, t) = setup();
        let config = engine.current_config();
        let model = CalibratedCostModel::new();
        // Train on actual executions.
        for v in 0..40 {
            let out = engine.scan(t, q(t, v).predicates(), None).unwrap();
            model
                .observe(&engine, &q(t, v), &config, out.sim_cost)
                .unwrap();
        }
        model.refit().unwrap();
        // Predict an unseen literal of the same template.
        let ctx = ConfigContext::new(&engine, &config);
        let predicted = model.query_cost(&engine, &ctx, &q(t, 17), &config).unwrap();
        let actual = engine
            .scan(t, q(t, 17).predicates(), None)
            .unwrap()
            .sim_cost;
        let rel_err = (predicted.ms() - actual.ms()).abs() / actual.ms();
        assert!(rel_err < 0.05, "rel err {rel_err}: {predicted} vs {actual}");
    }

    #[test]
    fn untrained_model_still_estimates() {
        let (engine, t) = setup();
        let config = engine.current_config();
        let model = CalibratedCostModel::new();
        let ctx = ConfigContext::new(&engine, &config);
        let c = model.query_cost(&engine, &ctx, &q(t, 1), &config).unwrap();
        assert!(c.ms() > 0.0);
        assert_eq!(model.observations(), 0);
        assert!(model.weights().is_none());
    }

    #[test]
    fn estimates_never_negative() {
        let (engine, t) = setup();
        let config = engine.current_config();
        let model = CalibratedCostModel::new();
        // Feed adversarial observations pushing weights negative.
        for v in 0..20 {
            model
                .observe(&engine, &q(t, v), &config, Cost(0.0))
                .unwrap();
        }
        model.refit().unwrap();
        let ctx = ConfigContext::new(&engine, &config);
        let c = model.query_cost(&engine, &ctx, &q(t, 5), &config).unwrap();
        assert!(c.ms() >= 0.0);
    }
}
