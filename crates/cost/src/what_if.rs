//! What-if workload costing and reconfiguration cost estimation.
//!
//! The tuners compare hypothetical configurations by (a) estimated
//! workload cost and (b) estimated *one-time reconfiguration cost*
//! (Section II-D(b): "the sum of all these one-time costs are so-called
//! reconfiguration costs").

use std::sync::Arc;

use smdb_common::{Cost, Result};
use smdb_query::Workload;
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine};

use crate::estimator::CostEstimator;
use crate::sizes;

/// What-if façade bundling an exchangeable cost estimator.
#[derive(Clone)]
pub struct WhatIf {
    estimator: Arc<dyn CostEstimator>,
}

impl WhatIf {
    /// Wraps an estimator.
    pub fn new(estimator: Arc<dyn CostEstimator>) -> Self {
        WhatIf { estimator }
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &Arc<dyn CostEstimator> {
        &self.estimator
    }

    /// Estimated workload cost under `config`.
    pub fn workload_cost(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        self.estimator.workload_cost(engine, workload, config)
    }

    /// Estimated benefit (cost reduction, possibly negative) of moving
    /// from `from` to `to` for `workload`.
    pub fn benefit(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        from: &ConfigInstance,
        to: &ConfigInstance,
    ) -> Result<Cost> {
        Ok(self.workload_cost(engine, workload, from)?
            - self.workload_cost(engine, workload, to)?)
    }
}

/// Estimated one-time cost of one configuration action, from statistics.
///
/// The constants are deliberately coarse — an estimator's guess at
/// reconfiguration effort, not the simulator's exact parameters.
pub fn estimate_action_cost(
    engine: &StorageEngine,
    config: &ConfigInstance,
    action: &ConfigAction,
) -> Result<Cost> {
    const BUILD_MS_PER_ROW: f64 = 8e-4;
    const DICT_BUILD_DISCOUNT: f64 = 0.4;
    const REENCODE_MS_PER_ROW: f64 = 5e-4;
    const MOVE_MS_PER_MB: f64 = 10.0;
    const DROP_MS: f64 = 0.1;
    const KNOB_MS: f64 = 1.0;

    Ok(match action {
        ConfigAction::CreateIndex { target, .. } => {
            let rows = engine.table(target.table)?.chunk(target.chunk)?.rows() as f64;
            let discount = if config.encoding_of(*target) == smdb_storage::EncodingKind::Dictionary
            {
                DICT_BUILD_DISCOUNT
            } else {
                1.0
            };
            Cost(rows * BUILD_MS_PER_ROW * discount)
        }
        ConfigAction::DropIndex { .. } => Cost(DROP_MS),
        ConfigAction::SetEncoding { target, .. } => {
            let rows = engine.table(target.table)?.chunk(target.chunk)?.rows() as f64;
            Cost(rows * REENCODE_MS_PER_ROW)
        }
        ConfigAction::SetPlacement { table, chunk, .. } => {
            let t = engine.table(*table)?;
            let c = t.chunk(*chunk)?;
            // Bytes under the chunk's *configured* encoding.
            let mut bytes = 0u64;
            for (col, def) in t.schema().iter() {
                let stats = c.stats(col)?;
                let target = smdb_common::ChunkColumnRef {
                    table: *table,
                    column: col,
                    chunk: *chunk,
                };
                bytes += sizes::estimate_segment_bytes(
                    def.data_type,
                    stats.rows,
                    stats.distinct,
                    stats.runs,
                    config.encoding_of(target),
                );
            }
            Cost(bytes as f64 / (1024.0 * 1024.0) * MOVE_MS_PER_MB)
        }
        ConfigAction::SetKnob { .. } => Cost(KNOB_MS),
    })
}

/// Estimated total reconfiguration cost of an action list.
pub fn estimate_reconfiguration(
    engine: &StorageEngine,
    config: &ConfigInstance,
    actions: &[ConfigAction],
) -> Result<Cost> {
    let mut total = Cost::ZERO;
    for a in actions {
        total += estimate_action_cost(engine, config, a)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalCostModel;
    use smdb_common::{ChunkColumnRef, ColumnId, TableId};
    use smdb_query::Query;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        ColumnDef, DataType, EncodingKind, IndexKind, ScanPredicate, Schema, Table, Tier,
    };

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..1000).map(|i| i % 25).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    #[test]
    fn benefit_positive_for_useful_index() {
        let (engine, t) = setup();
        let what_if = WhatIf::new(Arc::new(LogicalCostModel::default()));
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 3i64)],
            None,
            "q",
        );
        let workload = Workload::uniform(vec![q]);
        let from = ConfigInstance::default();
        let mut to = from.clone();
        to.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 0), IndexKind::Hash);
        to.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 1), IndexKind::Hash);
        let b = what_if.benefit(&engine, &workload, &from, &to).unwrap();
        assert!(b.ms() > 0.0);
    }

    #[test]
    fn reconfiguration_costs_accumulate() {
        let (engine, t) = setup();
        let config = ConfigInstance::default();
        let actions = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(1),
                tier: Tier::Cold,
            },
        ];
        let total = estimate_reconfiguration(&engine, &config, &actions).unwrap();
        let first = estimate_action_cost(&engine, &config, &actions[0]).unwrap();
        assert!(total > first);
    }

    #[test]
    fn dictionary_discount_applies() {
        let (engine, t) = setup();
        let action = ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
            kind: IndexKind::Hash,
        };
        let plain = ConfigInstance::default();
        let mut dict = plain.clone();
        dict.encodings
            .insert(ChunkColumnRef::new(t.0, 0, 0), EncodingKind::Dictionary);
        let raw_cost = estimate_action_cost(&engine, &plain, &action).unwrap();
        let dict_cost = estimate_action_cost(&engine, &dict, &action).unwrap();
        assert!(dict_cost < raw_cost);
    }
}
