//! What-if workload costing and reconfiguration cost estimation.
//!
//! The tuners compare hypothetical configurations by (a) estimated
//! workload cost and (b) estimated *one-time reconfiguration cost*
//! (Section II-D(b): "the sum of all these one-time costs are so-called
//! reconfiguration costs").

use std::sync::Arc;

use smdb_common::{Cost, Result};
use smdb_query::{Query, Workload};
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine};

use crate::cache::{CacheStats, CostCache};
use crate::estimator::CostEstimator;
use crate::features::ConfigContext;
use crate::footprint::QueryFootprint;
use crate::sizes;

/// What-if façade bundling an exchangeable cost estimator with a shared
/// delta-aware cost cache.
///
/// Clones share the cache, so every assessor/tuner cloned off one
/// `WhatIf` benefits from (and warms) the same entries. The cached and
/// uncached paths are bit-identical: cache keys cover exactly the
/// configuration slice a query's cost can read (see
/// [`crate::footprint`]), estimators are pure, and the workload sum
/// visits queries in the same order either way.
#[derive(Clone)]
pub struct WhatIf {
    estimator: Arc<dyn CostEstimator>,
    cache: Option<Arc<CostCache>>,
}

impl WhatIf {
    /// Wraps an estimator, with caching enabled.
    pub fn new(estimator: Arc<dyn CostEstimator>) -> Self {
        WhatIf {
            estimator,
            cache: Some(Arc::new(CostCache::new())),
        }
    }

    /// Wraps an estimator without a cache (baseline for benches/tests).
    pub fn uncached(estimator: Arc<dyn CostEstimator>) -> Self {
        WhatIf {
            estimator,
            cache: None,
        }
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &Arc<dyn CostEstimator> {
        &self.estimator
    }

    /// The shared cost cache, if caching is enabled.
    pub fn cache(&self) -> Option<&Arc<CostCache>> {
        self.cache.as_ref()
    }

    /// Hit/miss counters of the shared cache, if any.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Drops all cached entries (counters are kept).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// The [`ConfigContext`] for `config`, memoized per configuration
    /// fingerprint when caching is enabled (the fresh walk and the memo
    /// hold the same `nonhot_bytes`, so results never differ).
    pub fn config_context(&self, engine: &StorageEngine, config: &ConfigInstance) -> ConfigContext {
        let Some(cache) = &self.cache else {
            return ConfigContext::new(engine, config);
        };
        let key = (engine.catalog_token(), config.fingerprint());
        if let Some(nonhot_bytes) = cache.context_lookup(key) {
            return ConfigContext { nonhot_bytes };
        }
        let ctx = ConfigContext::new(engine, config);
        cache.context_insert(key, ctx.nonhot_bytes);
        ctx
    }

    /// Estimated cost of one query under `config`, served from the cache
    /// when possible. `ctx` must describe `config`.
    pub fn query_cost(
        &self,
        engine: &StorageEngine,
        ctx: &ConfigContext,
        query: &Query,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        if self.cache.is_none() {
            return self.estimator.query_cost(engine, ctx, query, config);
        }
        let footprint = QueryFootprint::of(query);
        self.query_cost_fp(engine, ctx, &footprint, query, config)
    }

    /// Like [`Self::query_cost`] with a caller-provided footprint
    /// (assessors precompute footprints once per workload).
    pub fn query_cost_fp(
        &self,
        engine: &StorageEngine,
        ctx: &ConfigContext,
        footprint: &QueryFootprint,
        query: &Query,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        let Some(cache) = &self.cache else {
            return self.estimator.query_cost(engine, ctx, query, config);
        };
        cache.sync_version(self.estimator.version());
        let key = (
            query.instance_fingerprint(),
            footprint.config_hash(engine, config, ctx.nonhot_bytes)?,
        );
        if let Some(ms) = cache.lookup(key) {
            return Ok(Cost(ms));
        }
        let cost = self.estimator.query_cost(engine, ctx, query, config)?;
        cache.insert(key, cost.ms());
        Ok(cost)
    }

    /// Estimated workload cost under `config`.
    pub fn workload_cost(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        if self.cache.is_none() {
            return self.estimator.workload_cost(engine, workload, config);
        }
        // Mirrors the estimator's default workload sum (same context,
        // same query order) with per-query cache lookups.
        let ctx = self.config_context(engine, config);
        let mut total = Cost::ZERO;
        for wq in workload.queries() {
            total += self.query_cost(engine, &ctx, &wq.query, config)? * wq.weight;
        }
        Ok(total)
    }

    /// Estimated benefit (cost reduction, possibly negative) of moving
    /// from `from` to `to` for `workload`.
    pub fn benefit(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        from: &ConfigInstance,
        to: &ConfigInstance,
    ) -> Result<Cost> {
        self.benefit_against(
            engine,
            workload,
            self.workload_cost(engine, workload, from)?,
            to,
        )
    }

    /// Benefit against a precomputed base cost — call sites comparing
    /// many candidates to one base configuration cost `from` once and
    /// pass it here instead of re-deriving it per candidate.
    pub fn benefit_against(
        &self,
        engine: &StorageEngine,
        workload: &Workload,
        from_cost: Cost,
        to: &ConfigInstance,
    ) -> Result<Cost> {
        Ok(from_cost - self.workload_cost(engine, workload, to)?)
    }
}

/// Estimated one-time cost of one configuration action, from statistics.
///
/// The constants are deliberately coarse — an estimator's guess at
/// reconfiguration effort, not the simulator's exact parameters.
pub fn estimate_action_cost(
    engine: &StorageEngine,
    config: &ConfigInstance,
    action: &ConfigAction,
) -> Result<Cost> {
    const BUILD_MS_PER_ROW: f64 = 8e-4;
    const DICT_BUILD_DISCOUNT: f64 = 0.4;
    const REENCODE_MS_PER_ROW: f64 = 5e-4;
    const MOVE_MS_PER_MB: f64 = 10.0;
    const DROP_MS: f64 = 0.1;
    const KNOB_MS: f64 = 1.0;

    Ok(match action {
        ConfigAction::CreateIndex { target, .. } => {
            let rows = engine.table(target.table)?.chunk(target.chunk)?.rows() as f64;
            let discount = if config.encoding_of(*target) == smdb_storage::EncodingKind::Dictionary
            {
                DICT_BUILD_DISCOUNT
            } else {
                1.0
            };
            Cost(rows * BUILD_MS_PER_ROW * discount)
        }
        ConfigAction::DropIndex { .. } => Cost(DROP_MS),
        ConfigAction::SetEncoding { target, .. } => {
            let rows = engine.table(target.table)?.chunk(target.chunk)?.rows() as f64;
            Cost(rows * REENCODE_MS_PER_ROW)
        }
        ConfigAction::SetPlacement { table, chunk, .. } => {
            let t = engine.table(*table)?;
            let c = t.chunk(*chunk)?;
            // Bytes under the chunk's *configured* encoding.
            let mut bytes = 0u64;
            for (col, def) in t.schema().iter() {
                let stats = c.stats(col)?;
                let target = smdb_common::ChunkColumnRef {
                    table: *table,
                    column: col,
                    chunk: *chunk,
                };
                bytes += sizes::estimate_segment_bytes(
                    def.data_type,
                    stats.rows,
                    stats.distinct,
                    stats.runs,
                    config.encoding_of(target),
                );
            }
            Cost(bytes as f64 / (1024.0 * 1024.0) * MOVE_MS_PER_MB)
        }
        ConfigAction::SetKnob { .. } => Cost(KNOB_MS),
    })
}

/// Estimated total reconfiguration cost of an action list.
pub fn estimate_reconfiguration(
    engine: &StorageEngine,
    config: &ConfigInstance,
    actions: &[ConfigAction],
) -> Result<Cost> {
    let mut total = Cost::ZERO;
    for a in actions {
        total += estimate_action_cost(engine, config, a)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::LogicalCostModel;
    use smdb_common::{ChunkColumnRef, ColumnId, TableId};
    use smdb_query::Query;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        ColumnDef, DataType, EncodingKind, IndexKind, ScanPredicate, Schema, Table, Tier,
    };

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..1000).map(|i| i % 25).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    #[test]
    fn benefit_positive_for_useful_index() {
        let (engine, t) = setup();
        let what_if = WhatIf::new(Arc::new(LogicalCostModel::default()));
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 3i64)],
            None,
            "q",
        );
        let workload = Workload::uniform(vec![q]);
        let from = ConfigInstance::default();
        let mut to = from.clone();
        to.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 0), IndexKind::Hash);
        to.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 1), IndexKind::Hash);
        let b = what_if.benefit(&engine, &workload, &from, &to).unwrap();
        assert!(b.ms() > 0.0);
    }

    #[test]
    fn cached_and_uncached_costs_bit_identical() {
        let (engine, t) = setup();
        let est: Arc<dyn crate::CostEstimator> = Arc::new(LogicalCostModel::default());
        let cached = WhatIf::new(est.clone());
        let plain = WhatIf::uncached(est);
        let q = |v: i64| Query::new(t, "t", vec![ScanPredicate::eq(ColumnId(0), v)], None, "q");
        let workload = Workload::uniform(vec![q(3), q(7), q(11)]);
        let mut config = ConfigInstance::default();
        for step in 0..3 {
            // Repeat each config so the second pass is served from cache.
            for _ in 0..2 {
                let a = cached.workload_cost(&engine, &workload, &config).unwrap();
                let b = plain.workload_cost(&engine, &workload, &config).unwrap();
                assert_eq!(a, b, "step {step}");
            }
            config.apply(&ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, step),
                kind: IndexKind::Hash,
            });
        }
        let stats = cached.cache_stats().unwrap();
        assert!(stats.hits > 0, "{stats:?}");
        // Clones share one cache.
        assert!(cached.clone().cache_stats().unwrap().hits >= stats.hits);
    }

    #[test]
    fn benefit_against_matches_benefit() {
        let (engine, t) = setup();
        let what_if = WhatIf::new(Arc::new(LogicalCostModel::default()));
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 3i64)],
            None,
            "q",
        );
        let workload = Workload::uniform(vec![q]);
        let from = ConfigInstance::default();
        let mut to = from.clone();
        to.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 0), IndexKind::Hash);
        let base_cost = what_if.workload_cost(&engine, &workload, &from).unwrap();
        let direct = what_if.benefit(&engine, &workload, &from, &to).unwrap();
        let hoisted = what_if
            .benefit_against(&engine, &workload, base_cost, &to)
            .unwrap();
        assert_eq!(direct, hoisted);
    }

    #[test]
    fn reconfiguration_costs_accumulate() {
        let (engine, t) = setup();
        let config = ConfigInstance::default();
        let actions = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            ConfigAction::SetPlacement {
                table: t,
                chunk: smdb_common::ChunkId(1),
                tier: Tier::Cold,
            },
        ];
        let total = estimate_reconfiguration(&engine, &config, &actions).unwrap();
        let first = estimate_action_cost(&engine, &config, &actions[0]).unwrap();
        assert!(total > first);
    }

    #[test]
    fn dictionary_discount_applies() {
        let (engine, t) = setup();
        let action = ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(t.0, 0, 0),
            kind: IndexKind::Hash,
        };
        let plain = ConfigInstance::default();
        let mut dict = plain.clone();
        dict.encodings
            .insert(ChunkColumnRef::new(t.0, 0, 0), EncodingKind::Dictionary);
        let raw_cost = estimate_action_cost(&engine, &plain, &action).unwrap();
        let dict_cost = estimate_action_cost(&engine, &dict, &action).unwrap();
        assert!(dict_cost < raw_cost);
    }
}
