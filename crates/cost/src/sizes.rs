//! Memory-footprint estimation for hypothetical physical designs.
//!
//! Assessors must attach a *permanent cost* (memory) to every candidate
//! (Section II-D(b)) without applying it. These estimators derive
//! footprints from segment statistics only.

use smdb_common::{ChunkColumnRef, Result};
use smdb_storage::{DataType, EncodingKind, IndexKind, StorageEngine};

/// Estimated bytes of a segment of `rows` rows / `distinct` values of
/// type `dt` under `encoding`.
///
/// Heuristics mirror the storage layer's actual layouts: raw = 8 B/row
/// (24 + len for text, approximated at 32 B/row), dictionary = dictionary
/// entries + 4 B codes, RLE = one entry per run (the `runs` statistic is
/// exact, measured at chunk build time), frame-of-reference = 4 B/row.
pub fn estimate_segment_bytes(
    dt: DataType,
    rows: u64,
    distinct: u64,
    runs: u64,
    encoding: EncodingKind,
) -> u64 {
    let value_bytes: u64 = match dt {
        DataType::Int | DataType::Float => 8,
        DataType::Text => 32,
    };
    match encoding {
        EncodingKind::Unencoded => rows * value_bytes,
        EncodingKind::Dictionary => match dt {
            DataType::Float => rows * value_bytes, // falls back to raw
            _ => distinct * value_bytes + rows * 4,
        },
        EncodingKind::RunLength => runs.max(1).min(rows.max(1)) * (value_bytes + 8),
        EncodingKind::FrameOfReference => match dt {
            DataType::Int => 8 + rows * 4,
            _ => rows * value_bytes, // falls back to raw
        },
    }
}

/// Estimated bytes of an index of `kind` over `rows` rows / `distinct`
/// values (for composite indexes `distinct` should be the estimated
/// number of distinct *pairs*).
pub fn estimate_index_bytes(rows: u64, distinct: u64, kind: IndexKind) -> u64 {
    let per_key: u64 = match kind {
        IndexKind::Hash => 48,
        IndexKind::BTree => 64,
        IndexKind::CompositeHash { .. } => 72,
    };
    distinct * per_key + rows * 4
}

/// Estimated bytes of a segment identified by `target` under a
/// hypothetical `encoding`, pulling rows/distinct from live statistics.
pub fn estimate_target_bytes(
    engine: &StorageEngine,
    target: ChunkColumnRef,
    encoding: EncodingKind,
) -> Result<u64> {
    let table = engine.table(target.table)?;
    let chunk = table.chunk(target.chunk)?;
    let stats = chunk.stats(target.column)?;
    let dt = table.schema().column(target.column)?.data_type;
    Ok(estimate_segment_bytes(
        dt,
        stats.rows,
        stats.distinct,
        stats.runs,
        encoding,
    ))
}

/// Estimated bytes resident on the hot tier under a hypothetical
/// configuration: hot-placed data (at its configured encoding) plus all
/// indexes (indexes are always hot). Drives the hot-tier capacity
/// constraint of the placement feature.
pub fn estimate_hot_bytes(
    engine: &StorageEngine,
    config: &smdb_storage::ConfigInstance,
) -> Result<u64> {
    let mut hot = 0u64;
    for (tid, table) in engine.tables() {
        for (cid, chunk) in table.chunks() {
            let on_hot = config.tier_of(tid, cid) == smdb_storage::Tier::Hot;
            for (col, def) in table.schema().iter() {
                let target = ChunkColumnRef {
                    table: tid,
                    column: col,
                    chunk: cid,
                };
                let stats = chunk.stats(col)?;
                if on_hot {
                    hot += estimate_segment_bytes(
                        def.data_type,
                        stats.rows,
                        stats.distinct,
                        stats.runs,
                        config.encoding_of(target),
                    );
                }
                if let Some(kind) = config.index_of(target) {
                    hot += estimate_index_bytes(stats.rows, stats.distinct, kind);
                }
            }
        }
    }
    Ok(hot)
}

/// Estimated data bytes of one chunk (all columns) under a configuration's
/// encodings.
pub fn estimate_chunk_bytes(
    engine: &StorageEngine,
    config: &smdb_storage::ConfigInstance,
    table: smdb_common::TableId,
    chunk: smdb_common::ChunkId,
) -> Result<u64> {
    let t = engine.table(table)?;
    let c = t.chunk(chunk)?;
    let mut bytes = 0u64;
    for (col, def) in t.schema().iter() {
        let stats = c.stats(col)?;
        bytes += estimate_segment_bytes(
            def.data_type,
            stats.rows,
            stats.distinct,
            stats.runs,
            config.encoding_of(ChunkColumnRef {
                table,
                column: col,
                chunk,
            }),
        );
    }
    Ok(bytes)
}

/// Estimated bytes of a hypothetical index on `target`. For composite
/// indexes the distinct-pair count is estimated as
/// `min(rows, d_first · d_second)`.
pub fn estimate_target_index_bytes(
    engine: &StorageEngine,
    target: ChunkColumnRef,
    kind: IndexKind,
) -> Result<u64> {
    let table = engine.table(target.table)?;
    let chunk = table.chunk(target.chunk)?;
    let stats = chunk.stats(target.column)?;
    let distinct = match kind {
        IndexKind::CompositeHash { second } => {
            let second_stats = chunk.stats(second)?;
            stats
                .distinct
                .saturating_mul(second_stats.distinct)
                .min(stats.rows)
        }
        _ => stats.distinct,
    };
    Ok(estimate_index_bytes(stats.rows, distinct, kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_smaller_when_low_cardinality() {
        let raw =
            estimate_segment_bytes(DataType::Int, 10_000, 10, 10_000, EncodingKind::Unencoded);
        let dict =
            estimate_segment_bytes(DataType::Int, 10_000, 10, 10_000, EncodingKind::Dictionary);
        assert!(dict < raw);
    }

    #[test]
    fn dictionary_falls_back_for_floats() {
        let raw = estimate_segment_bytes(DataType::Float, 100, 100, 100, EncodingKind::Unencoded);
        let dict = estimate_segment_bytes(DataType::Float, 100, 100, 100, EncodingKind::Dictionary);
        assert_eq!(raw, dict);
    }

    #[test]
    fn rle_uses_measured_runs() {
        let shuffled =
            estimate_segment_bytes(DataType::Int, 100, 100, 100, EncodingKind::RunLength);
        assert_eq!(shuffled, 100 * 16);
        let clustered = estimate_segment_bytes(DataType::Int, 1000, 2, 2, EncodingKind::RunLength);
        assert_eq!(clustered, 2 * 16);
        // Runs are clamped into [1, rows].
        assert_eq!(
            estimate_segment_bytes(DataType::Int, 10, 5, 99, EncodingKind::RunLength),
            10 * 16
        );
    }

    #[test]
    fn for_is_four_bytes_per_int_row() {
        assert_eq!(
            estimate_segment_bytes(DataType::Int, 100, 100, 100, EncodingKind::FrameOfReference),
            8 + 400
        );
        // Text cannot FOR-encode.
        assert_eq!(
            estimate_segment_bytes(
                DataType::Text,
                100,
                100,
                100,
                EncodingKind::FrameOfReference
            ),
            3200
        );
    }

    #[test]
    fn index_estimates_scale_with_keys() {
        let sparse = estimate_index_bytes(1000, 10, IndexKind::Hash);
        let dense = estimate_index_bytes(1000, 1000, IndexKind::Hash);
        assert!(dense > sparse);
        assert!(estimate_index_bytes(1000, 10, IndexKind::BTree) > sparse);
    }
}
