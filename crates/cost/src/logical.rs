//! The simple logical cost model.
//!
//! A textbook analytic model: per-row scan cost, logarithmic index
//! lookups, per-match costs — but *no* notion of encodings, placement
//! tiers, buffer pools or index kinds. The paper argues such models
//! cannot "represent the interplay of, e.g., data types, encodings, and
//! coprocessors"; experiment E9 measures its bias against the calibrated
//! model.

use smdb_common::{ChunkColumnRef, Cost, Result};
use smdb_query::Query;
use smdb_storage::{ConfigInstance, StorageEngine};

use crate::estimator::CostEstimator;
use crate::features::ConfigContext;

/// Hardware-oblivious analytic cost model.
#[derive(Debug, Clone)]
pub struct LogicalCostModel {
    /// Assumed per-row scan cost, ms.
    pub row_ms: f64,
    /// Assumed per-probe index cost, ms.
    pub probe_ms: f64,
    /// Assumed per-match cost, ms.
    pub match_ms: f64,
}

impl Default for LogicalCostModel {
    fn default() -> Self {
        // Textbook constants: deliberately *not* the simulated hardware's
        // values — a logical model is calibrated once on some reference
        // machine, not on this one.
        LogicalCostModel {
            row_ms: 1e-4,
            probe_ms: 5e-3,
            match_ms: 1e-4,
        }
    }
}

impl CostEstimator for LogicalCostModel {
    fn name(&self) -> &str {
        "logical"
    }

    fn query_cost(
        &self,
        engine: &StorageEngine,
        _ctx: &ConfigContext,
        query: &Query,
        config: &ConfigInstance,
    ) -> Result<Cost> {
        let table = engine.table(query.table())?;
        let preds = query.predicates();
        let mut total = 0.0f64;
        for (cid, chunk) in table.chunks() {
            let mut pruned = false;
            for p in preds {
                if !chunk.stats(p.column)?.can_match(p) {
                    pruned = true;
                    break;
                }
            }
            if pruned {
                continue;
            }
            let rows = chunk.rows() as f64;
            if preds.is_empty() {
                total += rows * self.row_ms;
                continue;
            }
            let driving = &preds[0];
            let target = ChunkColumnRef {
                table: query.table(),
                column: driving.column,
                chunk: cid,
            };
            let sel = chunk.stats(driving.column)?.estimate_selectivity(driving);
            let matches = rows * sel;
            // Any index on the driving column is assumed usable — the
            // logical model does not distinguish hash from B-tree.
            if config.index_of(target).is_some() {
                total += self.probe_ms + matches * self.match_ms;
            } else {
                total += rows * self.row_ms;
            }
            // Residual predicates: per-match work.
            total += matches * self.match_ms * (preds.len() - 1) as f64;
            // Grouped aggregation: one more per-match pass.
            if query.group_by().is_some() {
                total += matches * self.match_ms;
            }
        }
        Ok(Cost(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        ColumnDef, DataType, EncodingKind, IndexKind, ScanPredicate, Schema, Table, Tier,
    };

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..1000).map(|i| i % 50).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn q(t: TableId) -> Query {
        Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            None,
            "q",
        )
    }

    #[test]
    fn index_reduces_estimate() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let ctx = ConfigContext::new(&engine, &base);
        let model = LogicalCostModel::default();
        let without = model.query_cost(&engine, &ctx, &q(t), &base).unwrap();
        let mut with = base.clone();
        with.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 0), IndexKind::Hash);
        with.indexes
            .insert(ChunkColumnRef::new(t.0, 0, 1), IndexKind::Hash);
        let with_cost = model.query_cost(&engine, &ctx, &q(t), &with).unwrap();
        assert!(with_cost < without);
    }

    #[test]
    fn blind_to_encodings_and_tiers() {
        let (engine, t) = setup();
        let model = LogicalCostModel::default();
        let base = ConfigInstance::default();
        let ctx = ConfigContext::new(&engine, &base);
        let plain = model.query_cost(&engine, &ctx, &q(t), &base).unwrap();

        let mut encoded = base.clone();
        encoded
            .encodings
            .insert(ChunkColumnRef::new(t.0, 0, 0), EncodingKind::Dictionary);
        let enc_cost = model.query_cost(&engine, &ctx, &q(t), &encoded).unwrap();
        assert_eq!(plain, enc_cost);

        let mut tiered = base.clone();
        tiered
            .placements
            .insert((t, smdb_common::ChunkId(0)), Tier::Cold);
        let ctx_cold = ConfigContext::new(&engine, &tiered);
        let tier_cost = model
            .query_cost(&engine, &ctx_cold, &q(t), &tiered)
            .unwrap();
        assert_eq!(plain, tier_cost);
    }
}
