//! Config footprints for incremental what-if costing.
//!
//! A query's estimated cost depends only on a small *slice* of a
//! [`ConfigInstance`]: the indexes/encodings of the columns it touches,
//! the tier of its table's chunks, and — only when any of those chunks
//! is non-hot — the global buffer-pool pressure (`nonhot_bytes`,
//! `buffer_pool_mb`). [`QueryFootprint::config_hash`] fingerprints
//! exactly that slice, so two configurations that agree on the slice
//! produce the same key and the cached cost can be reused bit-for-bit.
//! [`ActionDelta`] is the dual: the slice a [`ConfigAction`] can change,
//! with a conservative intersection test against query footprints.

use std::hash::{Hash, Hasher};

use smdb_common::{ChunkColumnRef, ChunkId, ColumnId, Result, TableId};
use smdb_query::Query;
use smdb_storage::{ConfigAction, ConfigInstance, KnobKind, StorageEngine, Tier};

/// Deterministic FNV-1a hasher. Footprint hashes are computed on every
/// cache lookup of the assessment hot path, where SipHash's per-call
/// overhead is measurable; FNV-1a is a fraction of the cost and equally
/// deterministic (keys never leave the process, and the cache tolerates
/// collisions no worse than any 64-bit hash).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The parts of the configuration a query's cost can read: its table and
/// the columns whose index/encoding state feature extraction consults
/// (predicate columns, or column 0 for full scans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryFootprint {
    pub table: TableId,
    pub columns: Vec<ColumnId>,
}

impl QueryFootprint {
    /// Derives the footprint of a query.
    pub fn of(query: &Query) -> QueryFootprint {
        let mut columns: Vec<ColumnId> = query.predicates().iter().map(|p| p.column).collect();
        columns.sort_unstable();
        columns.dedup();
        if columns.is_empty() {
            // Predicate-free scans drive over column 0's encoding.
            columns.push(ColumnId(0));
        }
        QueryFootprint {
            table: query.table(),
            columns,
        }
    }

    /// Hashes the slice of `config` this footprint covers. `nonhot_bytes`
    /// is the precomputed [`crate::features::ConfigContext`] value for
    /// `config`; it (and the buffer-pool knob) enter the hash only when
    /// the query's table has a non-hot chunk, because all-hot tables have
    /// a tier multiplier of exactly 1.0 regardless of buffer pressure.
    ///
    /// Only entries that *deviate from the defaults* (non-hot tiers,
    /// present indexes, non-unencoded encodings) are hashed, as sorted
    /// `(chunk, value)` pairs from BTreeMap range scans. Probing every
    /// `chunk x column` slot instead costs a map lookup per slot, and
    /// this hash runs once per what-if cache lookup — the hottest loop
    /// of the assessment fan-out. Explicitly-stored default values hash
    /// identically to absent entries either way, so two configurations
    /// agreeing on the slice still produce the same key.
    pub fn config_hash(
        &self,
        engine: &StorageEngine,
        config: &ConfigInstance,
        nonhot_bytes: u64,
    ) -> Result<u64> {
        let table = engine.table(self.table)?;
        let chunks = table.chunk_count() as u32;
        let mut h = Fnv::new();
        engine.catalog_token().hash(&mut h);
        self.table.hash(&mut h);
        let mut any_nonhot = false;
        let tier_range = (self.table, ChunkId(0))..=(self.table, ChunkId(chunks.saturating_sub(1)));
        for (&(_, chunk), &tier) in config.placements.range(tier_range) {
            if tier != Tier::Hot {
                any_nonhot = true;
                chunk.hash(&mut h);
                tier.hash(&mut h);
            }
        }
        for &column in &self.columns {
            // Section separator: disambiguates per-column entry lists.
            u64::MAX.hash(&mut h);
            let span = ChunkColumnRef {
                table: self.table,
                column,
                chunk: ChunkId(0),
            }..=ChunkColumnRef {
                table: self.table,
                column,
                chunk: ChunkId(chunks.saturating_sub(1)),
            };
            for (target, &kind) in config.indexes.range(span.clone()) {
                target.chunk.hash(&mut h);
                kind.hash(&mut h);
            }
            u64::MAX.hash(&mut h);
            for (target, &kind) in config.encodings.range(span) {
                if kind != smdb_storage::EncodingKind::Unencoded {
                    target.chunk.hash(&mut h);
                    kind.hash(&mut h);
                }
            }
        }
        if any_nonhot {
            nonhot_bytes.hash(&mut h);
            config.knobs.buffer_pool_mb.to_bits().hash(&mut h);
        }
        Ok(h.finish())
    }
}

/// The slice of configuration state a [`ConfigAction`] can change,
/// relative to the base configuration it would be applied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDelta {
    /// Table the action touches (`None` for knob-only actions).
    table: Option<TableId>,
    /// Column the action touches (`None` means every column of `table`,
    /// as for placement moves).
    column: Option<ColumnId>,
    /// Whether the action can shift global buffer-pool pressure
    /// (non-hot bytes or the buffer-pool knob) and thereby the cost of
    /// any query whose table has non-hot chunks.
    global: bool,
    /// Whether the action provably changes nothing against the base.
    noop: bool,
}

impl ActionDelta {
    /// Computes the delta of applying `action` on top of `base`.
    pub fn of(base: &ConfigInstance, action: &ConfigAction) -> ActionDelta {
        match action {
            ConfigAction::CreateIndex { target, kind } => ActionDelta {
                table: Some(target.table),
                column: Some(target.column),
                global: false,
                noop: base.index_of(*target) == Some(*kind),
            },
            ConfigAction::DropIndex { target } => ActionDelta {
                table: Some(target.table),
                column: Some(target.column),
                global: false,
                noop: base.index_of(*target).is_none(),
            },
            ConfigAction::SetEncoding { target, kind } => ActionDelta {
                table: Some(target.table),
                column: Some(target.column),
                // Re-encoding a non-hot chunk resizes the non-hot pool.
                global: base.tier_of(target.table, target.chunk) != Tier::Hot,
                noop: base.encoding_of(*target) == *kind,
            },
            ConfigAction::SetPlacement { table, chunk, tier } => {
                let was = base.tier_of(*table, *chunk);
                ActionDelta {
                    table: Some(*table),
                    column: None,
                    global: (was == Tier::Hot) != (*tier == Tier::Hot),
                    noop: was == *tier,
                }
            }
            ConfigAction::SetKnob {
                knob: KnobKind::BufferPoolMb,
                value,
            } => ActionDelta {
                table: None,
                column: None,
                global: true,
                noop: value.to_bits() == base.knobs.buffer_pool_mb.to_bits(),
            },
        }
    }

    /// Conservative intersection test: `false` guarantees the action
    /// leaves the query's cost bit-identical; `true` means it *may*
    /// change. `table_has_nonhot` reports whether a table owns at least
    /// one non-hot chunk under the base configuration (the blast radius
    /// of global deltas — all-hot tables are immune to buffer pressure).
    pub fn affects(
        &self,
        footprint: &QueryFootprint,
        table_has_nonhot: impl Fn(TableId) -> bool,
    ) -> bool {
        if self.noop {
            return false;
        }
        if self.global && table_has_nonhot(footprint.table) {
            return true;
        }
        match (self.table, self.column) {
            (Some(t), Some(c)) => t == footprint.table && footprint.columns.contains(&c),
            (Some(t), None) => t == footprint.table,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_storage::{EncodingKind, IndexKind, ScanPredicate};

    fn fp(table: u32, cols: &[u16]) -> QueryFootprint {
        QueryFootprint {
            table: TableId(table),
            columns: cols.iter().map(|&c| ColumnId(c)).collect(),
        }
    }

    #[test]
    fn footprint_of_collects_predicate_columns() {
        let q = Query::new(
            TableId(3),
            "t",
            vec![
                ScanPredicate::eq(ColumnId(2), 1i64),
                ScanPredicate::eq(ColumnId(0), 5i64),
                ScanPredicate::eq(ColumnId(2), 9i64),
            ],
            None,
            "q",
        );
        let f = QueryFootprint::of(&q);
        assert_eq!(f.table, TableId(3));
        assert_eq!(f.columns, vec![ColumnId(0), ColumnId(2)]);
        // Predicate-free scans fall back to column 0.
        let scan = Query::new(TableId(3), "t", vec![], None, "scan");
        assert_eq!(QueryFootprint::of(&scan).columns, vec![ColumnId(0)]);
    }

    #[test]
    fn index_delta_hits_only_matching_column() {
        let base = ConfigInstance::default();
        let d = ActionDelta::of(
            &base,
            &ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(1, 2, 0),
                kind: IndexKind::Hash,
            },
        );
        assert!(d.affects(&fp(1, &[2]), |_| false));
        assert!(!d.affects(&fp(1, &[0]), |_| false));
        assert!(!d.affects(&fp(2, &[2]), |_| false));
    }

    #[test]
    fn noop_actions_affect_nothing() {
        let mut base = ConfigInstance::default();
        base.indexes
            .insert(ChunkColumnRef::new(1, 2, 0), IndexKind::Hash);
        let same = ActionDelta::of(
            &base,
            &ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(1, 2, 0),
                kind: IndexKind::Hash,
            },
        );
        assert!(!same.affects(&fp(1, &[2]), |_| true));
        let drop_missing = ActionDelta::of(
            &base,
            &ConfigAction::DropIndex {
                target: ChunkColumnRef::new(1, 3, 0),
            },
        );
        assert!(!drop_missing.affects(&fp(1, &[3]), |_| true));
    }

    #[test]
    fn knob_delta_spares_all_hot_tables() {
        let base = ConfigInstance::default();
        let d = ActionDelta::of(
            &base,
            &ConfigAction::SetKnob {
                knob: KnobKind::BufferPoolMb,
                value: 256.0,
            },
        );
        assert!(d.affects(&fp(0, &[0]), |t| t == TableId(0)));
        assert!(!d.affects(&fp(0, &[0]), |_| false));
    }

    #[test]
    fn nonhot_encoding_delta_is_global() {
        let mut base = ConfigInstance::default();
        base.placements.insert((TableId(0), ChunkId(1)), Tier::Cold);
        let d = ActionDelta::of(
            &base,
            &ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(0, 0, 1),
                kind: EncodingKind::Dictionary,
            },
        );
        // A different column of a table with non-hot chunks is reached
        // through the global (buffer-pressure) channel.
        assert!(d.affects(&fp(0, &[5]), |t| t == TableId(0)));
        // Hot-chunk encoding changes stay column-local.
        let hot = ActionDelta::of(
            &base,
            &ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(0, 0, 0),
                kind: EncodingKind::Dictionary,
            },
        );
        assert!(!hot.affects(&fp(0, &[5]), |t| t == TableId(0)));
        assert!(hot.affects(&fp(0, &[0]), |_| false));
    }

    #[test]
    fn placement_delta_covers_whole_table() {
        let base = ConfigInstance::default();
        let d = ActionDelta::of(
            &base,
            &ConfigAction::SetPlacement {
                table: TableId(1),
                chunk: ChunkId(0),
                tier: Tier::Cold,
            },
        );
        assert!(d.affects(&fp(1, &[7]), |_| false));
        assert!(!d.affects(&fp(2, &[7]), |_| false));
        // Crossing the hot boundary is global.
        assert!(d.affects(&fp(2, &[7]), |t| t == TableId(2)));
    }
}
