//! Ordinary least squares via incrementally maintained normal equations.
//!
//! The calibrated cost model accumulates `XᵀX` and `Xᵀy` online (O(k²)
//! per observation) and refits by solving `(XᵀX + λI) w = Xᵀy` with
//! Gaussian elimination — the "simple linear regressions" cost-model
//! option the paper cites (Zhu & Larson).

use smdb_common::float::exactly_zero;
use smdb_common::{Error, Result};

/// Incrementally trained least-squares regression.
#[derive(Debug, Clone)]
pub struct OnlineRegression {
    k: usize,
    /// Upper-triangular-complete Gram matrix XᵀX, row-major k×k.
    gram: Vec<f64>,
    /// Xᵀy.
    moment: Vec<f64>,
    /// Ridge term keeping the system well-posed before enough data arrives.
    lambda: f64,
    observations: usize,
}

impl OnlineRegression {
    /// Creates a regression over `k` features with ridge parameter
    /// `lambda` (must be positive to guarantee solvability).
    pub fn new(k: usize, lambda: f64) -> Result<Self> {
        if k == 0 {
            return Err(Error::invalid("at least one feature required"));
        }
        if lambda <= 0.0 {
            return Err(Error::invalid("lambda must be positive"));
        }
        Ok(OnlineRegression {
            k,
            gram: vec![0.0; k * k],
            moment: vec![0.0; k],
            lambda,
            observations: 0,
        })
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.k
    }

    /// Number of observations absorbed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Per-feature training support: the Gram diagonal (`Σ x_i²` over all
    /// observations). A zero entry means the feature has never been
    /// active in training, so its fitted weight (0 via ridge/NNLS)
    /// carries no information.
    pub fn support(&self) -> Vec<f64> {
        (0..self.k).map(|i| self.gram[i * self.k + i]).collect()
    }

    /// Absorbs one observation `(x, y)`.
    pub fn observe(&mut self, x: &[f64], y: f64) -> Result<()> {
        if x.len() != self.k {
            return Err(Error::invalid(format!(
                "expected {} features, got {}",
                self.k,
                x.len()
            )));
        }
        for i in 0..self.k {
            for j in 0..self.k {
                self.gram[i * self.k + j] += x[i] * x[j];
            }
            self.moment[i] += x[i] * y;
        }
        self.observations += 1;
        Ok(())
    }

    /// Solves for the (unconstrained) weight vector.
    pub fn fit(&self) -> Result<Vec<f64>> {
        self.fit_subset(&vec![true; self.k])
    }

    /// Solves for the non-negative least-squares weight vector by the
    /// Lawson-Hanson active-set algorithm over the normal equations.
    ///
    /// Physical cost coefficients (ms per unit of work) are non-negative;
    /// constraining the fit prevents pathological extrapolation on
    /// feature mixes outside the training distribution.
    pub fn fit_nonnegative(&self) -> Result<Vec<f64>> {
        let k = self.k;
        let mut passive = vec![false; k];
        let mut x = vec![0.0f64; k];

        // Gradient of ½‖Ax−y‖² at x: Gram·x − moment (descent = negative).
        let gradient = |x: &[f64]| -> Vec<f64> {
            (0..k)
                .map(|i| {
                    self.moment[i]
                        - (0..k).map(|j| self.gram[i * k + j] * x[j]).sum::<f64>()
                        - self.lambda * x[i]
                })
                .collect()
        };

        for _outer in 0..4 * k + 16 {
            // Most promising restricted variable.
            let w = gradient(&x);
            let enter = (0..k)
                .filter(|&i| !passive[i])
                .max_by(|&a, &b| w[a].total_cmp(&w[b]));
            match enter {
                Some(j) if w[j] > 1e-10 => passive[j] = true,
                _ => return Ok(x), // KKT satisfied
            }

            // Inner loop: solve on the passive set; walk back along the
            // segment to keep feasibility, dropping variables that hit 0.
            loop {
                let z = self.fit_subset(&passive)?;
                let negative: Vec<usize> =
                    (0..k).filter(|&i| passive[i] && z[i] <= 1e-12).collect();
                if negative.is_empty() {
                    x = z;
                    break;
                }
                let mut alpha = f64::INFINITY;
                for &i in &negative {
                    let denom = x[i] - z[i];
                    if denom > 0.0 {
                        alpha = alpha.min(x[i] / denom);
                    }
                }
                if !alpha.is_finite() {
                    alpha = 0.0;
                }
                for i in 0..k {
                    if passive[i] {
                        x[i] += alpha * (z[i] - x[i]);
                        if x[i] <= 1e-12 {
                            x[i] = 0.0;
                            passive[i] = false;
                        }
                    }
                }
                if passive.iter().all(|&p| !p) {
                    break;
                }
            }
        }
        Ok(x)
    }

    /// Solves the normal equations restricted to `active` features;
    /// inactive features get weight zero.
    fn fit_subset(&self, active: &[bool]) -> Result<Vec<f64>> {
        let idx: Vec<usize> = (0..self.k).filter(|&i| active[i]).collect();
        let m = idx.len();
        if m == 0 {
            return Ok(vec![0.0; self.k]);
        }
        // Augmented matrix [Gram + λI | moment] over active features.
        let mut a = vec![0.0f64; m * (m + 1)];
        for (r, &i) in idx.iter().enumerate() {
            for (c, &j) in idx.iter().enumerate() {
                a[r * (m + 1) + c] =
                    self.gram[i * self.k + j] + if i == j { self.lambda } else { 0.0 };
            }
            a[r * (m + 1) + m] = self.moment[i];
        }
        let sub = solve_augmented(&mut a, m)?;
        let mut w = vec![0.0; self.k];
        for (r, &i) in idx.iter().enumerate() {
            w[i] = sub[r];
        }
        Ok(w)
    }
}

/// Gaussian elimination with partial pivoting on an augmented `k×(k+1)`
/// system.
fn solve_augmented(a: &mut [f64], k: usize) -> Result<Vec<f64>> {
    let cols = k + 1;
    for col in 0..k {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * cols + col].abs();
        for row in (col + 1)..k {
            let v = a[row * cols + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-12 {
            return Err(Error::Numeric("singular normal equations".into()));
        }
        if pivot_row != col {
            for j in 0..cols {
                a.swap(col * cols + j, pivot_row * cols + j);
            }
        }
        let pivot = a[col * cols + col];
        for row in (col + 1)..k {
            let factor = a[row * cols + col] / pivot;
            if !exactly_zero(factor) {
                for j in col..cols {
                    a[row * cols + j] -= factor * a[col * cols + j];
                }
            }
        }
    }
    // Back substitution.
    let mut w = vec![0.0f64; k];
    for row in (0..k).rev() {
        let mut acc = a[row * cols + k];
        for j in (row + 1)..k {
            acc -= a[row * cols + j] * w[j];
        }
        w[row] = acc / a[row * cols + row];
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 + 3a - b, with an intercept feature.
        let mut reg = OnlineRegression::new(3, 1e-9).unwrap();
        let data = [
            (1.0, 0.0, 0.0),
            (1.0, 1.0, 0.0),
            (1.0, 0.0, 1.0),
            (1.0, 2.0, 1.0),
            (1.0, 3.0, 5.0),
            (1.0, -1.0, 2.0),
        ];
        for (one, a, b) in data {
            reg.observe(&[one, a, b], 2.0 + 3.0 * a - b).unwrap();
        }
        let w = reg.fit().unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6, "{w:?}");
        assert!((w[1] - 3.0).abs() < 1e-6);
        assert!((w[2] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_keeps_underdetermined_systems_solvable() {
        let mut reg = OnlineRegression::new(3, 1e-3).unwrap();
        reg.observe(&[1.0, 2.0, 4.0], 10.0).unwrap();
        // Only one observation for three features: pure OLS is singular,
        // ridge is not.
        let w = reg.fit().unwrap();
        assert!(w.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn dimension_checks() {
        assert!(OnlineRegression::new(0, 1.0).is_err());
        assert!(OnlineRegression::new(2, 0.0).is_err());
        let mut reg = OnlineRegression::new(2, 1.0).unwrap();
        assert!(reg.observe(&[1.0], 1.0).is_err());
        assert_eq!(reg.observations(), 0);
        reg.observe(&[1.0, 2.0], 1.0).unwrap();
        assert_eq!(reg.observations(), 1);
    }

    #[test]
    fn noisy_fit_approximates() {
        // y = 5x + noise; deterministic pseudo-noise.
        let mut reg = OnlineRegression::new(2, 1e-6).unwrap();
        for i in 0..200 {
            let x = i as f64 / 10.0;
            let noise = (((i * 2654435761u64 as usize) % 100) as f64 - 49.5) / 500.0;
            reg.observe(&[1.0, x], 5.0 * x + noise).unwrap();
        }
        let w = reg.fit().unwrap();
        assert!(w[0].abs() < 0.1, "intercept {w:?}");
        assert!((w[1] - 5.0).abs() < 0.05);
    }
}

#[cfg(test)]
mod nonneg_tests {
    use super::*;

    #[test]
    fn nonnegative_fit_clamps() {
        // True relation has a negative coefficient; the constrained fit
        // must return all-non-negative weights that still explain most of
        // the signal.
        let mut reg = OnlineRegression::new(2, 1e-9).unwrap();
        for i in 0..50 {
            let a = i as f64;
            let b = (i % 7) as f64;
            reg.observe(&[a, b], 3.0 * a - 0.5 * b).unwrap();
        }
        let w = reg.fit_nonnegative().unwrap();
        assert!(w.iter().all(|&x| x >= 0.0), "{w:?}");
        assert!((w[0] - 3.0).abs() < 0.2, "{w:?}");
    }

    #[test]
    fn nonnegative_matches_unconstrained_when_already_feasible() {
        let mut reg = OnlineRegression::new(2, 1e-9).unwrap();
        for i in 0..40 {
            let a = i as f64;
            let b = ((i * 3) % 11) as f64;
            reg.observe(&[a, b], 2.0 * a + 4.0 * b).unwrap();
        }
        let free = reg.fit().unwrap();
        let constrained = reg.fit_nonnegative().unwrap();
        for (x, y) in free.iter().zip(&constrained) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn all_negative_signal_gives_zero_weights() {
        let mut reg = OnlineRegression::new(1, 1e-9).unwrap();
        for i in 1..20 {
            reg.observe(&[i as f64], -(i as f64)).unwrap();
        }
        let w = reg.fit_nonnegative().unwrap();
        assert_eq!(w, vec![0.0]);
    }
}
