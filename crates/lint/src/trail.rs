//! Flight-recorder trail schema validation.
//!
//! `ci.sh quick` dumps the soak's decision trail (`--trail`) and pipes
//! it through [`validate_trail`] so a malformed export fails the same
//! gate as a lint finding. The schema is duplicated here on purpose —
//! the lint crate must not depend on `smdb-obs`, or a recorder bug that
//! also broke the exporter could validate its own output.

use smdb_common::json::Json;

/// Event kinds the recorder may emit, with the fields each requires
/// beyond the common `seq` / `event` / `at`.
const EVENT_KINDS: &[(&str, &[(&str, FieldType)])] = &[
    (
        "bucket_closed",
        &[
            ("queries", FieldType::U64),
            ("busy_ms", FieldType::Num),
            ("utilization", FieldType::Num),
            ("morsels", FieldType::U64),
        ],
    ),
    ("tuning_triggered", &[("trigger", FieldType::Str)]),
    (
        "candidate_assessed",
        &[
            ("feature", FieldType::Str),
            ("candidates", FieldType::U64),
            ("predicted_benefit_ms", FieldType::Num),
            ("accepted", FieldType::Bool),
            ("cache_hits", FieldType::U64),
            ("cache_misses", FieldType::U64),
        ],
    ),
    (
        "ilp_order_chosen",
        &[
            ("order", FieldType::StrArray),
            ("objective", FieldType::Num),
            ("dependence", FieldType::NumMatrix),
        ],
    ),
    ("actions_queued", &[("actions", FieldType::U64)]),
    (
        "actions_applied",
        &[
            ("applied", FieldType::U64),
            ("reconfiguration_cost_ms", FieldType::Num),
        ],
    ),
    (
        "slice_applied",
        &[("applied", FieldType::U64), ("remaining", FieldType::U64)],
    ),
    ("slice_deferred", &[("deferred", FieldType::U64)]),
    (
        "instance_stored",
        &[("instance", FieldType::Str), ("actions", FieldType::U64)],
    ),
    (
        "action_rolled_back",
        &[
            ("restored", FieldType::Str),
            ("undo_actions", FieldType::U64),
            ("abandoned_actions", FieldType::U64),
            ("cause", FieldType::Str),
        ],
    ),
    (
        "budget_rebalanced",
        &[
            ("budget_bytes", FieldType::U64),
            ("used_bytes", FieldType::U64),
            ("shares", FieldType::U64Array),
        ],
    ),
    (
        "snapshot_taken",
        &[
            ("bucket", FieldType::U64),
            ("wal_records", FieldType::U64),
            ("bytes", FieldType::U64),
        ],
    ),
    (
        "recovered",
        &[
            ("bucket", FieldType::U64),
            ("replayed_records", FieldType::U64),
            ("dropped_records", FieldType::U64),
        ],
    ),
];

/// Kinds introduced by smdb-trail/v2.1; older documents must not
/// contain them, so pre-durability consumers never see them unannounced.
const V2_1_KINDS: &[&str] = &["snapshot_taken", "recovered"];

#[derive(Debug, Clone, Copy)]
enum FieldType {
    U64,
    Num,
    Str,
    Bool,
    StrArray,
    U64Array,
    NumMatrix,
}

impl FieldType {
    fn label(self) -> &'static str {
        match self {
            FieldType::U64 => "a non-negative integer",
            FieldType::Num => "a number",
            FieldType::Str => "a string",
            FieldType::Bool => "a boolean",
            FieldType::StrArray => "an array of strings",
            FieldType::U64Array => "an array of non-negative integers",
            FieldType::NumMatrix => "an array of number arrays",
        }
    }

    fn matches(self, value: &Json) -> bool {
        match self {
            FieldType::U64 => value.as_u64().is_some(),
            FieldType::Num => value.as_f64().is_some(),
            FieldType::Str => value.as_str().is_some(),
            FieldType::Bool => matches!(value, Json::Bool(_)),
            FieldType::StrArray => value
                .as_array()
                .is_some_and(|a| a.iter().all(|v| v.as_str().is_some())),
            FieldType::U64Array => value
                .as_array()
                .is_some_and(|a| a.iter().all(|v| v.as_u64().is_some())),
            FieldType::NumMatrix => value.as_array().is_some_and(|rows| {
                rows.iter().all(|row| {
                    row.as_array()
                        .is_some_and(|r| r.iter().all(|v| v.as_f64().is_some()))
                })
            }),
        }
    }
}

/// Validates a trail document produced by the flight recorder's JSON
/// export: top-level `capacity` / `dropped` / `events`, per event a
/// strictly increasing `seq`, a known `event` kind, a numeric `at`, and
/// that kind's required fields with the right types.
///
/// Three schema versions coexist. A document with no top-level `schema`
/// field (or `"smdb-trail/v1"`) is **v1** — the single-engine trail,
/// byte-compatible with every trail committed before sharding.
/// `"smdb-trail/v2"` additionally allows an optional per-event `shard`
/// attribution (shard-stamped and merged multi-recorder trails); the
/// `shard` field in a v1 document is an error, so old consumers never
/// see it unannounced. `"smdb-trail/v2.1"` additionally allows the
/// durability event kinds (`snapshot_taken` / `recovered`); those kinds
/// in a lower-versioned document are an error for the same reason.
pub fn validate_trail(doc: &Json) -> Result<TrailSummary, String> {
    let schema_version = match doc.get("schema") {
        None => 1,
        Some(s) => match s.as_str() {
            Some("smdb-trail/v1") => 1,
            Some("smdb-trail/v2") => 2,
            Some("smdb-trail/v2.1") => 3,
            Some(other) => return Err(format!("trail: unknown schema `{other}`")),
            None => return Err("trail: `schema` must be a string".into()),
        },
    };
    let capacity = doc
        .get("capacity")
        .and_then(Json::as_u64)
        .ok_or("trail: missing or non-integer `capacity`")?;
    if capacity == 0 {
        return Err("trail: `capacity` must be at least 1".into());
    }
    doc.get("dropped")
        .and_then(Json::as_u64)
        .ok_or("trail: missing or non-integer `dropped`")?;
    let events = doc
        .get("events")
        .and_then(Json::as_array)
        .ok_or("trail: missing `events` array")?;
    if events.len() > capacity as usize {
        return Err(format!(
            "trail: {} events exceed the declared capacity {capacity}",
            events.len()
        ));
    }

    let mut last_seq: Option<u64> = None;
    let mut decisions = 0;
    for (i, event) in events.iter().enumerate() {
        let seq = event
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trail: event #{i}: missing or non-integer `seq`"))?;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!(
                    "trail: event #{i}: seq {seq} not strictly after {prev}"
                ));
            }
        }
        last_seq = Some(seq);
        let kind = event
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trail: event #{i} (seq {seq}): missing `event` kind"))?;
        let fields = EVENT_KINDS
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, fields)| *fields)
            .ok_or_else(|| format!("trail: event #{i} (seq {seq}): unknown kind `{kind}`"))?;
        if schema_version < 3 && V2_1_KINDS.contains(&kind) {
            return Err(format!(
                "trail: event #{i} (seq {seq}): `{kind}` requires smdb-trail/v2.1"
            ));
        }
        event
            .get("at")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("trail: event #{i} (seq {seq}): missing or non-integer `at`"))?;
        match event.get("shard") {
            None => {}
            Some(_) if schema_version < 2 => {
                return Err(format!(
                    "trail: event #{i} (seq {seq}): `shard` requires smdb-trail/v2"
                ));
            }
            Some(shard) => {
                if shard.as_u64().is_none() {
                    return Err(format!(
                        "trail: event #{i} (seq {seq}): `shard` must be a non-negative integer"
                    ));
                }
            }
        }
        for (name, ty) in fields {
            let value = event.get(name).ok_or_else(|| {
                format!("trail: event #{i} (seq {seq}, {kind}): missing field `{name}`")
            })?;
            if !ty.matches(value) {
                return Err(format!(
                    "trail: event #{i} (seq {seq}, {kind}): `{name}` must be {}",
                    ty.label()
                ));
            }
        }
        if kind != "bucket_closed" {
            decisions += 1;
        }
    }
    Ok(TrailSummary {
        events: events.len(),
        decisions,
        schema_version,
    })
}

/// What a valid trail contained, for the CLI's one-line report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailSummary {
    /// Total events in the document.
    pub events: usize,
    /// Events other than `bucket_closed` (the tuning decisions).
    pub decisions: usize,
    /// Declared schema version (1 when the `schema` field is absent).
    pub schema_version: u32,
}

impl TrailSummary {
    /// The wire name of the declared schema (the internal version
    /// counter is ordinal — v2.1 is version 3).
    pub fn schema_label(&self) -> &'static str {
        match self.schema_version {
            1 => "smdb-trail/v1",
            2 => "smdb-trail/v2",
            _ => "smdb-trail/v2.1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::json::parse;

    fn valid_doc() -> String {
        r#"{
          "capacity": 8,
          "dropped": 0,
          "events": [
            {"seq": 0, "event": "bucket_closed", "at": 1,
             "queries": 10, "busy_ms": 1.5, "utilization": 0.2, "morsels": 4},
            {"seq": 1, "event": "tuning_triggered", "at": 2, "trigger": "SlaViolation"},
            {"seq": 2, "event": "candidate_assessed", "at": 2, "feature": "indexing",
             "candidates": 3, "predicted_benefit_ms": 0.5, "accepted": true,
             "cache_hits": 1, "cache_misses": 2},
            {"seq": 3, "event": "ilp_order_chosen", "at": 2,
             "order": ["indexing", "compression"], "objective": 1.25,
             "dependence": [[0.0, 0.1], [0.2, 0.0]]},
            {"seq": 4, "event": "actions_queued", "at": 2, "actions": 4},
            {"seq": 5, "event": "slice_applied", "at": 3, "applied": 2, "remaining": 2},
            {"seq": 6, "event": "action_rolled_back", "at": 4, "restored": "baseline",
             "undo_actions": 2, "abandoned_actions": 2, "cause": "injected"}
          ]
        }"#
        .to_owned()
    }

    #[test]
    fn accepts_a_valid_trail() {
        let doc = parse(&valid_doc()).expect("parses");
        let summary = validate_trail(&doc).expect("valid");
        assert_eq!(
            summary,
            TrailSummary {
                events: 7,
                decisions: 6,
                schema_version: 1,
            }
        );
    }

    #[test]
    fn accepts_a_v2_trail_with_shard_attribution() {
        let doc = parse(
            r#"{
              "schema": "smdb-trail/v2",
              "capacity": 8,
              "dropped": 0,
              "events": [
                {"seq": 0, "event": "tuning_triggered", "at": 1,
                 "trigger": "SlaViolation", "shard": 2},
                {"seq": 1, "event": "budget_rebalanced", "at": 2,
                 "budget_bytes": 524288, "used_bytes": 131072,
                 "shares": [262144, 262144]}
              ]
            }"#,
        )
        .expect("parses");
        let summary = validate_trail(&doc).expect("valid v2");
        assert_eq!(
            summary,
            TrailSummary {
                events: 2,
                decisions: 2,
                schema_version: 2,
            }
        );
    }

    #[test]
    fn rejects_shard_attribution_outside_v2() {
        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "actions_queued", "at": 1,
                  "actions": 1, "shard": 0}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("`shard` requires smdb-trail/v2"), "{err}");

        let doc =
            parse(r#"{"schema": "smdb-trail/v3", "capacity": 4, "dropped": 0, "events": []}"#)
                .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn accepts_a_v2_1_trail_with_durability_events() {
        let doc = parse(
            r#"{
              "schema": "smdb-trail/v2.1",
              "capacity": 8,
              "dropped": 0,
              "events": [
                {"seq": 0, "event": "snapshot_taken", "at": 4,
                 "bucket": 4, "wal_records": 9, "bytes": 2048},
                {"seq": 1, "event": "recovered", "at": 7,
                 "bucket": 7, "replayed_records": 3, "dropped_records": 1},
                {"seq": 2, "event": "tuning_triggered", "at": 8,
                 "trigger": "SlaViolation", "shard": 0}
              ]
            }"#,
        )
        .expect("parses");
        let summary = validate_trail(&doc).expect("valid v2.1");
        assert_eq!(
            summary,
            TrailSummary {
                events: 3,
                decisions: 3,
                schema_version: 3,
            }
        );
    }

    #[test]
    fn rejects_durability_kinds_below_v2_1() {
        // v1 (no schema tag) must not smuggle in recovery events …
        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "recovered", "at": 1,
                  "bucket": 1, "replayed_records": 0, "dropped_records": 0}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(
            err.contains("`recovered` requires smdb-trail/v2.1"),
            "{err}"
        );

        // … and neither may an explicit v2 document.
        let doc = parse(
            r#"{"schema": "smdb-trail/v2", "capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "snapshot_taken", "at": 1,
                  "bucket": 1, "wal_records": 2, "bytes": 64}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(
            err.contains("`snapshot_taken` requires smdb-trail/v2.1"),
            "{err}"
        );
    }

    #[test]
    fn committed_v1_soak_trail_still_validates() {
        // Backward compatibility: the baseline trail committed before
        // the sharded engine existed must stay a valid (v1) document.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRAIL_soak.json");
        let raw = std::fs::read_to_string(path).expect("committed TRAIL_soak.json exists");
        let doc = parse(&raw).expect("parses");
        let summary = validate_trail(&doc).expect("committed baseline validates");
        assert_eq!(summary.schema_version, 1, "pre-sharding trail is v1");
        assert!(summary.events > 0);
    }

    #[test]
    fn rejects_unknown_kind_and_missing_fields() {
        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "coffee_break", "at": 1}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("unknown kind `coffee_break`"), "{err}");

        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "tuning_triggered", "at": 1}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("missing field `trigger`"), "{err}");
    }

    #[test]
    fn rejects_wrong_field_types() {
        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "slice_deferred", "at": 1, "deferred": -2}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(
            err.contains("`deferred` must be a non-negative integer"),
            "{err}"
        );

        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 0, "event": "ilp_order_chosen", "at": 1,
                  "order": [1, 2], "objective": 0.0, "dependence": []}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("`order` must be an array of strings"), "{err}");
    }

    #[test]
    fn rejects_non_increasing_seq() {
        let doc = parse(
            r#"{"capacity": 4, "dropped": 0, "events": [
                 {"seq": 3, "event": "actions_queued", "at": 1, "actions": 1},
                 {"seq": 3, "event": "actions_queued", "at": 2, "actions": 1}]}"#,
        )
        .unwrap();
        let err = validate_trail(&doc).unwrap_err();
        assert!(err.contains("seq 3 not strictly after 3"), "{err}");
    }

    #[test]
    fn rejects_structural_problems() {
        let err = validate_trail(&parse(r#"{"dropped": 0, "events": []}"#).unwrap()).unwrap_err();
        assert!(err.contains("capacity"), "{err}");
        let err = validate_trail(&parse(r#"{"capacity": 4, "dropped": 0}"#).unwrap()).unwrap_err();
        assert!(err.contains("events"), "{err}");
        let err = validate_trail(
            &parse(
                r#"{"capacity": 1, "dropped": 0, "events": [
                     {"seq": 0, "event": "actions_queued", "at": 1, "actions": 1},
                     {"seq": 1, "event": "actions_queued", "at": 2, "actions": 1}]}"#,
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("exceed the declared capacity"), "{err}");
    }

    #[test]
    fn every_recorder_kind_is_known() {
        // The list the recorder documents (DESIGN.md §10) — drift in
        // either direction should be a conscious change to both.
        let kinds = [
            "bucket_closed",
            "tuning_triggered",
            "candidate_assessed",
            "ilp_order_chosen",
            "actions_queued",
            "actions_applied",
            "slice_applied",
            "slice_deferred",
            "instance_stored",
            "action_rolled_back",
            "budget_rebalanced",
            "snapshot_taken",
            "recovered",
        ];
        assert_eq!(EVENT_KINDS.len(), kinds.len());
        for k in kinds {
            assert!(EVENT_KINDS.iter().any(|(id, _)| *id == k), "{k}");
        }
    }
}
