//! A spanned Rust token stream — the shared lexical backend of every
//! rule.
//!
//! The scanner used to be a per-line character state machine; rewriting
//! it as a real lexer gives every rule the same ground truth: a vector
//! of [`Token`]s whose byte spans *partition* the file (property-tested
//! in `tests/lint_props.rs`). Strings (plain, byte, raw with any hash
//! depth), nested block comments, char literals vs. lifetimes, numeric
//! literals with exponents/suffixes, and `#[cfg(test)]` regions are each
//! handled exactly once here; the line-oriented sanitized view the
//! legacy rules consume ([`crate::scan`]) and the token-level passes
//! (map-iteration, atomic-ordering, lock-order, crate layering) are all
//! projections of this one stream.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// …` to end of line (doc comments included).
    LineComment,
    /// `/* … */`, nesting handled; may span lines.
    BlockComment,
    /// String literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'\0'`, `'\u{1F600}'`.
    Char,
    /// Lifetime: `'a` (quote plus identifier, no closing quote).
    Lifetime,
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including `1e-6`, `0xFF`, `3.0_f32` suffixes).
    Number,
    /// A single punctuation character (operators are not fused).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the token's first byte.
    pub line: usize,
    /// Whether the token sits inside a `#[cfg(test)]`-gated item body.
    pub in_test: bool,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Whether the token carries code (not trivia).
    pub fn is_code(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// A fully lexed file.
#[derive(Debug, Clone)]
pub struct TokenStream {
    pub tokens: Vec<Token>,
}

impl TokenStream {
    /// Code tokens only (no whitespace/comments), as an iterator.
    pub fn code(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| t.is_code())
    }
}

/// Lexes `source` into a token stream whose spans partition the input.
pub fn lex(source: &str) -> TokenStream {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;

    while pos < bytes.len() {
        let start = pos;
        let start_line = line;
        let kind = lex_one(source, bytes, &mut pos);
        debug_assert!(pos > start, "lexer must always make progress");
        line += bytes[start..pos].iter().filter(|&&b| b == b'\n').count();
        tokens.push(Token {
            kind,
            start,
            end: pos,
            line: start_line,
            in_test: false,
        });
    }

    let mut stream = TokenStream { tokens };
    mark_test_regions(source, &mut stream);
    stream
}

/// Lexes the single token starting at `*pos`, advancing it.
fn lex_one(source: &str, bytes: &[u8], pos: &mut usize) -> TokenKind {
    let b = bytes[*pos];
    match b {
        b' ' | b'\t' | b'\r' | b'\n' => {
            while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
                *pos += 1;
            }
            TokenKind::Whitespace
        }
        b'/' if bytes.get(*pos + 1) == Some(&b'/') => {
            while *pos < bytes.len() && bytes[*pos] != b'\n' {
                *pos += 1;
            }
            TokenKind::LineComment
        }
        b'/' if bytes.get(*pos + 1) == Some(&b'*') => {
            *pos += 2;
            let mut depth = 1u32;
            while *pos < bytes.len() && depth > 0 {
                if bytes[*pos] == b'/' && bytes.get(*pos + 1) == Some(&b'*') {
                    depth += 1;
                    *pos += 2;
                } else if bytes[*pos] == b'*' && bytes.get(*pos + 1) == Some(&b'/') {
                    depth -= 1;
                    *pos += 2;
                } else {
                    *pos += 1;
                }
            }
            TokenKind::BlockComment
        }
        b'"' => {
            lex_plain_string(bytes, pos);
            TokenKind::Str
        }
        b'r' | b'b' if raw_string_hashes(bytes, *pos).is_some() => {
            // `r"…"`, `r#"…"#`, `br##"…"##`, `b"…"` is handled below.
            let hashes = raw_string_hashes(bytes, *pos).unwrap_or(0);
            // Skip prefix up to and including the opening quote.
            while bytes[*pos] != b'"' {
                *pos += 1;
            }
            *pos += 1;
            loop {
                if *pos >= bytes.len() {
                    break;
                }
                if bytes[*pos] == b'"' && closes_raw(bytes, *pos + 1, hashes) {
                    *pos += 1 + hashes as usize;
                    break;
                }
                *pos += 1;
            }
            TokenKind::Str
        }
        b'b' if bytes.get(*pos + 1) == Some(&b'"') => {
            *pos += 1;
            lex_plain_string(bytes, pos);
            TokenKind::Str
        }
        b'b' if bytes.get(*pos + 1) == Some(&b'\'') => {
            *pos += 1;
            lex_char_or_lifetime(bytes, pos)
        }
        b'\'' => lex_char_or_lifetime(bytes, pos),
        _ if b.is_ascii_digit() => {
            lex_number(bytes, pos);
            TokenKind::Number
        }
        _ if is_ident_start(source, *pos) => {
            *pos += utf8_len(b);
            while *pos < bytes.len() && is_ident_continue(source, *pos) {
                *pos += utf8_len(bytes[*pos]);
            }
            TokenKind::Ident
        }
        _ => {
            *pos += utf8_len(b);
            TokenKind::Punct
        }
    }
}

/// Consumes a `"…"` string starting at the opening quote.
fn lex_plain_string(bytes: &[u8], pos: &mut usize) {
    *pos += 1; // opening quote
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'\\' => *pos += 2.min(bytes.len() - *pos),
            b'"' => {
                *pos += 1;
                return;
            }
            _ => *pos += 1,
        }
    }
}

/// Consumes a `'…'` char literal or a `'a` lifetime starting at the quote.
fn lex_char_or_lifetime(bytes: &[u8], pos: &mut usize) -> TokenKind {
    let open = *pos;
    *pos += 1;
    if *pos >= bytes.len() {
        return TokenKind::Char;
    }
    if bytes[*pos] == b'\\' {
        // Escaped char literal: scan to the closing quote after the
        // escaped character (covers `'\''` and `'\u{…}'`).
        *pos += 2.min(bytes.len() - *pos);
        while *pos < bytes.len() && bytes[*pos] != b'\'' && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        if *pos < bytes.len() && bytes[*pos] == b'\'' {
            *pos += 1;
        }
        return TokenKind::Char;
    }
    // `'x'` is a char literal; `'abc` (no closing quote right after one
    // scalar) is a lifetime. Look one scalar ahead.
    let first_len = utf8_len(bytes[*pos]);
    if bytes.get(*pos + first_len) == Some(&b'\'') {
        *pos += first_len + 1;
        return TokenKind::Char;
    }
    // Lifetime: consume identifier characters after the quote.
    let source = unsafe { std::str::from_utf8_unchecked(bytes) };
    while *pos < bytes.len() && is_ident_continue(source, *pos) {
        *pos += utf8_len(bytes[*pos]);
    }
    if *pos == open + 1 {
        // Stray quote with nothing attached: emit as punct-like char.
        return TokenKind::Punct;
    }
    TokenKind::Lifetime
}

/// Consumes a numeric literal starting at a digit.
fn lex_number(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() {
        let b = bytes[*pos];
        if b.is_ascii_alphanumeric() || b == b'_' {
            *pos += 1;
        } else if b == b'.' && bytes.get(*pos + 1).is_some_and(u8::is_ascii_digit) {
            // `1.5` — but not `1.method()` or `1..2`.
            *pos += 1;
        } else if (b == b'+' || b == b'-')
            && *pos > 0
            && matches!(bytes[*pos - 1], b'e' | b'E')
            && bytes.get(*pos + 1).is_some_and(u8::is_ascii_digit)
        {
            // Exponent sign: `1e-6`.
            *pos += 1;
        } else {
            break;
        }
    }
}

/// `r`/`br` raw-string prefix check at `pos`: returns the hash count when
/// a raw string opens here.
fn raw_string_hashes(bytes: &[u8], pos: usize) -> Option<u8> {
    let mut k = pos;
    if bytes.get(k) == Some(&b'b') {
        k += 1;
    }
    if bytes.get(k) != Some(&b'r') {
        return None;
    }
    k += 1;
    let mut hashes = 0u8;
    while bytes.get(k) == Some(&b'#') {
        hashes = hashes.saturating_add(1);
        k += 1;
    }
    if bytes.get(k) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Does a `"` at `after_quote - 1` close a raw string with `hashes` `#`s?
fn closes_raw(bytes: &[u8], after_quote: usize, hashes: u8) -> bool {
    (0..hashes as usize).all(|k| bytes.get(after_quote + k) == Some(&b'#'))
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn is_ident_start(source: &str, pos: usize) -> bool {
    source[pos..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(source: &str, pos: usize) -> bool {
    source[pos..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Tracks one active `#[cfg(test)]` region (brace-delimited item body).
enum TestRegion {
    /// Saw the attribute; waiting for the item's opening `{` (or a `;`
    /// ending a body-less item like `mod external_tests;`).
    Pending { attr_end: usize },
    /// Inside the braces; ends when depth returns to the recorded value.
    Active { close_depth: i64 },
}

/// Marks tokens inside `#[cfg(test)]`-gated item bodies, mirroring the
/// legacy scanner's semantics: the attribute tokens themselves are *not*
/// in-test; everything from the item's opening `{` through its matching
/// `}` (inclusive) is.
fn mark_test_regions(source: &str, stream: &mut TokenStream) {
    let mut depth: i64 = 0;
    let mut region: Option<TestRegion> = None;
    let n = stream.tokens.len();
    for i in 0..n {
        if region.is_none() && starts_cfg_test(source, &stream.tokens, i) {
            region = Some(TestRegion::Pending {
                attr_end: cfg_attr_end(source, &stream.tokens, i),
            });
        }
        let tok = &stream.tokens[i];
        let text = tok.text(source);
        let mut in_test = matches!(region, Some(TestRegion::Active { .. }));
        if tok.kind == TokenKind::Punct {
            match text {
                "{" => {
                    if let Some(TestRegion::Pending { attr_end }) = region {
                        if tok.start >= attr_end {
                            region = Some(TestRegion::Active { close_depth: depth });
                            in_test = true;
                        }
                    }
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if let Some(TestRegion::Active { close_depth }) = region {
                        if depth <= close_depth {
                            region = None;
                            in_test = true; // the closing brace itself
                        }
                    }
                }
                ";" => {
                    if let Some(TestRegion::Pending { attr_end }) = region {
                        if tok.start >= attr_end {
                            region = None; // body-less item
                        }
                    }
                }
                _ => {}
            }
        }
        stream.tokens[i].in_test = in_test;
    }
}

/// Does a `#[cfg(test)]` / `#[cfg(all(test, …))]` / `#[cfg(any(test, …))]`
/// attribute start at token `i`?
fn starts_cfg_test(source: &str, tokens: &[Token], i: usize) -> bool {
    if tokens[i].kind != TokenKind::Punct || tokens[i].text(source) != "#" {
        return false;
    }
    // Expected code-token sequence: `#` `[` `cfg` `(` then either `test`
    // or `all`/`any` `(` `test`.
    let mut it = tokens[i + 1..].iter().filter(|t| t.is_code());
    let mut next = |expect: &str| it.next().is_some_and(|t| t.text(source) == expect);
    if !next("[") || !next("cfg") || !next("(") {
        return false;
    }
    match it.next().map(|t| t.text(source)) {
        Some("test") => true,
        Some("all") | Some("any") => {
            let mut it2 = it;
            it2.next().is_some_and(|t| t.text(source) == "(")
                && it2.next().is_some_and(|t| t.text(source) == "test")
        }
        _ => false,
    }
}

/// Byte offset one past the `]` closing the attribute starting at token
/// `i` (which holds `#`). Falls back to the attribute's own end when the
/// attribute is unterminated.
fn cfg_attr_end(source: &str, tokens: &[Token], i: usize) -> usize {
    let mut bracket = 0i32;
    for t in &tokens[i..] {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text(source) {
            "[" => bracket += 1,
            "]" => {
                bracket -= 1;
                if bracket == 0 {
                    return t.end;
                }
            }
            _ => {}
        }
    }
    tokens[i].end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn spans_partition_the_file() {
        let src = "fn main() { let s = r#\"x\"#; /* c */ 'a: loop {} }\n";
        let stream = lex(src);
        let mut pos = 0;
        for t in &stream.tokens {
            assert_eq!(t.start, pos, "gap or overlap at byte {pos}");
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn distinguishes_char_from_lifetime() {
        let src = "let c = 'x'; fn f<'a>(v: &'a str) {} let e = '\\n';";
        let toks = kinds(src);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, s)| s)
            .collect();
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(chars, ["'x'", "'\\n'"]);
        assert_eq!(lifetimes, ["'a", "'a"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"a " inside"#; let t = r"plain";"###;
        let strs: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(strs, [r###"r#"a " inside"#"###, r#"r"plain""#]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* x /* y */ z */ b";
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert_eq!(toks[2].1, "/* x /* y */ z */");
    }

    #[test]
    fn numbers_with_exponents_and_suffixes() {
        let src = "let a = 1e-6; let b = 3.0_f32; let c = 0xFF; let d = 1..2;";
        let nums: Vec<String> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(nums, ["1e-6", "3.0_f32", "0xFF", "1", "2"]);
    }

    #[test]
    fn cfg_test_region_marks_body_only() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let stream = lex(src);
        for t in stream.code() {
            let text = t.text(src);
            let in_test = t.in_test;
            match text {
                "lib" | "after" | "cfg" | "test" | "mod" | "tests" => {
                    assert!(!in_test, "{text} wrongly in_test")
                }
                "t" | "x" => assert!(in_test, "{text} should be in_test"),
                _ => {}
            }
        }
    }

    #[test]
    fn cfg_test_mod_semicolon_has_no_region() {
        let src = "#[cfg(test)]\nmod external;\nfn lib() { x(); }\n";
        let stream = lex(src);
        assert!(stream.code().all(|t| !t.in_test));
    }

    #[test]
    fn lexer_is_total_on_tricky_bytes() {
        for src in [
            "'",
            "r#",
            "\"unterminated",
            "/* open",
            "b'",
            "let s = \"esc \\\" done\";",
            "é_ident + 1",
        ] {
            let stream = lex(src);
            let covered: usize = stream.tokens.iter().map(|t| t.end - t.start).sum();
            assert_eq!(covered, src.len(), "src: {src:?}");
        }
    }
}
