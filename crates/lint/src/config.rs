//! `lint.toml` — scan exclusions and the allowlist ratchet.
//!
//! The config is a deliberately small TOML subset (parsed here with no
//! dependencies, since the registry is offline): `[section]` headers,
//! `key = value` pairs with bare or quoted keys, and values that are
//! strings, integers, or arrays of strings. Example:
//!
//! ```toml
//! [lint]
//! exclude = ["vendor/", "target/"]
//!
//! [allow.no-panic]
//! "crates/core/src/assessor.rs" = 4   # ratchet: may only decrease
//! ```
//!
//! An `[allow.<rule>]` entry grants a file a *budget* of findings for
//! that rule. Files over budget fail the run; files under budget produce
//! a tightening hint so the budget ratchets downward over time.

use std::collections::BTreeMap;

/// Parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Path prefixes (repo-relative, `/`-separated) never scanned.
    pub exclude: Vec<String>,
    /// `rule id → (path → budget)`.
    pub allow: BTreeMap<String, BTreeMap<String, usize>>,
}

impl LintConfig {
    /// The budget for `rule` findings in `path` (0 when unlisted).
    pub fn budget(&self, rule: &str, path: &str) -> usize {
        self.allow
            .get(rule)
            .and_then(|files| files.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Whether `path` is excluded from scanning entirely.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Parses `lint.toml` text.
pub fn parse(text: &str) -> Result<LintConfig, String> {
    let mut config = LintConfig::default();
    let mut section: Vec<String> = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let line = strip_comment(raw_line).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| format!("lint.toml:{lineno}: unclosed section header"))?;
            section = header.split('.').map(|s| s.trim().to_owned()).collect();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lint.toml:{lineno}: expected `key = value`"))?;
        let key = unquote(key.trim());
        let value = value.trim();

        match section.first().map(String::as_str) {
            Some("lint") if key == "exclude" => {
                config.exclude = parse_string_array(value).ok_or_else(|| {
                    format!("lint.toml:{lineno}: exclude must be an array of strings")
                })?;
            }
            Some("lint") => {
                return Err(format!("lint.toml:{lineno}: unknown [lint] key `{key}`"));
            }
            Some("allow") => {
                let rule = section
                    .get(1)
                    .ok_or_else(|| format!("lint.toml:{lineno}: use [allow.<rule-id>] sections"))?;
                let budget: usize = value
                    .parse()
                    .map_err(|_| format!("lint.toml:{lineno}: budget must be an integer"))?;
                config
                    .allow
                    .entry(rule.clone())
                    .or_default()
                    .insert(key, budget);
            }
            _ => {
                return Err(format!(
                    "lint.toml:{lineno}: unknown section `{}`",
                    section.join(".")
                ));
            }
        }
    }
    Ok(config)
}

/// Removes a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_owned()
}

fn parse_string_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let unquoted = item.strip_prefix('"')?.strip_suffix('"')?;
        out.push(unquoted.to_owned());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r##"
# smdb-lint configuration
[lint]
exclude = ["vendor/", "target/"]  # never scanned

[allow.no-panic]
"crates/core/src/assessor.rs" = 4
"crates/lp/src/model.rs" = 2

[allow.no-float-eq]
"crates/cost/src/logical.rs" = 1
"##;
        let c = parse(text).expect("parses");
        assert_eq!(c.exclude, vec!["vendor/", "target/"]);
        assert_eq!(c.budget("no-panic", "crates/core/src/assessor.rs"), 4);
        assert_eq!(c.budget("no-panic", "crates/core/src/driver.rs"), 0);
        assert_eq!(c.budget("no-float-eq", "crates/cost/src/logical.rs"), 1);
        assert!(c.is_excluded("vendor/rand/src/lib.rs"));
        assert!(!c.is_excluded("crates/lp/src/model.rs"));
    }

    #[test]
    fn empty_config_is_valid() {
        let c = parse("").expect("parses");
        assert!(c.exclude.is_empty());
        assert_eq!(c.budget("no-panic", "x"), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("[lint\nexclude = []").is_err());
        assert!(parse("[lint]\nexclude = \"not-an-array\"").is_err());
        assert!(parse("[lint]\nbogus = 3").is_err());
        assert!(parse("[allow]\n\"x.rs\" = 1").is_err());
        assert!(parse("[allow.no-panic]\n\"x.rs\" = \"three\"").is_err());
        assert!(parse("[wat]\nk = 1").is_err());
        assert!(parse("just words").is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let c = parse("[lint]\nexclude = [\"a#b/\"] # trailing\n").expect("parses");
        assert_eq!(c.exclude, vec!["a#b/"]);
    }
}
