//! L9 `lock-order`: static lock-acquisition-order analysis.
//!
//! A deadlock needs two functions that take the same pair of locks in
//! opposite orders. This pass reconstructs, per function, the sequence
//! of `Mutex`/`RwLock` guard acquisitions with a small liveness model
//! (let-bound guards live to the end of their block, temporaries to the
//! end of the statement — or the end of the following block for
//! `for … in x.lock()…` style headers, and an explicit `drop(guard)`
//! releases early). Every "lock B acquired while lock A is held" becomes
//! an edge `A → B` in a global lock graph; acquisitions are also
//! propagated one level through the call graph (a call made while
//! holding A contributes edges from A to everything the callee takes
//! directly). A cycle in the global graph is a finding — and, like
//! layering violations, it can never be budgeted away in `lint.toml`.
//!
//! Heuristics and their bias: lock *names* are `<file stem>.<binding>`,
//! so two same-named fields in different files stay distinct (misses
//! shared locks used from several files rather than inventing false
//! cycles); `.read()`/`.write()`/`.lock()` only count when the receiver's
//! last path segment is a binding declared with a `Mutex`/`RwLock` type
//! somewhere in the workspace; call propagation only follows callees that
//! are unambiguous (defined in the same file, or with a workspace-unique
//! name).

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::find_cycles;
use crate::parse::{Token, TokenKind};
use crate::rules::{Finding, Severity};
use crate::scan::ScannedFile;

/// One observed hold-while-acquiring edge.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Held lock (`<file stem>.<binding>`).
    pub from: String,
    /// Lock acquired while holding `from`.
    pub to: String,
    /// Example acquisition site.
    pub path: String,
    pub line: usize,
    /// Whether the edge came from one-level call propagation rather
    /// than a direct acquisition in the same function body.
    pub via_call: bool,
}

/// The global lock-order analysis result.
#[derive(Debug, Clone, Default)]
pub struct LockAnalysis {
    /// All lock nodes seen, sorted.
    pub nodes: Vec<String>,
    /// Deduplicated edges in deterministic order.
    pub edges: Vec<LockEdge>,
    /// Cycles in the global lock graph (closed walks).
    pub cycles: Vec<Vec<String>>,
}

impl LockAnalysis {
    pub fn acyclic(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// A guard currently held while walking a function body.
struct Guard {
    lock: String,
    /// Variable bound to the guard, for `drop(var)` release (let-bound
    /// guards only).
    var: Option<String>,
    /// Block depth the guard dies at (`None` = temporary, dies at `;`).
    bound_depth: Option<i64>,
}

/// One function's extracted facts.
#[derive(Default)]
struct FnFacts {
    /// Locks acquired directly anywhere in the body.
    acquires: BTreeSet<String>,
    /// Direct hold-while-acquiring pairs with an example site.
    edges: Vec<(String, String, usize)>,
    /// `(callee simple name, held locks, line)` for propagation.
    calls: Vec<(String, Vec<String>, usize)>,
}

/// Collects every binding declared with a `Mutex<`/`RwLock<` type or
/// initialised via `Mutex::new`/`RwLock::new`, workspace-wide.
fn declared_locks(files: &[ScannedFile]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for file in files {
        let toks: Vec<&Token> = file.code_tokens().collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text(t);
            if text != "Mutex" && text != "RwLock" {
                continue;
            }
            let mut j = i;
            while j > 0 {
                let prev = toks[j - 1];
                let pt = file.text(prev);
                if pt == "&" || pt == "mut" || prev.kind == TokenKind::Lifetime {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j < 2 {
                continue;
            }
            if !matches!(file.text(toks[j - 1]), ":" | "=") {
                continue;
            }
            let name = toks[j - 2];
            if name.kind == TokenKind::Ident {
                out.insert(file.text(name).to_owned());
            }
        }
    }
    out
}

/// `crates/runtime/src/runtime.rs` → `runtime`.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

/// Extracts per-function facts for one file. Keys are simple function
/// names; a file defining the same name twice merges the facts (an
/// over-approximation that only ever adds edges).
fn file_facts(file: &ScannedFile, locks: &BTreeSet<String>) -> BTreeMap<String, FnFacts> {
    let stem = file_stem(&file.path);
    let toks: Vec<&Token> = file.code_tokens().collect();
    let mut out: BTreeMap<String, FnFacts> = BTreeMap::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Ident && file.text(t) == "fn" && !t.in_test {
            if let Some((name, body_start, body_end)) = fn_body(file, &toks, i) {
                let facts = out.entry(name).or_default();
                walk_body(file, &toks[body_start..body_end], stem, locks, facts);
                // Continue after the signature so nested `fn`s are seen
                // (their tokens are deliberately also part of this body:
                // acquisitions in a nested item over-approximate the
                // outer function's behaviour instead of vanishing).
                i = body_start;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// For a `fn` keyword at `toks[i]`, returns `(name, body start, body
/// end)` as indices into `toks` — or `None` for body-less declarations.
fn fn_body(file: &ScannedFile, toks: &[&Token], i: usize) -> Option<(String, usize, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = file.text(name_tok).to_owned();
    // Scan to the body's `{`; a `;` first means a trait/extern decl.
    let mut j = i + 2;
    while j < toks.len() {
        match file.text(toks[j]) {
            "{" => break,
            ";" => return None,
            _ => j += 1,
        }
    }
    let body_start = j;
    let mut depth = 0i64;
    while j < toks.len() {
        match file.text(toks[j]) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((name, body_start + 1, j));
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some((name, body_start + 1, toks.len()))
}

/// Is `toks[i]` an acquisition method call on a declared lock? Returns
/// the receiver binding name.
fn acquisition<'f>(
    file: &'f ScannedFile,
    toks: &[&Token],
    i: usize,
    locks: &BTreeSet<String>,
) -> Option<&'f str> {
    let t = toks[i];
    if t.kind != TokenKind::Ident || !matches!(file.text(t), "lock" | "read" | "write") {
        return None;
    }
    // `recv . lock ( )`
    if i < 2 || file.text(toks[i - 1]) != "." || toks.get(i + 1).map(|n| file.text(n)) != Some("(")
    {
        return None;
    }
    let recv = toks[i - 2];
    if recv.kind != TokenKind::Ident {
        return None;
    }
    let name = file.text(recv);
    locks.contains(name).then_some(name)
}

/// Walks one function body, tracking guard liveness and emitting direct
/// edges, the acquisition set, and call sites into `facts`.
fn walk_body(
    file: &ScannedFile,
    body: &[&Token],
    stem: &str,
    locks: &BTreeSet<String>,
    facts: &mut FnFacts,
) {
    let mut depth: i64 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    // Was the current statement opened by `let` (then the guard is
    // let-bound, living to the end of the block)?
    let mut stmt_let_var: Option<String> = None;
    let mut stmt_start = true;

    for (i, t) in body.iter().enumerate() {
        let text = file.text(t);
        if stmt_start && t.kind == TokenKind::Ident && text == "let" {
            // `let [mut] name = …`
            let mut j = i + 1;
            if body.get(j).is_some_and(|n| file.text(n) == "mut") {
                j += 1;
            }
            stmt_let_var = body
                .get(j)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| file.text(n).to_owned());
        }
        stmt_start = false;

        match text {
            "{" => {
                depth += 1;
                // Temporaries live through an attached block (loop/if
                // headers like `for x in m.lock().iter() {`): bind them
                // to the block just opened so they die at its `}`.
                for g in guards.iter_mut().filter(|g| g.bound_depth.is_none()) {
                    g.bound_depth = Some(depth);
                }
                stmt_start = true;
                stmt_let_var = None;
            }
            "}" => {
                depth -= 1;
                // A guard bound at depth d dies when its block closes
                // (depth drops below d); a still-unbound temporary dies
                // with the block's final expression.
                guards.retain(|g| g.bound_depth.is_some_and(|d| d <= depth));
                stmt_start = true;
                stmt_let_var = None;
            }
            ";" => {
                guards.retain(|g| g.bound_depth.is_some());
                stmt_start = true;
                stmt_let_var = None;
            }
            _ => {}
        }

        if let Some(binding) = acquisition(file, body, i, locks) {
            let lock = format!("{stem}.{binding}");
            for held in &guards {
                if held.lock != lock {
                    facts.edges.push((held.lock.clone(), lock.clone(), t.line));
                }
            }
            facts.acquires.insert(lock.clone());
            guards.push(Guard {
                lock,
                var: stmt_let_var.clone(),
                bound_depth: stmt_let_var.as_ref().map(|_| depth),
            });
            continue;
        }

        // `drop(var)` releases a let-bound guard early.
        if t.kind == TokenKind::Ident
            && text == "drop"
            && body.get(i + 1).is_some_and(|n| file.text(n) == "(")
        {
            if let Some(var) = body.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                let var = file.text(var);
                guards.retain(|g| g.var.as_deref() != Some(var));
            }
            continue;
        }

        // A call made while holding locks: `name(` or `.name(`, where
        // `name` is neither an acquisition nor a declared lock.
        if t.kind == TokenKind::Ident
            && !guards.is_empty()
            && body.get(i + 1).is_some_and(|n| file.text(n) == "(")
            && !matches!(text, "lock" | "read" | "write" | "drop")
            && !KEYWORDS.contains(&text)
        {
            facts.calls.push((
                text.to_owned(),
                guards.iter().map(|g| g.lock.clone()).collect(),
                t.line,
            ));
        }
    }
}

/// Idents that look like calls but never are.
const KEYWORDS: &[&str] = &[
    "if",
    "while",
    "for",
    "match",
    "return",
    "loop",
    "in",
    "let",
    "fn",
    "move",
    "Some",
    "Ok",
    "Err",
    "None",
    "Box",
    "Vec",
    "assert",
    "debug_assert",
];

/// Runs the global lock-order analysis.
pub fn analyze_locks(files: &[ScannedFile]) -> LockAnalysis {
    let locks = declared_locks(files);
    if locks.is_empty() {
        return LockAnalysis::default();
    }

    // Per-file facts plus a global name → defining-files index.
    let mut per_file: Vec<(&ScannedFile, BTreeMap<String, FnFacts>)> = Vec::new();
    let mut fn_files: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for file in files {
        let facts = file_facts(file, &locks);
        per_file.push((file, facts));
    }
    for (idx, (_, facts)) in per_file.iter().enumerate() {
        for name in facts.keys() {
            fn_files.entry(name.as_str()).or_default().push(idx);
        }
    }

    // (from, to) → (example path, line, via_call); direct edges win over
    // propagated ones as examples.
    let mut edges: BTreeMap<(String, String), (String, usize, bool)> = BTreeMap::new();
    for (file, facts) in &per_file {
        for f in facts.values() {
            for (from, to, line) in &f.edges {
                edges
                    .entry((from.clone(), to.clone()))
                    .and_modify(|e| {
                        if e.2 {
                            *e = (file.path.clone(), *line, false);
                        }
                    })
                    .or_insert_with(|| (file.path.clone(), *line, false));
            }
        }
    }

    // One-level call propagation: a call under held locks contributes
    // edges to everything the callee acquires directly. Only unambiguous
    // callees are followed: same file first, else a workspace-unique name.
    for (file_idx, (file, facts)) in per_file.iter().enumerate() {
        for f in facts.values() {
            for (callee, held, line) in &f.calls {
                let target = if facts.contains_key(callee) {
                    Some(file_idx)
                } else {
                    match fn_files.get(callee.as_str()).map(Vec::as_slice) {
                        Some([only]) => Some(*only),
                        _ => None,
                    }
                };
                let Some(target) = target else { continue };
                let Some(callee_facts) = per_file[target].1.get(callee) else {
                    continue;
                };
                for acquired in &callee_facts.acquires {
                    for from in held {
                        if from != acquired {
                            edges
                                .entry((from.clone(), acquired.clone()))
                                .or_insert_with(|| (file.path.clone(), *line, true));
                        }
                    }
                }
            }
        }
    }

    let edges: Vec<LockEdge> = edges
        .into_iter()
        .map(|((from, to), (path, line, via_call))| LockEdge {
            from,
            to,
            path,
            line,
            via_call,
        })
        .collect();

    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for e in &edges {
        nodes.insert(e.from.clone());
        nodes.insert(e.to.clone());
    }
    for (file, facts) in &per_file {
        let _ = file;
        for f in facts.values() {
            nodes.extend(f.acquires.iter().cloned());
        }
    }

    let adjacency: BTreeMap<&str, Vec<&str>> =
        edges
            .iter()
            .fold(BTreeMap::new(), |mut acc: BTreeMap<&str, Vec<&str>>, e| {
                acc.entry(e.from.as_str()).or_default().push(e.to.as_str());
                acc
            });
    let cycles = find_cycles(&adjacency);

    LockAnalysis {
        nodes: nodes.into_iter().collect(),
        edges,
        cycles,
    }
}

/// Turns lock-graph cycles into `lock-order` findings (never budgetable).
pub fn lock_findings(analysis: &LockAnalysis) -> Vec<Finding> {
    analysis
        .cycles
        .iter()
        .map(|cycle| {
            let example = cycle
                .first()
                .and_then(|first| analysis.edges.iter().find(|e| &e.from == first));
            Finding {
                rule: "lock-order",
                severity: Severity::Error,
                path: example.map(|e| e.path.clone()).unwrap_or_default(),
                line: example.map(|e| e.line).unwrap_or(0),
                message: format!(
                    "lock-order cycle (potential deadlock): {}",
                    cycle.join(" → ")
                ),
                excerpt: String::new(),
                exempt_from_budget: true,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn analyze(files: &[(&str, &str)]) -> LockAnalysis {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(path, src)| scan_source(path, src))
            .collect();
        analyze_locks(&scanned)
    }

    const DECLS: &str = "struct S { a: Mutex<u32>, b: Mutex<u32>, c: Mutex<u32> }\n";

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let src = format!("{DECLS}fn f(s: &S) {{ let ga = s.a.lock(); let gb = s.b.lock(); }}\n");
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(r.edges[0].from, "m.a");
        assert_eq!(r.edges[0].to, "m.b");
        assert!(r.acyclic());
    }

    #[test]
    fn two_cycle_is_found() {
        let src = format!(
            "{DECLS}\
fn f(s: &S) {{ let ga = s.a.lock(); let gb = s.b.lock(); }}\n\
fn g(s: &S) {{ let gb = s.b.lock(); let ga = s.a.lock(); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert_eq!(r.cycles.len(), 1, "{:?}", r.edges);
        assert_eq!(r.cycles[0], ["m.a", "m.b", "m.a"]);
        let f = lock_findings(&r);
        assert_eq!(f.len(), 1);
        assert!(f[0].exempt_from_budget);
    }

    #[test]
    fn three_cycle_is_found() {
        let src = format!(
            "{DECLS}\
fn f(s: &S) {{ let g1 = s.a.lock(); let g2 = s.b.lock(); }}\n\
fn g(s: &S) {{ let g1 = s.b.lock(); let g2 = s.c.lock(); }}\n\
fn h(s: &S) {{ let g1 = s.c.lock(); let g2 = s.a.lock(); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert_eq!(r.cycles.len(), 1, "{:?}", r.edges);
        assert_eq!(r.cycles[0].len(), 4);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{DECLS}\
fn f(s: &S) {{ let g1 = s.a.lock(); let g2 = s.b.lock(); }}\n\
fn g(s: &S) {{ let g1 = s.a.lock(); let g2 = s.c.lock(); }}\n\
fn h(s: &S) {{ let g1 = s.b.lock(); let g2 = s.c.lock(); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert!(r.acyclic(), "{:?}", r.cycles);
        assert!(lock_findings(&r).is_empty());
    }

    #[test]
    fn temporaries_do_not_overlap_across_statements() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ s.a.lock().push(1); s.b.lock().push(2); }}\n\
             fn g(s: &S) {{ s.b.lock().push(1); s.a.lock().push(2); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn drop_releases_early() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ let ga = s.a.lock(); drop(ga); let gb = s.b.lock(); }}\n\
             fn g(s: &S) {{ let gb = s.b.lock(); drop(gb); let ga = s.a.lock(); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn for_loop_header_guard_lives_through_body() {
        let src = format!(
            "{DECLS}fn f(s: &S) {{ for x in s.a.lock().iter() {{ let gb = s.b.lock(); }} }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "m.a");
    }

    #[test]
    fn call_propagation_one_level() {
        let src = format!(
            "{DECLS}\
fn callee(s: &S) {{ let gb = s.b.lock(); }}\n\
fn caller(s: &S) {{ let ga = s.a.lock(); callee(s); }}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        let e: Vec<_> = r.edges.iter().filter(|e| e.via_call).collect();
        assert_eq!(e.len(), 1, "{:?}", r.edges);
        assert_eq!(e[0].from, "m.a");
        assert_eq!(e[0].to, "m.b");
    }

    #[test]
    fn rwlock_read_write_counts_only_declared_receivers() {
        let src = "struct S { state: RwLock<u32> }\n\
                   fn f(s: &S, file: &File) {\n\
                       let g = s.state.read();\n\
                       let n = file.read();\n\
                   }\n";
        let r = analyze(&[("crates/x/src/m.rs", src)]);
        assert_eq!(r.nodes, ["m.state"]);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = format!(
            "{DECLS}#[cfg(test)]\nmod t {{\n\
fn f(s: &S) {{ let ga = s.a.lock(); let gb = s.b.lock(); }}\n\
fn g(s: &S) {{ let gb = s.b.lock(); let ga = s.a.lock(); }}\n}}\n"
        );
        let r = analyze(&[("crates/x/src/m.rs", &src)]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }
}
