//! CLI wrapper over the `smdb-lint` library.
//!
//! ```text
//! smdb-lint [--root PATH] [--config PATH] [--json] [--audit-lp] [--list-rules]
//!           [--check-trail PATH] [--audit-concurrency] [--check-audit PATH]
//! ```
//!
//! Exit codes: 0 = clean, 1 = violations, failed audit checks, or an
//! invalid trail/audit document, 2 = usage / configuration / IO error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    audit_lp: bool,
    audit_concurrency: bool,
    list_rules: bool,
    check_trail: Option<PathBuf>,
    check_audit: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        config: None,
        json: false,
        audit_lp: false,
        audit_concurrency: false,
        list_rules: false,
        check_trail: None,
        check_audit: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(v);
            }
            "--config" => {
                let v = it.next().ok_or("--config requires a path")?;
                opts.config = Some(PathBuf::from(v));
            }
            "--json" => opts.json = true,
            "--audit-lp" => opts.audit_lp = true,
            "--audit-concurrency" => opts.audit_concurrency = true,
            "--list-rules" => opts.list_rules = true,
            "--check-trail" => {
                let v = it.next().ok_or("--check-trail requires a path")?;
                opts.check_trail = Some(PathBuf::from(v));
            }
            "--check-audit" => {
                let v = it.next().ok_or("--check-audit requires a path")?;
                opts.check_audit = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "usage: smdb-lint [--root PATH] [--config PATH] [--json] [--audit-lp] \
     [--list-rules] [--check-trail PATH] [--audit-concurrency] [--check-audit PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in smdb_lint::registry() {
            println!(
                "{:13} {:7} {}",
                rule.id,
                rule.severity.label(),
                rule.description
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &opts.check_trail {
        return run_check_trail(path);
    }
    if let Some(path) = &opts.check_audit {
        return run_check_audit(path);
    }
    if opts.audit_lp {
        return run_audit(&opts);
    }
    if opts.audit_concurrency {
        return run_audit_concurrency(&opts);
    }
    run_lint(&opts)
}

fn load_cfg(opts: &Options) -> Result<smdb_lint::LintConfig, String> {
    match &opts.config {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))
            .and_then(|text| smdb_lint::config::parse(&text)),
        None => smdb_lint::load_config(&opts.root),
    }
}

fn run_audit_concurrency(opts: &Options) -> ExitCode {
    let cfg = match load_cfg(opts) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("smdb-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let scanned = match smdb_lint::scan_repo(&opts.root, &cfg) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("smdb-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let audit = smdb_lint::audit_concurrency(&scanned);
    if opts.json {
        println!(
            "{}",
            smdb_lint::audit::audit_to_json(&audit).to_string_pretty()
        );
    } else {
        print!("{}", smdb_lint::audit::render_concurrency(&audit));
    }
    if audit.failed() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_check_audit(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smdb-lint: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match smdb_common::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smdb-lint: {}: not valid JSON: {e}", path.display());
            return ExitCode::from(1);
        }
    };
    match smdb_lint::validate_concurrency_audit(&doc) {
        Ok(()) => {
            println!("{}: valid concurrency audit", path.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("smdb-lint: {}: {msg}", path.display());
            ExitCode::from(1)
        }
    }
}

fn run_check_trail(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("smdb-lint: reading {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let doc = match smdb_common::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("smdb-lint: {}: not valid JSON: {e}", path.display());
            return ExitCode::from(1);
        }
    };
    match smdb_lint::validate_trail(&doc) {
        Ok(summary) => {
            println!(
                "{}: valid {} trail, {} events ({} decisions)",
                path.display(),
                summary.schema_label(),
                summary.events,
                summary.decisions
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("smdb-lint: {}: {msg}", path.display());
            ExitCode::from(1)
        }
    }
}

fn run_lint(opts: &Options) -> ExitCode {
    let cfg = match load_cfg(opts) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("smdb-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match smdb_lint::run_lint(&opts.root, &cfg) {
        Ok(report) => {
            if opts.json {
                println!("{}", report.to_json().to_string_pretty());
            } else {
                print!("{}", report.render_human());
            }
            ExitCode::from(report.exit_code().clamp(0, u8::MAX as i32) as u8)
        }
        Err(msg) => {
            eprintln!("smdb-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run_audit(opts: &Options) -> ExitCode {
    match smdb_lint::audit_lp() {
        Ok(audits) => {
            let failed = audits.iter().any(|a| !a.passed());
            if opts.json {
                println!("{}", smdb_lint::audits_to_json(&audits).to_string_pretty());
            } else {
                for a in &audits {
                    print!("{}", smdb_lint::render_audit(a));
                }
                let (lo, hi) = smdb_lint::AUDIT_SIZES;
                println!(
                    "smdb-lint --audit-lp: |S| = {lo}..={hi} {}",
                    if failed { "FAILED" } else { "verified" }
                );
            }
            if failed {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(msg) => {
            eprintln!("smdb-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
