//! `--audit-concurrency`: the machine-readable concurrency report.
//!
//! Bundles the three whole-workspace analyses — crate layering
//! ([`crate::graph`]), the atomic-ordering census (L8 sites with their
//! justification status), and the lock graph ([`crate::locks`]) — into
//! one JSON document that `ci.sh` writes to `AUDIT_concurrency.json`,
//! validates with [`validate_concurrency_audit`], and uploads next to
//! the bench and trail artifacts. The audit *fails* (exit 1) on a
//! layering violation or a lock-graph cycle; the atomic census is
//! informational (the lint pass itself enforces the ratchet).

use std::collections::BTreeMap;

use smdb_common::json::Json;

use crate::graph::{self, LayerReport};
use crate::locks::{self, LockAnalysis};
use crate::parse::TokenKind;
use crate::scan::ScannedFile;

/// One `Ordering::` site in the census.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    pub path: String,
    pub line: usize,
    /// `Relaxed` | `Acquire` | `Release` | `AcqRel` | `SeqCst`.
    pub ordering: String,
    /// Whether a `// ordering:` justification comment covers the site.
    pub justified: bool,
}

/// The full concurrency audit.
#[derive(Debug, Clone)]
pub struct ConcurrencyAudit {
    pub layering: LayerReport,
    pub atomics: Vec<AtomicSite>,
    pub locks: LockAnalysis,
}

impl ConcurrencyAudit {
    /// Hard failures: layering violations/cycles or lock-graph cycles.
    pub fn failed(&self) -> bool {
        self.layering.edges.iter().any(|e| !e.legal)
            || !self.layering.acyclic()
            || !self.locks.acyclic()
    }

    /// Census by ordering, sorted by variant name.
    pub fn atomic_census(&self) -> BTreeMap<&str, usize> {
        let mut census: BTreeMap<&str, usize> = BTreeMap::new();
        for site in &self.atomics {
            *census.entry(site.ordering.as_str()).or_default() += 1;
        }
        census
    }
}

/// The memory orderings counted by the census (mirrors the L8 rule).
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Collects every `Ordering::<memory ordering>` site, including test
/// code and justified sites (the census reports; the rule enforces).
fn atomic_sites(files: &[ScannedFile]) -> Vec<AtomicSite> {
    let mut out = Vec::new();
    for file in files {
        let toks: Vec<&crate::parse::Token> = file.code_tokens().collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || !MEMORY_ORDERINGS.contains(&file.text(t)) {
                continue;
            }
            if i < 3
                || file.text(toks[i - 1]) != ":"
                || file.text(toks[i - 2]) != ":"
                || file.text(toks[i - 3]) != "Ordering"
            {
                continue;
            }
            let justified = file
                .lines
                .get(t.line.wrapping_sub(1))
                .is_some_and(|l| has_marker(&l.raw))
                || (t.line >= 2
                    && file
                        .lines
                        .get(t.line - 2)
                        .is_some_and(|l| has_marker(&l.raw)));
            out.push(AtomicSite {
                path: file.path.clone(),
                line: t.line,
                ordering: file.text(t).to_owned(),
                justified,
            });
        }
    }
    out
}

fn has_marker(raw: &str) -> bool {
    raw.find("//")
        .is_some_and(|i| raw[i..].contains("ordering:"))
}

/// Runs all three analyses over already-scanned files.
pub fn audit_concurrency(files: &[ScannedFile]) -> ConcurrencyAudit {
    ConcurrencyAudit {
        layering: graph::analyze_layering(files),
        atomics: atomic_sites(files),
        locks: locks::analyze_locks(files),
    }
}

/// Renders the audit as the `AUDIT_concurrency.json` document.
pub fn audit_to_json(audit: &ConcurrencyAudit) -> Json {
    let crates: Json = audit
        .layering
        .crates
        .iter()
        .map(|(name, layer)| {
            Json::obj([
                ("name", Json::from(name.as_str())),
                (
                    "layer",
                    if *layer == u32::MAX {
                        Json::from("outside")
                    } else {
                        Json::from(*layer as usize)
                    },
                ),
            ])
        })
        .collect();
    let layer_edges: Json = audit
        .layering
        .edges
        .iter()
        .map(|e| {
            Json::obj([
                ("from", Json::from(e.from.as_str())),
                ("to", Json::from(e.to.as_str())),
                ("path", Json::from(e.path.as_str())),
                ("line", Json::from(e.line)),
                ("legal", Json::from(e.legal)),
            ])
        })
        .collect();
    let layering = Json::obj([
        ("crates", crates),
        ("edges", layer_edges),
        (
            "violations",
            Json::from(audit.layering.edges.iter().filter(|e| !e.legal).count()),
        ),
        ("acyclic", Json::from(audit.layering.acyclic())),
    ]);

    let census: Json = audit
        .atomic_census()
        .into_iter()
        .map(|(ordering, count)| {
            Json::obj([
                ("ordering", Json::from(ordering)),
                ("count", Json::from(count)),
            ])
        })
        .collect();
    let sites: Json = audit
        .atomics
        .iter()
        .map(|s| {
            Json::obj([
                ("path", Json::from(s.path.as_str())),
                ("line", Json::from(s.line)),
                ("ordering", Json::from(s.ordering.as_str())),
                ("justified", Json::from(s.justified)),
            ])
        })
        .collect();
    let atomics = Json::obj([
        ("total", Json::from(audit.atomics.len())),
        ("census", census),
        ("sites", sites),
    ]);

    let nodes: Json = audit
        .locks
        .nodes
        .iter()
        .map(|n| Json::from(n.as_str()))
        .collect();
    let lock_edges: Json = audit
        .locks
        .edges
        .iter()
        .map(|e| {
            Json::obj([
                ("from", Json::from(e.from.as_str())),
                ("to", Json::from(e.to.as_str())),
                ("path", Json::from(e.path.as_str())),
                ("line", Json::from(e.line)),
                ("via_call", Json::from(e.via_call)),
            ])
        })
        .collect();
    let cycles: Json = audit
        .locks
        .cycles
        .iter()
        .map(|c| c.iter().map(|n| Json::from(n.as_str())).collect::<Json>())
        .collect();
    let locks = Json::obj([
        ("nodes", nodes),
        ("edges", lock_edges),
        ("cycles", cycles),
        ("acyclic", Json::from(audit.locks.acyclic())),
    ]);

    Json::obj([
        ("schema", Json::from("smdb-audit-concurrency/v1")),
        ("failed", Json::from(audit.failed())),
        ("layering", layering),
        ("atomics", atomics),
        ("locks", locks),
    ])
}

/// Structural validation of an `AUDIT_concurrency.json` document, used
/// by `ci.sh` (via `smdb-lint --check-audit`) before uploading it.
pub fn validate_concurrency_audit(doc: &Json) -> Result<(), String> {
    if doc.get("schema").and_then(Json::as_str) != Some("smdb-audit-concurrency/v1") {
        return Err("schema must be \"smdb-audit-concurrency/v1\"".into());
    }
    if !matches!(doc.get("failed"), Some(Json::Bool(_))) {
        return Err("missing boolean `failed`".into());
    }

    let layering = doc.get("layering").ok_or("missing `layering`")?;
    for key in ["crates", "edges"] {
        let arr = layering
            .get(key)
            .and_then(Json::as_array)
            .ok_or_else(|| format!("`layering.{key}` must be an array"))?;
        for (i, item) in arr.iter().enumerate() {
            let probe = if key == "crates" { "name" } else { "from" };
            if item.get(probe).and_then(Json::as_str).is_none() {
                return Err(format!("`layering.{key}[{i}].{probe}` must be a string"));
            }
        }
    }
    if layering.get("violations").and_then(Json::as_u64).is_none() {
        return Err("`layering.violations` must be a number".into());
    }
    if !matches!(layering.get("acyclic"), Some(Json::Bool(_))) {
        return Err("`layering.acyclic` must be a boolean".into());
    }

    let atomics = doc.get("atomics").ok_or("missing `atomics`")?;
    let total = atomics
        .get("total")
        .and_then(Json::as_u64)
        .ok_or("`atomics.total` must be a number")?;
    let sites = atomics
        .get("sites")
        .and_then(Json::as_array)
        .ok_or("`atomics.sites` must be an array")?;
    if sites.len() as u64 != total {
        return Err(format!(
            "`atomics.total` ({total}) disagrees with sites ({})",
            sites.len()
        ));
    }
    let census = atomics
        .get("census")
        .and_then(Json::as_array)
        .ok_or("`atomics.census` must be an array")?;
    let census_sum: u64 = census
        .iter()
        .filter_map(|c| c.get("count").and_then(Json::as_u64))
        .sum();
    if census_sum != total {
        return Err(format!(
            "`atomics.census` counts sum to {census_sum}, expected {total}"
        ));
    }
    for (i, s) in sites.iter().enumerate() {
        let ordering = s
            .get("ordering")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("`atomics.sites[{i}].ordering` must be a string"))?;
        if !MEMORY_ORDERINGS.contains(&ordering) {
            return Err(format!("unknown memory ordering `{ordering}`"));
        }
        if s.get("path").and_then(Json::as_str).is_none()
            || s.get("line").and_then(Json::as_u64).is_none()
        {
            return Err(format!("`atomics.sites[{i}]` needs path + line"));
        }
    }

    let locks = doc.get("locks").ok_or("missing `locks`")?;
    for key in ["nodes", "edges", "cycles"] {
        if locks.get(key).and_then(Json::as_array).is_none() {
            return Err(format!("`locks.{key}` must be an array"));
        }
    }
    if !matches!(locks.get("acyclic"), Some(Json::Bool(_))) {
        return Err("`locks.acyclic` must be a boolean".into());
    }
    let cycles = locks.get("cycles").and_then(Json::as_array).unwrap_or(&[]);
    if (locks.get("acyclic") == Some(&Json::Bool(true))) != cycles.is_empty() {
        return Err("`locks.acyclic` disagrees with `locks.cycles`".into());
    }
    Ok(())
}

/// Human-readable one-screen summary for the CLI.
pub fn render_concurrency(audit: &ConcurrencyAudit) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "layering: {} crate(s), {} edge(s), {} violation(s), {}\n",
        audit.layering.crates.len(),
        audit.layering.edges.len(),
        audit.layering.edges.iter().filter(|e| !e.legal).count(),
        if audit.layering.acyclic() {
            "acyclic"
        } else {
            "CYCLIC"
        }
    ));
    for e in audit.layering.edges.iter().filter(|e| !e.legal) {
        out.push_str(&format!(
            "  illegal edge {} → {} ({}:{})\n",
            e.from, e.to, e.path, e.line
        ));
    }
    out.push_str("atomics:");
    for (ordering, count) in audit.atomic_census() {
        out.push_str(&format!(" {ordering}={count}"));
    }
    let justified = audit.atomics.iter().filter(|s| s.justified).count();
    out.push_str(&format!(
        " (total {}, justified {justified})\n",
        audit.atomics.len()
    ));
    out.push_str(&format!(
        "locks: {} node(s), {} edge(s), {}\n",
        audit.locks.nodes.len(),
        audit.locks.edges.len(),
        if audit.locks.acyclic() {
            "acyclic"
        } else {
            "CYCLIC"
        }
    ));
    for c in &audit.locks.cycles {
        out.push_str(&format!("  cycle: {}\n", c.join(" → ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn audit_of(files: &[(&str, &str)]) -> ConcurrencyAudit {
        let scanned: Vec<ScannedFile> = files.iter().map(|(p, s)| scan_source(p, s)).collect();
        audit_concurrency(&scanned)
    }

    #[test]
    fn clean_audit_round_trips_and_validates() {
        let a = audit_of(&[(
            "crates/core/src/driver.rs",
            "struct D { q: Mutex<u32> }\n\
             fn tick(d: &D) {\n\
                 // ordering: monotonic counter, no synchronisation\n\
                 SEQ.fetch_add(1, Ordering::Relaxed);\n\
                 let g = d.q.lock();\n\
             }\n\
             fn dep() { smdb_cost::noop(); }\n",
        )]);
        assert!(!a.failed());
        assert_eq!(a.atomics.len(), 1);
        assert!(a.atomics[0].justified);
        let json = audit_to_json(&a);
        validate_concurrency_audit(&json).expect("self-produced audit validates");
        let back = smdb_common::json::parse(&json.to_string_pretty()).expect("parses");
        validate_concurrency_audit(&back).expect("round-tripped audit validates");
    }

    #[test]
    fn lock_cycle_fails_the_audit() {
        let a = audit_of(&[(
            "crates/core/src/driver.rs",
            "struct D { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn f(d: &D) { let x = d.a.lock(); let y = d.b.lock(); }\n\
             fn g(d: &D) { let y = d.b.lock(); let x = d.a.lock(); }\n",
        )]);
        assert!(a.failed());
        let json = audit_to_json(&a);
        assert_eq!(json.get("failed"), Some(&Json::Bool(true)));
        validate_concurrency_audit(&json).expect("failed audits still validate");
    }

    #[test]
    fn layering_violation_fails_the_audit() {
        let a = audit_of(&[("crates/storage/src/engine.rs", "use smdb_core::Driver;\n")]);
        assert!(a.failed());
    }

    #[test]
    fn validator_rejects_tampered_documents() {
        let a = audit_of(&[("crates/core/src/driver.rs", "fn f() {}\n")]);
        let good = audit_to_json(&a).to_string_pretty();

        let bad_schema = good.replace("smdb-audit-concurrency/v1", "nope/v0");
        let doc = smdb_common::json::parse(&bad_schema).expect("parses");
        assert!(validate_concurrency_audit(&doc).is_err());

        let no_locks = good.replace("\"locks\"", "\"locked\"");
        let doc = smdb_common::json::parse(&no_locks).expect("parses");
        assert!(validate_concurrency_audit(&doc).is_err());
    }

    #[test]
    fn census_total_mismatch_is_rejected() {
        let a = audit_of(&[(
            "crates/core/src/driver.rs",
            "fn f() { X.store(1, Ordering::Relaxed); }\n",
        )]);
        let text = audit_to_json(&a)
            .to_string_pretty()
            .replace("\"total\": 1", "\"total\": 2");
        let doc = smdb_common::json::parse(&text).expect("parses");
        assert!(validate_concurrency_audit(&doc).is_err());
    }
}
