//! # smdb-lint — repo-specific static analysis with paper-invariant audits
//!
//! A std-only lint engine for this repository (the offline build bans
//! external analysis dependencies). It lexes every `.rs` file into a
//! spanned token stream ([`parse`]), projects it to sanitized lines
//! ([`scan`]), applies the rule registry ([`rules`]) under the
//! `lint.toml` allowlist ratchet ([`config`], [`report`]), then runs two
//! whole-workspace passes — crate-layering ([`graph`]) and lock-order
//! ([`locks`]) — whose findings can never be budgeted away. Beyond
//! that, it re-derives the paper's ordering-ILP size formulas through
//! `smdb_lp::audit`, and [`audit`] exports the combined concurrency
//! picture as a validated JSON artifact, so a drift in the model builder
//! or a new deadlock-shaped lock pair fails the same gate as a stray
//! `unwrap()`.
//!
//! The engine is a library first: `tests/lint_enforcement.rs` runs the
//! full pass during `cargo test`, and the `smdb-lint` binary wraps the
//! same entry points with CLI flags and exit codes for `ci.sh`.

pub mod audit;
pub mod config;
pub mod graph;
pub mod locks;
pub mod parse;
pub mod report;
pub mod rules;
pub mod scan;
pub mod trail;

use std::fs;
use std::path::{Path, PathBuf};

pub use audit::{audit_concurrency, validate_concurrency_audit, ConcurrencyAudit};
pub use config::LintConfig;
pub use graph::{analyze_layering, LayerReport};
pub use locks::{analyze_locks, LockAnalysis};
pub use report::{Allowance, LintReport};
pub use rules::{registry, Finding, Rule, Severity};
pub use scan::{scan_source, ScannedFile};
pub use trail::{validate_trail, TrailSummary};

/// Directories never scanned regardless of configuration.
const ALWAYS_SKIPPED: &[&str] = &["target", ".git"];

/// Loads `lint.toml` from `root` (missing file = default config).
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(LintConfig::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    config::parse(&text)
}

/// All `.rs` files under `root` in sorted order, honouring the config's
/// exclusions.
pub fn collect_rs_files(root: &Path, cfg: &LintConfig) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
            let path = entry.path();
            let rel = relative_path(root, &path);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if ALWAYS_SKIPPED.contains(&name.as_ref())
                    || name.starts_with('.')
                    || cfg.is_excluded(&format!("{rel}/"))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !cfg.is_excluded(&rel) {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Repo-relative `/`-separated path of `path` under `root`.
pub fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Scans every `.rs` file under `root` into token streams + sanitized
/// lines, in sorted path order.
pub fn scan_repo(root: &Path, cfg: &LintConfig) -> Result<Vec<ScannedFile>, String> {
    let files = collect_rs_files(root, cfg)?;
    let mut scanned = Vec::with_capacity(files.len());
    for path in &files {
        let source =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        scanned.push(scan::scan_source(&relative_path(root, path), &source));
    }
    Ok(scanned)
}

/// Runs the full analysis pass over the repository at `root`: the
/// per-file rule registry, then the global crate-layering and
/// lock-order passes.
pub fn run_lint(root: &Path, cfg: &LintConfig) -> Result<LintReport, String> {
    let scanned = scan_repo(root, cfg)?;
    let rules = rules::registry();
    let mut findings = Vec::new();
    for file in &scanned {
        for rule in &rules {
            rule.check_file(file, &mut findings);
        }
    }
    findings.extend(graph::layering_findings(&graph::analyze_layering(&scanned)));
    findings.extend(locks::lock_findings(&locks::analyze_locks(&scanned)));
    Ok(LintReport::assemble(scanned.len(), findings, cfg))
}

/// Convenience entry point: load config and lint `root`.
pub fn lint_repo(root: &Path) -> Result<LintReport, String> {
    let cfg = load_config(root)?;
    run_lint(root, &cfg)
}

/// The `|S|` range over which [`audit_lp`] verifies the ordering model —
/// the paper's experiments tune up to eight features.
pub const AUDIT_SIZES: (usize, usize) = (2, 8);

/// Rebuilds the paper's ordering ILP for `|S| = 2..=8` and verifies the
/// size formulas (`2|S|² − |S|` variables, `2|S|²` constraints) and the
/// four constraint families. Returns the per-size audits; any failed
/// check makes the caller exit non-zero.
pub fn audit_lp() -> Result<Vec<smdb_lp::ModelAudit>, String> {
    smdb_lp::audit_range(AUDIT_SIZES.0, AUDIT_SIZES.1).map_err(|e| e.to_string())
}

/// Renders one model audit as human-readable lines.
pub fn render_audit(audit: &smdb_lp::ModelAudit) -> String {
    let mut out = format!("ordering ILP |S| = {}\n", audit.n);
    for check in &audit.checks {
        let status = if check.passed { "ok  " } else { "FAIL" };
        out.push_str(&format!(
            "  {status} {} (expected {}, got {})\n",
            check.name, check.expected, check.actual
        ));
    }
    out
}

/// Renders all audits as a JSON document.
pub fn audits_to_json(audits: &[smdb_lp::ModelAudit]) -> smdb_common::json::Json {
    use smdb_common::json::Json;
    let entries: Json = audits
        .iter()
        .map(|a| {
            let checks: Json = a
                .checks
                .iter()
                .map(|c| {
                    Json::obj([
                        ("name", Json::from(c.name.as_str())),
                        ("expected", Json::from(c.expected.as_str())),
                        ("actual", Json::from(c.actual.as_str())),
                        ("passed", Json::from(c.passed)),
                    ])
                })
                .collect();
            Json::obj([
                ("n", Json::from(a.n)),
                ("passed", Json::from(a.passed())),
                ("checks", checks),
            ])
        })
        .collect();
    Json::obj([("audits", entries)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_are_forward_slashed() {
        let root = Path::new("/repo");
        let p = Path::new("/repo/crates/core/src/driver.rs");
        assert_eq!(relative_path(root, p), "crates/core/src/driver.rs");
    }

    #[test]
    fn audit_lp_is_clean() {
        let audits = audit_lp().expect("audits build");
        assert_eq!(audits.len(), AUDIT_SIZES.1 - AUDIT_SIZES.0 + 1);
        for a in &audits {
            assert!(a.passed(), "n={} failed: {}", a.n, render_audit(a));
        }
    }

    #[test]
    fn audit_rendering_mentions_formulas() {
        let audits = audit_lp().expect("audits build");
        let text = render_audit(&audits[0]);
        assert!(text.contains("2n^2 - n"));
        let json = audits_to_json(&audits);
        assert_eq!(
            json.get("audits")
                .and_then(|a| a.as_array())
                .map(<[_]>::len),
            Some(7)
        );
    }
}
