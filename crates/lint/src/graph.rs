//! Crate-layering enforcement from source tokens.
//!
//! The workspace is a strict DAG (see DESIGN.md §8):
//!
//! ```text
//! layer 0   common
//! layer 1   obs
//! layer 2   durable   lp
//! layer 3   storage
//! layer 4   query
//! layer 5   cost   forecast   workload
//! layer 6   core
//! layer 7   shard
//! layer 8   runtime
//! layer 9   bench
//! layer 10  smdb (root facade)
//! outside   lint  (may use common + lp only; nothing may use lint)
//! ```
//!
//! Rather than trusting `Cargo.toml` (which tells you what a crate *may*
//! use), this pass reads what the source *actually* references: every
//! `smdb_<crate>` path token in non-test code of `crates/<c>/src/**`
//! becomes an edge `c → crate`. An edge is legal only when it points to
//! a strictly lower layer — same-layer and upward edges, unknown target
//! crates, and any dependency cycle are findings under the
//! `crate-layering` rule. Test-gated tokens are exempt (dev-dependencies
//! may reach sideways).

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::{Finding, Severity};
use crate::scan::ScannedFile;

/// The fixed layer assignment. Lower layers must not reference higher
/// ones; `lint` sits outside the stack with an explicit allowlist.
const LAYERS: &[(&str, u32)] = &[
    ("common", 0),
    ("obs", 1),
    ("durable", 2),
    ("lp", 2),
    ("storage", 3),
    ("query", 4),
    ("cost", 5),
    ("forecast", 5),
    ("workload", 5),
    ("core", 6),
    ("shard", 7),
    ("runtime", 8),
    ("bench", 9),
    ("smdb", 10),
];

/// Crates `lint` may reference (it audits the others' *source*, not
/// their APIs, except for the LP audit re-derivation).
const LINT_ALLOWED: &[&str] = &["common", "lp"];

/// One observed source-level dependency edge.
#[derive(Debug, Clone)]
pub struct CrateEdge {
    pub from: String,
    pub to: String,
    /// Example reference site.
    pub path: String,
    pub line: usize,
    /// Whether the edge respects the layering.
    pub legal: bool,
}

/// The result of the layering pass.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// `(crate, layer)` for every crate seen in the scan; `lint` is
    /// reported with layer `u32::MAX` (outside the stack).
    pub crates: Vec<(String, u32)>,
    /// Deduplicated edges in deterministic order.
    pub edges: Vec<CrateEdge>,
    /// Dependency cycles found (each a closed walk of crate names).
    pub cycles: Vec<Vec<String>>,
}

impl LayerReport {
    /// Whether the observed graph is a DAG.
    pub fn acyclic(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Which crate a repo-relative path belongs to, if it is enforced
/// library source (`crates/<c>/src/**` or the root facade `src/**`).
fn owning_crate(path: &str) -> Option<&str> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(name);
        }
        return None;
    }
    if path.starts_with("src/") {
        return Some("smdb");
    }
    None
}

fn layer_of(name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, layer)| layer)
}

/// Is a source-level edge `from → to` allowed?
fn edge_legal(from: &str, to: &str) -> bool {
    if to == "lint" {
        return false; // nothing may depend on the auditor
    }
    if from == "lint" {
        return LINT_ALLOWED.contains(&to);
    }
    match (layer_of(from), layer_of(to)) {
        (Some(f), Some(t)) => t < f,
        _ => false, // unknown crates have no legal edges
    }
}

/// Runs the layering pass over all scanned files.
pub fn analyze_layering(files: &[ScannedFile]) -> LayerReport {
    // (from, to) → example site; BTreeMap for deterministic output.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    let mut crates: BTreeSet<String> = BTreeSet::new();

    for file in files {
        let Some(owner) = owning_crate(&file.path) else {
            continue;
        };
        crates.insert(owner.to_owned());
        for tok in file.code_tokens() {
            if tok.in_test {
                continue;
            }
            let text = file.text(tok);
            let Some(dep) = text.strip_prefix("smdb_") else {
                continue;
            };
            if dep == owner {
                continue; // `smdb_x` inside crate x (e.g. macro paths)
            }
            crates.insert(dep.to_owned());
            edges
                .entry((owner.to_owned(), dep.to_owned()))
                .or_insert_with(|| (file.path.clone(), tok.line));
        }
    }

    let edges: Vec<CrateEdge> = edges
        .into_iter()
        .map(|((from, to), (path, line))| {
            let legal = edge_legal(&from, &to);
            CrateEdge {
                from,
                to,
                path,
                line,
                legal,
            }
        })
        .collect();

    let adjacency: BTreeMap<&str, Vec<&str>> =
        edges
            .iter()
            .fold(BTreeMap::new(), |mut acc: BTreeMap<&str, Vec<&str>>, e| {
                acc.entry(e.from.as_str()).or_default().push(e.to.as_str());
                acc
            });
    let cycles = find_cycles(&adjacency);

    let crates = crates
        .into_iter()
        .map(|name| {
            let layer = if name == "lint" {
                u32::MAX
            } else {
                layer_of(&name).unwrap_or(u32::MAX)
            };
            (name, layer)
        })
        .collect();

    LayerReport {
        crates,
        edges,
        cycles,
    }
}

/// Turns a layer report into `crate-layering` findings: one per illegal
/// edge and one per cycle.
pub fn layering_findings(report: &LayerReport) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in report.edges.iter().filter(|e| !e.legal) {
        out.push(Finding {
            rule: "crate-layering",
            severity: Severity::Error,
            path: e.path.clone(),
            line: e.line,
            message: format!(
                "`{}` references `smdb_{}` — upward or sideways edge in the crate \
                 layering DAG (see DESIGN.md §8)",
                e.from, e.to
            ),
            excerpt: String::new(),
            exempt_from_budget: true,
        });
    }
    for cycle in &report.cycles {
        out.push(Finding {
            rule: "crate-layering",
            severity: Severity::Error,
            path: cycle.first().cloned().unwrap_or_default(),
            line: 0,
            message: format!("crate dependency cycle: {}", cycle.join(" → ")),
            excerpt: String::new(),
            exempt_from_budget: true,
        });
    }
    out
}

/// Finds elementary cycles reachable in `adjacency` via DFS; returns each
/// as a closed walk (first node repeated last). Deterministic: nodes and
/// neighbours are visited in sorted order, and each cycle is reported
/// once, rotated to start at its smallest node.
pub fn find_cycles(adjacency: &BTreeMap<&str, Vec<&str>>) -> Vec<Vec<String>> {
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adjacency.keys() {
        // DFS with an explicit stack of (node, next-neighbour-index).
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        while let Some((node, idx)) = stack.last_mut() {
            let mut neighbours: Vec<&str> = adjacency
                .get(*node)
                .map(|v| v.iter().copied().collect())
                .unwrap_or_default();
            neighbours.sort_unstable();
            if *idx >= neighbours.len() {
                stack.pop();
                path.pop();
                continue;
            }
            let next = neighbours[*idx];
            *idx += 1;
            if let Some(pos) = path.iter().position(|&n| n == next) {
                // Found a cycle: path[pos..] ++ next.
                let mut cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                cycle.push(next.to_owned());
                cycles.insert(canonical_cycle(cycle));
                continue;
            }
            if path.len() < 64 {
                path.push(next);
                stack.push((next, 0));
            }
        }
    }
    cycles.into_iter().collect()
}

/// Rotates a closed walk (`a b c a`) so it starts at its smallest node,
/// giving every rotation of the same cycle one canonical spelling.
fn canonical_cycle(mut cycle: Vec<String>) -> Vec<String> {
    cycle.pop(); // drop the duplicated closing node
    let Some(min_pos) = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, n)| n.as_str())
        .map(|(i, _)| i)
    else {
        return cycle;
    };
    cycle.rotate_left(min_pos);
    let first = cycle.first().cloned().unwrap_or_default();
    cycle.push(first);
    cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn layering(files: &[(&str, &str)]) -> LayerReport {
        let scanned: Vec<ScannedFile> = files
            .iter()
            .map(|(path, src)| scan_source(path, src))
            .collect();
        analyze_layering(&scanned)
    }

    #[test]
    fn downward_edges_are_legal() {
        let r = layering(&[
            ("crates/core/src/lib.rs", "use smdb_cost::Model;\n"),
            ("crates/cost/src/lib.rs", "use smdb_storage::Table;\n"),
        ]);
        assert!(r.edges.iter().all(|e| e.legal), "{:?}", r.edges);
        assert!(r.acyclic());
        assert!(layering_findings(&r).is_empty());
    }

    #[test]
    fn upward_edge_is_flagged() {
        let r = layering(&[("crates/storage/src/engine.rs", "use smdb_core::Driver;\n")]);
        assert_eq!(r.edges.len(), 1);
        assert!(!r.edges[0].legal);
        let f = layering_findings(&r);
        assert_eq!(f.len(), 1);
        assert!(f[0].exempt_from_budget, "layering is never budgetable");
        assert!(f[0].message.contains("smdb_core"));
    }

    #[test]
    fn sideways_edge_is_flagged() {
        let r = layering(&[("crates/cost/src/lib.rs", "use smdb_forecast::Predictor;\n")]);
        assert_eq!(layering_findings(&r).len(), 1, "cost and forecast tie");
    }

    #[test]
    fn lint_is_fenced_both_ways() {
        let ok = layering(&[(
            "crates/lint/src/lib.rs",
            "use smdb_lp::audit; use smdb_common::json::Json;\n",
        )]);
        assert!(layering_findings(&ok).is_empty(), "{:?}", ok.edges);
        let bad = layering(&[
            ("crates/lint/src/lib.rs", "use smdb_core::Driver;\n"),
            ("crates/query/src/lib.rs", "use smdb_lint::registry;\n"),
        ]);
        assert_eq!(layering_findings(&bad).len(), 2);
    }

    #[test]
    fn test_gated_references_are_exempt() {
        let r = layering(&[(
            "crates/storage/src/engine.rs",
            "fn lib() {}\n#[cfg(test)]\nmod t { use smdb_core::Driver; }\n",
        )]);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn non_library_paths_are_not_enforced() {
        let r = layering(&[
            ("tests/integration.rs", "use smdb_core::Driver;\n"),
            ("crates/storage/tests/t.rs", "use smdb_core::Driver;\n"),
        ]);
        assert!(r.edges.is_empty());
    }

    #[test]
    fn cycles_are_detected_and_canonical() {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        adj.insert("a", vec!["b"]);
        adj.insert("b", vec!["c"]);
        adj.insert("c", vec!["a"]);
        let cycles = find_cycles(&adj);
        assert_eq!(
            cycles,
            vec![vec![
                "a".to_owned(),
                "b".to_owned(),
                "c".to_owned(),
                "a".to_owned(),
            ]]
        );
    }
}
