//! Comment-, string-, and `#[cfg(test)]`-aware source scanning.
//!
//! Rules must never fire on the word `panic!` inside a doc comment or a
//! string literal, and must not police test-only code for panic-freedom.
//! A regex over raw lines cannot deliver that, so the scanner runs a
//! small character-level state machine over each file and produces, per
//! line, a *sanitized* copy — comments and literal contents replaced by
//! spaces, delimiters kept, so byte offsets still line up — plus a flag
//! saying whether the line sits inside a `#[cfg(test)]`-gated item.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: usize,
    /// The original text (used for excerpts in findings).
    pub raw: String,
    /// The text with comments and string/char literal *contents* blanked
    /// out; quote and comment delimiters are preserved as spaces too.
    pub code: String,
    /// Whether the line is inside (or opens) a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully scanned file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub lines: Vec<ScannedLine>,
}

/// Lexical mode carried across lines.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Rust block comments nest; the payload is the nesting depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string (may span lines via `\` continuation).
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u8),
}

/// Tracks one active `#[cfg(test)]` region (brace-delimited item body).
#[derive(Debug, Clone, Copy)]
enum TestRegion {
    /// Saw the attribute; waiting for the item's opening `{` (or a `;`
    /// ending a body-less item).
    Pending,
    /// Inside the braces; region ends when depth returns to the value
    /// recorded at the opening brace.
    Active { close_depth: i64 },
}

/// Scans `source`, producing sanitized lines and test-region flags.
pub fn scan_source(path: &str, source: &str) -> ScannedFile {
    let mut mode = Mode::Code;
    let mut depth: i64 = 0;
    let mut region: Option<TestRegion> = None;
    let mut lines = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let mut in_test = matches!(region, Some(TestRegion::Active { .. }));

        while i < bytes.len() {
            match mode {
                Mode::BlockComment(nest) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        mode = if nest > 1 {
                            Mode::BlockComment(nest - 1)
                        } else {
                            Mode::Code
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::BlockComment(nest + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == '\\' {
                        code.push_str("  ");
                        i += 2; // skip the escaped character (may run off the line: continuation)
                    } else if bytes[i] == '"' {
                        mode = Mode::Code;
                        code.push(' ');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == '"' && closes_raw(&bytes, i + 1, hashes) {
                        mode = Mode::Code;
                        let skip = 1 + hashes as usize;
                        for _ in 0..skip {
                            code.push(' ');
                        }
                        i += skip;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Line comment: blank the rest of the line.
                        while i < bytes.len() {
                            code.push(' ');
                            i += 1;
                        }
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    } else if let Some(hashes) = raw_string_open(&bytes, i) {
                        mode = Mode::RawStr(hashes.1);
                        for _ in 0..hashes.0 {
                            code.push(' ');
                        }
                        i += hashes.0;
                    } else if c == '"' {
                        mode = Mode::Str;
                        code.push(' ');
                        i += 1;
                    } else if c == '\'' {
                        let consumed = char_literal_len(&bytes, i);
                        if consumed == 1 {
                            // Lifetime (or stray quote): keep it visible.
                            code.push('\'');
                        } else {
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                        }
                        i += consumed;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        // Region tracking runs on the sanitized text, in character order.
        let sanitized: Vec<char> = code.chars().collect();
        let mut j = 0usize;
        while j < sanitized.len() {
            if region.is_none() && starts_cfg_test(&sanitized, j) {
                region = Some(TestRegion::Pending);
            }
            match sanitized[j] {
                '{' => {
                    if let Some(TestRegion::Pending) = region {
                        region = Some(TestRegion::Active { close_depth: depth });
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(TestRegion::Active { close_depth }) = region {
                        if depth <= close_depth {
                            region = None;
                        }
                    }
                }
                ';' => {
                    if let Some(TestRegion::Pending) = region {
                        // `#[cfg(test)] mod x;` — no body to gate.
                        region = None;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if matches!(region, Some(TestRegion::Active { .. })) {
            in_test = true;
        }

        lines.push(ScannedLine {
            number: idx + 1,
            raw: raw.to_owned(),
            code,
            in_test,
        });
    }

    ScannedFile {
        path: path.to_owned(),
        lines,
    }
}

/// Does a `#[cfg(test)]`-style attribute start at `pos`? Also accepts
/// `cfg(all(test, …))` / `cfg(any(test, …))` forms.
fn starts_cfg_test(chars: &[char], pos: usize) -> bool {
    if chars[pos] != '#' {
        return false;
    }
    let rest: String = chars[pos..].iter().collect::<String>();
    let compact: String = rest.chars().filter(|c| !c.is_whitespace()).collect();
    compact.starts_with("#[cfg(test)")
        || compact.starts_with("#[cfg(all(test")
        || compact.starts_with("#[cfg(any(test")
}

/// If a raw (byte) string opens at `pos`, returns
/// `(prefix_len_including_quote, hash_count)`.
fn raw_string_open(chars: &[char], pos: usize) -> Option<(usize, u8)> {
    let mut k = pos;
    if chars.get(k) == Some(&'b') {
        k += 1;
    }
    if chars.get(k) != Some(&'r') {
        return None;
    }
    k += 1;
    let mut hashes = 0u8;
    while chars.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    if chars.get(k) == Some(&'"') {
        // Reject identifiers ending in …br"! by checking the char before.
        if pos > 0 && is_ident_char(chars[pos - 1]) {
            return None;
        }
        Some((k - pos + 1, hashes))
    } else {
        None
    }
}

/// Does `"` at some position close a raw string with `hashes` trailing `#`s?
fn closes_raw(chars: &[char], after_quote: usize, hashes: u8) -> bool {
    (0..hashes as usize).all(|k| chars.get(after_quote + k) == Some(&'#'))
}

/// Number of characters consumed by the token starting with `'` — a char
/// literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a lifetime (`'a`, just the
/// quote is consumed so the identifier stays visible).
fn char_literal_len(chars: &[char], pos: usize) -> usize {
    match chars.get(pos + 1) {
        Some('\\') => {
            // Escaped char literal: the escaped character itself may be a
            // quote (`'\''`), so start looking for the closing quote after
            // it.
            let mut k = pos + 3;
            while k < chars.len() && chars[k] != '\'' {
                k += 1;
            }
            (k + 1).min(chars.len()) - pos
        }
        Some(_) if chars.get(pos + 2) == Some(&'\'') => 3,
        _ => 1, // lifetime or stray quote: keep what follows visible
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan_source("t.rs", src)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn line_comments_are_blanked() {
        let c = code_of("let x = 1; // call .unwrap() here\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let c = code_of("a /* outer /* panic!() */ still comment */ b\n");
        assert!(!c[0].contains("panic"));
        assert!(c[0].starts_with('a'));
        assert!(c[0].trim_end().ends_with('b'));
    }

    #[test]
    fn string_contents_are_blanked_but_call_sites_survive() {
        let c = code_of("foo.expect(\"really .unwrap() me\");\n");
        assert!(c[0].contains("foo.expect("));
        assert!(!c[0].contains("unwrap"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = code_of("let s = r#\"panic!(\"x\")\"#; let t = \"\\\"panic!\";\n");
        assert!(!c[0].contains("panic"));
        let c = code_of("let b = br##\"unwrap()\"##;\n");
        assert!(!c[0].contains("unwrap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\\''; let z = 'y'; }\n");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!c[0].contains("'y'"));
    }

    #[test]
    fn multiline_strings_span() {
        let src = "let s = \"line one\npanic!()\nstill string\";\nlet x = 2;\n";
        let c = code_of(src);
        assert!(!c[1].contains("panic"));
        assert!(c[3].contains("let x = 2;"));
    }

    #[test]
    fn cfg_test_region_flags_lines() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn lib2() {}
";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[0].in_test, "lib fn");
        assert!(f.lines[2].in_test, "mod tests opening line");
        assert!(f.lines[3].in_test, "inside tests");
        assert!(!f.lines[5].in_test, "after tests");
    }

    #[test]
    fn cfg_test_on_single_item_only() {
        let src = "\
#[cfg(test)]
fn only_this() { a.unwrap() }
fn not_this() { }
";
        let f = scan_source("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_test_mod_declaration_without_body() {
        let src = "#[cfg(test)]\nmod external_tests;\nfn real() {}\n";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn g() {}\n";
        let f = scan_source("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }
}
