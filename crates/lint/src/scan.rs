//! Comment-, string-, and `#[cfg(test)]`-aware source scanning.
//!
//! Rules must never fire on the word `panic!` inside a doc comment or a
//! string literal, and must not police test-only code for panic-freedom.
//! The heavy lifting lives in the lexer ([`crate::parse`]): this module
//! projects its spanned token stream into the per-line *sanitized* view
//! the legacy line rules consume — comments and literal contents blanked
//! out so byte offsets still line up, plus a flag saying whether the
//! line sits inside a `#[cfg(test)]`-gated item — and carries the raw
//! token stream along for the token-level passes (map-iteration,
//! atomic-ordering, lock-order, crate layering).

use crate::parse::{self, Token, TokenKind};

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// 1-based line number.
    pub number: usize,
    /// The original text (used for excerpts in findings).
    pub raw: String,
    /// The text with comments and string/char literal *contents* blanked
    /// out; quote and comment delimiters are preserved as spaces too.
    pub code: String,
    /// Whether the line is inside (or opens) a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A fully scanned file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub lines: Vec<ScannedLine>,
    /// The original source, for resolving token spans.
    pub source: String,
    /// The full lexed token stream the line view is projected from.
    pub tokens: Vec<Token>,
}

impl ScannedFile {
    /// Code tokens only (no whitespace/comments).
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| t.is_code())
    }

    /// The text of a token within this file.
    pub fn text(&self, token: &Token) -> &str {
        token.text(&self.source)
    }
}

/// Scans `source`: lexes it once, then derives sanitized lines and
/// test-region flags from the token stream.
pub fn scan_source(path: &str, source: &str) -> ScannedFile {
    let stream = parse::lex(source);

    // Sanitize byte-wise: blank every byte covered by a comment or a
    // string/char literal (newlines kept so the line structure is
    // untouched). Multi-byte characters are blanked whole, so the result
    // stays valid UTF-8.
    let mut sanitized = source.as_bytes().to_vec();
    for t in &stream.tokens {
        if matches!(
            t.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Str | TokenKind::Char
        ) {
            for b in &mut sanitized[t.start..t.end] {
                if *b != b'\n' && *b != b'\r' {
                    *b = b' ';
                }
            }
        }
    }
    let sanitized = String::from_utf8(sanitized).unwrap_or_default();

    let mut lines: Vec<ScannedLine> = source
        .lines()
        .zip(sanitized.lines())
        .enumerate()
        .map(|(idx, (raw, code))| ScannedLine {
            number: idx + 1,
            raw: raw.to_owned(),
            code: code.to_owned(),
            in_test: false,
        })
        .collect();

    // A line is test-gated when any token touching it is. Multi-line
    // tokens (whitespace runs, block comments, strings) mark every line
    // they span.
    for t in &stream.tokens {
        if !t.in_test {
            continue;
        }
        let span_lines = source[t.start..t.end]
            .as_bytes()
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        for number in t.line..=t.line + span_lines {
            if let Some(line) = lines.get_mut(number - 1) {
                line.in_test = true;
            }
        }
    }

    ScannedFile {
        path: path.to_owned(),
        lines,
        source: source.to_owned(),
        tokens: stream.tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan_source("t.rs", src)
            .lines
            .into_iter()
            .map(|l| l.code)
            .collect()
    }

    #[test]
    fn line_comments_are_blanked() {
        let c = code_of("let x = 1; // call .unwrap() here\n");
        assert!(!c[0].contains("unwrap"));
        assert!(c[0].contains("let x = 1;"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let c = code_of("a /* outer /* panic!() */ still comment */ b\n");
        assert!(!c[0].contains("panic"));
        assert!(c[0].starts_with('a'));
        assert!(c[0].trim_end().ends_with('b'));
    }

    #[test]
    fn string_contents_are_blanked_but_call_sites_survive() {
        let c = code_of("foo.expect(\"really .unwrap() me\");\n");
        assert!(c[0].contains("foo.expect("));
        assert!(!c[0].contains("unwrap"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let c = code_of("let s = r#\"panic!(\"x\")\"#; let t = \"\\\"panic!\";\n");
        assert!(!c[0].contains("panic"));
        let c = code_of("let b = br##\"unwrap()\"##;\n");
        assert!(!c[0].contains("unwrap"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\\''; let z = 'y'; }\n");
        assert!(c[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!c[0].contains("'y'"));
    }

    #[test]
    fn multiline_strings_span() {
        let src = "let s = \"line one\npanic!()\nstill string\";\nlet x = 2;\n";
        let c = code_of(src);
        assert!(!c[1].contains("panic"));
        assert!(c[3].contains("let x = 2;"));
    }

    #[test]
    fn cfg_test_region_flags_lines() {
        let src = "\
fn lib() {}
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}
fn lib2() {}
";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[0].in_test, "lib fn");
        assert!(f.lines[2].in_test, "mod tests opening line");
        assert!(f.lines[3].in_test, "inside tests");
        assert!(!f.lines[5].in_test, "after tests");
    }

    #[test]
    fn cfg_test_on_single_item_only() {
        let src = "\
#[cfg(test)]
fn only_this() { a.unwrap() }
fn not_this() { }
";
        let f = scan_source("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_test_mod_declaration_without_body() {
        let src = "#[cfg(test)]\nmod external_tests;\nfn real() {}\n";
        let f = scan_source("t.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn g() {}\n";
        let f = scan_source("t.rs", src);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn tokens_are_exposed_alongside_lines() {
        let f = scan_source("t.rs", "fn f() { map.iter(); } // trailing\n");
        assert!(f.code_tokens().any(|t| f.text(t) == "iter"));
        assert!(f.code_tokens().all(|t| f.text(t) != "trailing"));
    }
}
