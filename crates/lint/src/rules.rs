//! The rule registry.
//!
//! Four repo-specific rules guard the invariants the reproduction's
//! trustworthiness rests on (see DESIGN.md §"Static analysis &
//! invariants"):
//!
//! * **L1 `no-panic`** — no `unwrap`/`expect`/`panic!`/`todo!`/
//!   `unimplemented!` in non-`#[cfg(test)]` library code. A self-managing
//!   system that panics mid-tuning leaves the database in a half-applied
//!   configuration.
//! * **L2 `no-entropy`** — no non-deterministic randomness or wall-clock
//!   reads outside the designated seams (`crates/common/src/rng.rs`,
//!   `crates/common/src/time.rs`). Every experiment must replay
//!   bit-for-bit from its seed.
//! * **L3 `no-float-eq`** — no direct `==`/`!=` against float literals in
//!   `crates/cost` and `crates/lp`; cost models and the simplex kernel
//!   must compare through epsilons.
//! * **L4 `no-wall-clock`** — no `std::thread::sleep` or raw
//!   `Instant::now` inside `crates/core` outside the KPI clock; the
//!   framework runs on [`LogicalTime`](smdb_common::LogicalTime).
//! * **L5 `obs-clock`** — no direct `time::now()` (the monotonic span
//!   clock) outside the obs tracing facade. Span timestamps must flow
//!   through `smdb_obs::span!` so the flight-recorder trail stays a
//!   pure function of logical time.
//! * **L6 `thread-discipline`** — no `thread::spawn`/`thread::Builder`/
//!   `thread::scope` outside the two designated pools (the storage scan
//!   pool and the runtime worker pool) and test code. Ad-hoc threads
//!   bypass the morsel scheduler's determinism argument and the
//!   bucket-barrier protocol that keeps the decision trail replayable.
//! * **L7 `map-iteration`** — no `HashMap`/`HashSet` iteration on
//!   deterministic-output paths (trail, metrics export, cost
//!   fingerprints, plan-cache snapshots). Hash iteration order varies
//!   per process, so one `.iter()` there breaks trail byte-identity.
//!   Use `BTreeMap`, sort first, or justify with a `// det:` comment.
//! * **L8 `atomic-ordering`** — every `Ordering::` memory-ordering site
//!   must carry a `// ordering:` justification comment or a `lint.toml`
//!   allowance; `SeqCst` is never grandfathered (it usually papers over
//!   an unarticulated protocol — say why or weaken it).
//! * **L10 `kernel-fallback`** — every `uncovered()` call in the storage
//!   kernel layer (the marker for a segment/predicate combination the
//!   vectorized path refuses) must carry a `// kernel-fallback: <reason>`
//!   comment in the contiguous comment block above it. New combinations
//!   cannot silently drop to the scalar path without a written reason.
//!
//! Two further passes live outside this per-file registry because they
//! need whole-workspace state: **L9 `lock-order`** ([`crate::locks`])
//! and **`crate-layering`** ([`crate::graph`]).

use std::collections::BTreeSet;

use crate::parse::{Token, TokenKind};
use crate::scan::ScannedFile;

/// How bad a finding is. `Error` findings fail the build (exit code 1 /
/// test failure) unless budgeted in `lint.toml`; `Warning`s never fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One rule violation at a concrete source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed, for context.
    pub excerpt: String,
    /// Findings that no `lint.toml` budget may absorb (e.g. `SeqCst`
    /// atomics): they fail the run even in allowlisted files.
    pub exempt_from_budget: bool,
}

/// How a rule inspects a scanned file.
enum Check {
    /// Match any of the needle tokens (with identifier-boundary checks).
    Tokens(&'static [&'static str]),
    /// Match `==` / `!=` where either operand is a float literal.
    FloatEq,
    /// Token-level: iteration over `HashMap`/`HashSet`-typed bindings.
    MapIteration,
    /// Token-level: `Ordering::<memory ordering>` sites without a
    /// justification comment.
    AtomicOrdering,
    /// Token-level: `uncovered()` kernel-fallback call sites without a
    /// `// kernel-fallback:` justification comment.
    KernelFallback,
}

/// A registered rule.
pub struct Rule {
    pub id: &'static str,
    pub severity: Severity,
    pub description: &'static str,
    /// Repo-relative path prefixes the rule applies to (empty = all).
    include: &'static [&'static str],
    /// Repo-relative path prefixes exempt from the rule.
    exclude: &'static [&'static str],
    /// Whether `#[cfg(test)]` code is out of scope.
    skip_test_code: bool,
    check: Check,
}

/// The registry, in rule-id order.
pub fn registry() -> Vec<Rule> {
    vec![
        Rule {
            id: "no-panic",
            severity: Severity::Error,
            description: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
            include: &["crates/", "src/"],
            // The bench harness is a reporting binary, not library code;
            // vendor shims mirror external crates' own APIs. Integration
            // tests are test code even without a `#[cfg(test)]` gate.
            exclude: &["crates/bench/", "crates/shard/tests/"],
            skip_test_code: true,
            check: Check::Tokens(&[".unwrap()", ".expect(", "panic!", "todo!", "unimplemented!"]),
        },
        Rule {
            id: "no-entropy",
            severity: Severity::Error,
            description:
                "no thread_rng/from_entropy/SystemTime::now outside crates/common/src/{rng,time}.rs",
            include: &[],
            exclude: &["crates/common/src/rng.rs", "crates/common/src/time.rs"],
            skip_test_code: false,
            check: Check::Tokens(&["thread_rng", "from_entropy", "SystemTime::now"]),
        },
        Rule {
            id: "no-float-eq",
            severity: Severity::Error,
            description: "no direct ==/!= float comparisons in crates/cost and crates/lp",
            include: &["crates/cost/", "crates/lp/"],
            exclude: &[],
            skip_test_code: true,
            check: Check::FloatEq,
        },
        Rule {
            id: "no-wall-clock",
            severity: Severity::Error,
            description:
                "no thread::sleep or raw Instant::now in crates/core outside the KPI clock",
            include: &["crates/core/"],
            exclude: &["crates/core/src/kpi.rs"],
            skip_test_code: true,
            check: Check::Tokens(&["thread::sleep", "Instant::now"]),
        },
        Rule {
            id: "obs-clock",
            severity: Severity::Error,
            description:
                "no direct time::now() outside the obs facade and its seam in crates/common",
            include: &["crates/", "src/"],
            exclude: &["crates/obs/", "crates/common/src/time.rs"],
            skip_test_code: true,
            check: Check::Tokens(&["time::now"]),
        },
        Rule {
            id: "thread-discipline",
            severity: Severity::Error,
            description:
                "no thread::spawn/Builder/scope outside the scan pool and the runtime worker pool",
            include: &["crates/", "src/"],
            // The designated thread seams: the morsel scheduler's
            // helper pool and the serving runtimes' scoped worker pools
            // (single-engine and sharded multi-tenant).
            exclude: &[
                "crates/storage/src/parallel.rs",
                "crates/runtime/src/runtime.rs",
                "crates/runtime/src/sharded.rs",
            ],
            skip_test_code: true,
            check: Check::Tokens(&["thread::spawn", "thread::Builder", "thread::scope"]),
        },
        Rule {
            id: "map-iteration",
            severity: Severity::Error,
            description: "no HashMap/HashSet iteration on deterministic-output paths; \
                 use BTreeMap or sort first (`// det:` to justify)",
            // The paths whose output must be a pure function of input:
            // the decision trail and metrics export, cost fingerprints,
            // plan-cache snapshots, grouped aggregation, bench reports,
            // the serving runtimes' trail emission, and the sharded
            // scatter-gather merge (bit-identity across shard counts).
            include: &[
                "crates/obs/",
                "crates/cost/",
                "crates/query/src/plan_cache.rs",
                "crates/storage/src/engine.rs",
                "crates/bench/src/report.rs",
                "crates/runtime/src/runtime.rs",
                "crates/runtime/src/sharded.rs",
                "crates/shard/",
            ],
            exclude: &[],
            skip_test_code: true,
            check: Check::MapIteration,
        },
        Rule {
            id: "atomic-ordering",
            severity: Severity::Error,
            description: "every Ordering:: site needs a `// ordering:` justification or \
                 a lint.toml allowance; SeqCst is never grandfathered",
            include: &["crates/", "src/"],
            exclude: &[],
            skip_test_code: true,
            check: Check::AtomicOrdering,
        },
        Rule {
            id: "kernel-fallback",
            severity: Severity::Error,
            description: "every uncovered() call needs a `// kernel-fallback: <reason>` \
                 comment explaining why the vectorized path refuses this shape",
            include: &["crates/storage/"],
            exclude: &[],
            skip_test_code: true,
            check: Check::KernelFallback,
        },
    ]
}

/// Methods whose call on a hash container iterates it in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// The five memory orderings of `std::sync::atomic::Ordering` (the
/// `cmp::Ordering` variants do not collide with these).
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Does `raw` carry a `// …marker…` justification comment?
fn line_justifies(raw: &str, marker: &str) -> bool {
    raw.find("//").is_some_and(|i| raw[i..].contains(marker))
}

/// A site at `line` (1-based) is justified when the same line or the one
/// above carries the marker inside a line comment.
fn justified(file: &ScannedFile, line: usize, marker: &str) -> bool {
    file.lines
        .get(line.wrapping_sub(1))
        .is_some_and(|l| line_justifies(&l.raw, marker))
        || (line >= 2
            && file
                .lines
                .get(line - 2)
                .is_some_and(|l| line_justifies(&l.raw, marker)))
}

impl Rule {
    /// Whether the rule covers `path` at all.
    pub fn applies_to(&self, path: &str) -> bool {
        (self.include.is_empty() || self.include.iter().any(|p| path.starts_with(p)))
            && !self.exclude.iter().any(|p| path.starts_with(p))
    }

    /// Runs the rule over one scanned file.
    pub fn check_file(&self, file: &ScannedFile, out: &mut Vec<Finding>) {
        if !self.applies_to(&file.path) {
            return;
        }
        match &self.check {
            Check::MapIteration => return self.check_map_iteration(file, out),
            Check::AtomicOrdering => return self.check_atomic_ordering(file, out),
            Check::KernelFallback => return self.check_kernel_fallback(file, out),
            Check::Tokens(_) | Check::FloatEq => {}
        }
        for line in &file.lines {
            if self.skip_test_code && line.in_test {
                continue;
            }
            let mut messages = Vec::new();
            match &self.check {
                Check::Tokens(needles) => {
                    for n in needles.iter().filter(|n| contains_token(&line.code, n)) {
                        messages.push(format!("`{n}` is banned here ({})", self.description));
                    }
                }
                Check::FloatEq => {
                    if let Some(op) = has_float_eq(&line.code) {
                        messages.push(format!(
                            "`{op}` against a float literal ({})",
                            self.description
                        ));
                    }
                }
                Check::MapIteration | Check::AtomicOrdering | Check::KernelFallback => {}
            }
            for message in messages {
                out.push(self.finding_at(file, line.number, message, false));
            }
        }
    }

    /// Builds a finding at a 1-based line of `file`.
    fn finding_at(
        &self,
        file: &ScannedFile,
        line: usize,
        message: String,
        exempt_from_budget: bool,
    ) -> Finding {
        let excerpt = file
            .lines
            .get(line.wrapping_sub(1))
            .map(|l| l.raw.trim().chars().take(120).collect())
            .unwrap_or_default();
        Finding {
            rule: self.id,
            severity: self.severity,
            path: file.path.clone(),
            line,
            message,
            excerpt,
            exempt_from_budget,
        }
    }

    /// L7: iteration over `HashMap`/`HashSet`-typed bindings.
    ///
    /// Pass 1 collects every identifier declared with a hash-container
    /// type (`name: HashMap<…>`, `name = HashMap::new()`, struct fields,
    /// fn params — the token before the separator names the binding).
    /// Pass 2 flags `.iter()`-family calls and `for … in` loops whose
    /// receiver is one of those names.
    fn check_map_iteration(&self, file: &ScannedFile, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = file.code_tokens().collect();
        let mut maps: BTreeSet<&str> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text(t);
            if text != "HashMap" && text != "HashSet" {
                continue;
            }
            // Walk left over `&`, `mut`, lifetimes to the separator.
            let mut j = i;
            while j > 0 {
                let prev = toks[j - 1];
                let pt = file.text(prev);
                if pt == "&" || pt == "mut" || prev.kind == TokenKind::Lifetime {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j < 2 {
                continue;
            }
            let sep = file.text(toks[j - 1]);
            // `name: HashMap<…>` or `name = HashMap::new()`; a preceding
            // `::` (path segment like `collections::HashMap`) leaves a
            // `:` at j-2 and is rejected by the ident check below.
            if sep != ":" && sep != "=" {
                continue;
            }
            let name = toks[j - 2];
            if name.kind == TokenKind::Ident {
                maps.insert(file.text(name));
            }
        }
        if maps.is_empty() {
            return;
        }

        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text(t);
            let receiver = if ITER_METHODS.contains(&text)
                && i >= 2
                && file.text(toks[i - 1]) == "."
                && toks[i - 2].kind == TokenKind::Ident
                && maps.contains(file.text(toks[i - 2]))
            {
                Some((file.text(toks[i - 2]), format!(".{text}()")))
            } else if text == "in" {
                // `for … in [&][mut] path.to.name {` — the last segment
                // of the field chain names the container; method chains
                // (`.iter()` etc.) are caught by the arm above.
                let mut j = i + 1;
                while j < toks.len() && matches!(file.text(toks[j]), "&" | "mut") {
                    j += 1;
                }
                let mut last = None;
                while let Some(seg) = toks.get(j) {
                    if seg.kind != TokenKind::Ident {
                        break;
                    }
                    last = Some(*seg);
                    if toks.get(j + 1).is_some_and(|d| file.text(d) == ".")
                        && toks.get(j + 2).is_some_and(|n| n.kind == TokenKind::Ident)
                    {
                        j += 2;
                    } else {
                        break;
                    }
                }
                match last {
                    Some(name)
                        if maps.contains(file.text(name))
                            && toks.get(j + 1).is_some_and(|n| file.text(n) == "{") =>
                    {
                        Some((file.text(name), "for … in".to_owned()))
                    }
                    _ => None,
                }
            } else {
                None
            };
            let Some((name, how)) = receiver else {
                continue;
            };
            if self.skip_test_code && t.in_test {
                continue;
            }
            if justified(file, t.line, "det:") {
                continue;
            }
            out.push(self.finding_at(
                file,
                t.line,
                format!(
                    "`{name}` is HashMap/HashSet-typed and `{how}` iterates it in hash \
                     order on a deterministic-output path ({})",
                    self.description
                ),
                false,
            ));
        }
    }

    /// L8: `Ordering::<memory ordering>` sites without a `// ordering:`
    /// justification. Non-`SeqCst` sites can be budgeted in `lint.toml`;
    /// `SeqCst` findings are exempt from budgets and always fail.
    fn check_atomic_ordering(&self, file: &ScannedFile, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = file.code_tokens().collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || !MEMORY_ORDERINGS.contains(&file.text(t)) {
                continue;
            }
            // Must be preceded by `Ordering ::` (two `:` puncts).
            if i < 3
                || file.text(toks[i - 1]) != ":"
                || file.text(toks[i - 2]) != ":"
                || toks[i - 3].kind != TokenKind::Ident
                || file.text(toks[i - 3]) != "Ordering"
            {
                continue;
            }
            if self.skip_test_code && t.in_test {
                continue;
            }
            if justified(file, t.line, "ordering:") {
                continue;
            }
            let variant = file.text(t);
            let exempt = variant == "SeqCst";
            let why = if exempt {
                "SeqCst is never grandfathered — justify with `// ordering:` or weaken"
            } else {
                "justify with `// ordering:` or budget in lint.toml"
            };
            out.push(self.finding_at(
                file,
                t.line,
                format!("`Ordering::{variant}` without justification ({why})"),
                exempt,
            ));
        }
    }

    /// L10: `uncovered()` kernel-fallback call sites without a
    /// `// kernel-fallback:` justification. Unlike L7/L8, the fallback
    /// reasons are prose that rarely fits one line, so the marker may sit
    /// anywhere in the contiguous `//` comment block directly above the
    /// call (or on the call line itself).
    fn check_kernel_fallback(&self, file: &ScannedFile, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = file.code_tokens().collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.text(t) != "uncovered" {
                continue;
            }
            // Only calls: `uncovered (` — the definition (`fn uncovered`)
            // and path/use mentions carry no fallback decision.
            if i > 0 && file.text(toks[i - 1]) == "fn" {
                continue;
            }
            if toks.get(i + 1).map(|n| file.text(n)) != Some("(") {
                continue;
            }
            if self.skip_test_code && t.in_test {
                continue;
            }
            let call_line = file
                .lines
                .get(t.line.wrapping_sub(1))
                .is_some_and(|l| line_justifies(&l.raw, "kernel-fallback:"));
            let block_above = file.lines[..t.line.saturating_sub(1)]
                .iter()
                .rev()
                .take_while(|l| l.raw.trim_start().starts_with("//"))
                .any(|l| line_justifies(&l.raw, "kernel-fallback:"));
            if call_line || block_above {
                continue;
            }
            out.push(self.finding_at(
                file,
                t.line,
                format!(
                    "`uncovered()` without a `// kernel-fallback:` comment ({})",
                    self.description
                ),
                false,
            ));
        }
    }
}

/// Substring match with an identifier-boundary check on the left edge, so
/// `should_panic` does not match `panic!` and `my_thread_rng` does not
/// match `thread_rng` (the needle's own first char decides what counts
/// as a boundary).
fn contains_token(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = haystack[from..].find(needle) {
        let at = from + rel;
        let left_ok = if needle.starts_with(|c: char| c.is_alphanumeric() || c == '_') {
            !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        } else {
            true
        };
        // Right edge: needles ending in an identifier char must not be a
        // prefix of a longer identifier (e.g. `thread_rng_seed`).
        let right_ok = if needle.ends_with(|c: char| c.is_alphanumeric() || c == '_') {
            !haystack[at + needle.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        } else {
            true
        };
        if left_ok && right_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Finds a `==` / `!=` whose left or right operand is a float literal.
/// Returns the operator for the message.
fn has_float_eq(code: &str) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i + 1 < chars.len() {
        let op = match (chars[i], chars[i + 1]) {
            ('=', '=') => {
                // Reject `===`-like runs and `<=`, `>=`, `=>` neighbours.
                if i > 0 && matches!(chars[i - 1], '=' | '<' | '>' | '!') {
                    None
                } else if chars.get(i + 2) == Some(&'=') {
                    None
                } else {
                    Some("==")
                }
            }
            ('!', '=') if chars.get(i + 2) != Some(&'=') => Some("!="),
            _ => None,
        };
        if let Some(op) = op {
            let left = token_left(&chars, i);
            let right = token_right(&chars, i + 2);
            if is_float_literal(&left) || is_float_literal(&right) {
                return Some(op);
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    None
}

fn token_left(chars: &[char], op_start: usize) -> String {
    let mut end = op_start;
    while end > 0 && chars[end - 1] == ' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_operand_char(chars, start - 1) {
        start -= 1;
    }
    chars[start..end].iter().collect()
}

fn token_right(chars: &[char], after_op: usize) -> String {
    let mut start = after_op;
    while start < chars.len() && chars[start] == ' ' {
        start += 1;
    }
    // A leading sign belongs to the literal.
    let mut end = start;
    if end < chars.len() && chars[end] == '-' {
        end += 1;
    }
    while end < chars.len() && is_operand_char(chars, end) {
        end += 1;
    }
    chars[start..end].iter().collect()
}

/// Characters that extend a comparison operand: identifier chars, `.`,
/// and an exponent sign directly after `e`/`E` (so `1e-6` stays whole).
fn is_operand_char(chars: &[char], i: usize) -> bool {
    let c = chars[i];
    if c.is_alphanumeric() || matches!(c, '.' | '_') {
        return true;
    }
    matches!(c, '-' | '+') && i > 0 && matches!(chars[i - 1], 'e' | 'E')
}

/// `0.0`, `1.5e-3`, `2f64`, `3.0_f32`, `-0.25`, `1e9` — but not `x.len`,
/// `0`, `0xFE`, or `f64::EPSILON` (paths are broken by `::` before the
/// operand capture, leaving `EPSILON`, which starts with no digit).
fn is_float_literal(token: &str) -> bool {
    let t = token.strip_prefix('-').unwrap_or(token);
    if t.is_empty()
        || !t.starts_with(|c: char| c.is_ascii_digit())
        || t.starts_with("0x")
        || t.starts_with("0b")
        || t.starts_with("0o")
    {
        return false;
    }
    t.contains('.')
        || t.ends_with("f64")
        || t.ends_with("f32")
        || t.chars().any(|c| c == 'e' || c == 'E')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn findings_for(rule_id: &str, path: &str, src: &str) -> Vec<Finding> {
        let file = scan_source(path, src);
        let mut out = Vec::new();
        for rule in registry() {
            if rule.id == rule_id {
                rule.check_file(&file, &mut out);
            }
        }
        out
    }

    #[test]
    fn no_panic_flags_unwrap_in_lib_code() {
        let f = findings_for(
            "no-panic",
            "crates/core/src/driver.rs",
            "fn f() { x.unwrap(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn no_panic_skips_strings_comments_tests() {
        let src = "\
// x.unwrap() in a comment
fn f() { let s = \"x.unwrap()\"; }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); y.expect(\"boom\"); panic!(\"ok in tests\"); }
}
";
        let f = findings_for("no-panic", "crates/core/src/driver.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_panic_boundary_does_not_match_should_panic() {
        let f = findings_for(
            "no-panic",
            "crates/core/src/driver.rs",
            "fn f() { let unwrap_or_x = a.unwrap_or(3); my_panic!(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn no_panic_out_of_scope_for_bench() {
        let f = findings_for(
            "no-panic",
            "crates/bench/src/main.rs",
            "fn f() { x.unwrap(); }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn no_entropy_flags_everywhere_even_tests() {
        let src = "#[cfg(test)]\nmod t { fn f() { let r = rand::thread_rng(); } }\n";
        let f = findings_for("no-entropy", "crates/workload/src/data.rs", src);
        assert_eq!(f.len(), 1);
        // …but not in the designated seam.
        let f = findings_for("no-entropy", "crates/common/src/rng.rs", src);
        assert!(f.is_empty());
    }

    #[test]
    fn float_eq_flags_only_float_literals() {
        let flagged = [
            "if x == 0.0 { }",
            "if 1.5 != y { }",
            "assert!(a.cost == 2f64);",
            "while z == 1e-6_f64 { }",
        ];
        for src in flagged {
            let f = findings_for(
                "no-float-eq",
                "crates/lp/src/simplex.rs",
                &format!("fn f() {{ {src} }}\n"),
            );
            assert_eq!(f.len(), 1, "{src}");
        }
        let clean = [
            "if x == y { }",
            "if n == 0 { }",
            "if (a - b).abs() < 1e-9 { }",
            "let c = x <= 0.5;",
            "matches!(op, Op::Eq)",
        ];
        for src in clean {
            let f = findings_for(
                "no-float-eq",
                "crates/lp/src/simplex.rs",
                &format!("fn f() {{ {src} }}\n"),
            );
            assert!(f.is_empty(), "{src}: {f:?}");
        }
    }

    #[test]
    fn float_eq_scope_is_cost_and_lp_only() {
        let f = findings_for(
            "no-float-eq",
            "crates/storage/src/engine.rs",
            "fn f() { x == 0.0; }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn obs_clock_scope() {
        let src = "fn f() { let t = smdb_common::time::now(); }\n";
        // Flagged anywhere in the framework…
        assert_eq!(
            findings_for("obs-clock", "crates/core/src/driver.rs", src).len(),
            1
        );
        // …but not in the facade itself or the clock's seam.
        assert!(findings_for("obs-clock", "crates/obs/src/trace.rs", src).is_empty());
        assert!(findings_for("obs-clock", "crates/common/src/time.rs", src).is_empty());
        // `SystemTime::now` is a different needle (and no-entropy's job).
        let f = findings_for(
            "obs-clock",
            "crates/core/src/driver.rs",
            "fn f() { let t = SystemTime::now(); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_discipline_scope() {
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        let scoped = "fn f() { crossbeam::thread::scope(|s| {}); }\n";
        // Flagged in ordinary library code, whichever flavour…
        assert_eq!(
            findings_for("thread-discipline", "crates/core/src/driver.rs", spawn).len(),
            1
        );
        assert_eq!(
            findings_for("thread-discipline", "crates/core/src/assessor.rs", scoped).len(),
            1
        );
        // …but not in the designated pools or in test code.
        assert!(
            findings_for("thread-discipline", "crates/storage/src/parallel.rs", spawn).is_empty()
        );
        assert!(
            findings_for("thread-discipline", "crates/runtime/src/runtime.rs", scoped).is_empty()
        );
        let in_test = "#[cfg(test)]\nmod t { fn f() { std::thread::spawn(|| {}); } }\n";
        assert!(findings_for("thread-discipline", "crates/core/src/driver.rs", in_test).is_empty());
    }

    #[test]
    fn map_iteration_flags_hash_containers_only() {
        let src = "\
struct S { m: HashMap<u32, u32>, b: BTreeMap<u32, u32> }
fn f(s: &S) {
    for (k, v) in &s.m { use_it(k, v); }
    let total: u32 = s.m.values().sum();
    for (k, v) in &s.b { use_it(k, v); }
    let sorted: Vec<_> = s.b.iter().collect();
}
";
        let f = findings_for("map-iteration", "crates/obs/src/metrics.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.message.contains('m')));
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn map_iteration_respects_scope_justification_and_tests() {
        let src = "\
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    // det: order-insensitive sum
    let total: u32 = m.values().sum();
}
#[cfg(test)]
mod t {
    fn g() { let m = HashMap::new(); for x in &m {} }
}
";
        // Justified + test-gated sites stay quiet…
        assert!(findings_for("map-iteration", "crates/obs/src/metrics.rs", src).is_empty());
        // …and out-of-scope paths are not policed at all.
        let hot = "fn f() { let m = HashMap::new(); for x in &m {} }\n";
        assert!(findings_for("map-iteration", "crates/core/src/driver.rs", hot).is_empty());
        assert_eq!(
            findings_for("map-iteration", "crates/cost/src/cache.rs", hot).len(),
            1
        );
    }

    #[test]
    fn map_iteration_lookups_do_not_fire() {
        let src = "\
fn f() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    let v = m.get(&1);
    let n = m.len();
}
";
        let f = findings_for("map-iteration", "crates/obs/src/metrics.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn atomic_ordering_needs_justification() {
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::Relaxed); }\n";
        let f = findings_for("atomic-ordering", "crates/core/src/driver.rs", src);
        assert_eq!(f.len(), 1);
        assert!(!f[0].exempt_from_budget);

        let justified = "\
fn f(a: &AtomicU64) {
    // ordering: counter only read for reports, no ordering needed
    a.store(1, Ordering::Relaxed);
}
";
        assert!(findings_for("atomic-ordering", "crates/core/src/driver.rs", justified).is_empty());
    }

    #[test]
    fn atomic_ordering_seqcst_is_budget_exempt() {
        let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n";
        let f = findings_for("atomic-ordering", "crates/core/src/driver.rs", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].exempt_from_budget);
    }

    #[test]
    fn atomic_ordering_ignores_cmp_ordering() {
        let src = "fn f(a: u32, b: u32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
        let f = findings_for("atomic-ordering", "crates/core/src/driver.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn kernel_fallback_needs_justification() {
        let src = "fn scan() -> bool { if odd { return uncovered(); } true }\n";
        let f = findings_for("kernel-fallback", "crates/storage/src/kernels.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "kernel-fallback");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn kernel_fallback_accepts_marker_in_comment_block_above() {
        // The marker may sit anywhere in the contiguous comment block
        // above the call, not just the adjacent line.
        let src = "\
fn scan() -> bool {
    if odd {
        // kernel-fallback: Text segments have no fixed-width code
        // domain, so the batch comparator cannot be formed; the
        // scalar path handles them.
        return uncovered();
    }
    true
}
";
        let f = findings_for("kernel-fallback", "crates/storage/src/kernels.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn kernel_fallback_marker_must_be_contiguous() {
        // A blank line breaks the comment block: the marker no longer
        // covers the call.
        let src = "\
fn scan() -> bool {
    // kernel-fallback: stale reason, detached from the call

    return uncovered();
}
";
        let f = findings_for("kernel-fallback", "crates/storage/src/kernels.rs", src);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn kernel_fallback_skips_definition_tests_and_other_crates() {
        let def = "fn uncovered() -> bool { false }\n";
        assert!(findings_for("kernel-fallback", "crates/storage/src/kernels.rs", def).is_empty());

        let in_test = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(!uncovered()); }
}
";
        assert!(
            findings_for("kernel-fallback", "crates/storage/src/kernels.rs", in_test).is_empty()
        );

        let elsewhere = "fn f() -> bool { uncovered() }\n";
        assert!(
            findings_for("kernel-fallback", "crates/query/src/database.rs", elsewhere).is_empty()
        );
    }

    #[test]
    fn wall_clock_scope() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); }\n";
        assert_eq!(
            findings_for("no-wall-clock", "crates/core/src/driver.rs", src).len(),
            2
        );
        assert!(findings_for("no-wall-clock", "crates/core/src/kpi.rs", src).is_empty());
        assert!(findings_for("no-wall-clock", "crates/query/src/database.rs", src).is_empty());
    }
}
