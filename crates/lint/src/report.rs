//! Aggregation of raw findings into a pass/fail report.
//!
//! The allowlist in `lint.toml` turns the linter into a *ratchet*: each
//! `(rule, file)` pair may carry a budget of known findings. A file over
//! its budget fails the run with every finding listed; a file under its
//! budget passes but emits a tightening hint, so the committed budget can
//! only ever go down. A budget entry whose file has no findings at all is
//! reported as stale.

use std::collections::BTreeMap;

use smdb_common::json::Json;

use crate::config::LintConfig;
use crate::rules::{Finding, Severity};

/// One `(rule, file)` group covered by an allowlist budget.
#[derive(Debug, Clone)]
pub struct Allowance {
    pub rule: String,
    pub path: String,
    /// Findings actually present.
    pub count: usize,
    /// Budget granted in `lint.toml`.
    pub budget: usize,
}

impl Allowance {
    /// Over-budget allowances fail the run.
    pub fn exceeded(&self) -> bool {
        self.count > self.budget
    }

    /// Under-used allowances should be ratcheted down.
    pub fn slack(&self) -> usize {
        self.budget.saturating_sub(self.count)
    }
}

/// The outcome of one lint pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by any budget — these fail the run.
    pub violations: Vec<Finding>,
    /// Budgeted `(rule, file)` groups, in deterministic order.
    pub allowances: Vec<Allowance>,
}

impl LintReport {
    /// Builds the report by splitting raw findings against the config.
    pub fn assemble(files_scanned: usize, findings: Vec<Finding>, config: &LintConfig) -> Self {
        // Budget-exempt findings (SeqCst atomics) bypass the allowlist
        // entirely: they are violations outright and do not count toward
        // any group's budget.
        let (exempt, findings): (Vec<Finding>, Vec<Finding>) =
            findings.into_iter().partition(|f| f.exempt_from_budget);

        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for f in &findings {
            *counts
                .entry((f.rule.to_owned(), f.path.clone()))
                .or_default() += 1;
        }

        let mut allowances = Vec::new();
        for (rule, files) in &config.allow {
            for (path, &budget) in files {
                let count = counts
                    .get(&(rule.clone(), path.clone()))
                    .copied()
                    .unwrap_or(0);
                allowances.push(Allowance {
                    rule: rule.clone(),
                    path: path.clone(),
                    count,
                    budget,
                });
            }
        }

        // A finding escapes the violation list only when its group sits
        // within budget; over-budget groups surface every finding so the
        // regression is visible in full.
        let mut violations: Vec<Finding> = exempt;
        violations.extend(findings.into_iter().filter(|f| {
            let count = counts
                .get(&(f.rule.to_owned(), f.path.clone()))
                .copied()
                .unwrap_or(0);
            count > config.budget(f.rule, &f.path)
        }));
        violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

        LintReport {
            files_scanned,
            violations,
            allowances,
        }
    }

    /// Whether the run should fail CI.
    pub fn failed(&self) -> bool {
        self.violations
            .iter()
            .any(|f| f.severity == Severity::Error)
    }

    /// Budget entries pointing at clean or under-budget files.
    pub fn tightening_hints(&self) -> Vec<&Allowance> {
        self.allowances
            .iter()
            .filter(|a| !a.exceeded() && a.slack() > 0)
            .collect()
    }

    /// Process exit code: 0 clean, 1 violations.
    pub fn exit_code(&self) -> i32 {
        if self.failed() {
            1
        } else {
            0
        }
    }

    /// `path:line: severity [rule] message` lines plus a summary block.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.violations {
            out.push_str(&format!(
                "{}:{}: {} [{}] {}\n    {}\n",
                f.path,
                f.line,
                f.severity.label(),
                f.rule,
                f.message,
                f.excerpt
            ));
        }
        for a in &self.allowances {
            if a.exceeded() {
                out.push_str(&format!(
                    "{}: error [{}] budget exceeded: {} findings over allowance of {}\n",
                    a.path, a.rule, a.count, a.budget
                ));
            }
        }
        for a in self.tightening_hints() {
            out.push_str(&format!(
                "{}: note [{}] allowance {} exceeds actual findings {} — tighten lint.toml\n",
                a.path, a.rule, a.budget, a.count
            ));
        }
        out.push_str(&format!(
            "smdb-lint: {} file(s) scanned, {} violation(s), {} budgeted group(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.allowances.len()
        ));
        out
    }

    /// Machine-readable report for CI tooling.
    pub fn to_json(&self) -> Json {
        let violations: Json = self
            .violations
            .iter()
            .map(|f| {
                Json::obj([
                    ("rule", Json::from(f.rule)),
                    ("severity", Json::from(f.severity.label())),
                    ("path", Json::from(f.path.as_str())),
                    ("line", Json::from(f.line)),
                    ("message", Json::from(f.message.as_str())),
                    ("excerpt", Json::from(f.excerpt.as_str())),
                ])
            })
            .collect();
        let allowances: Json = self
            .allowances
            .iter()
            .map(|a| {
                Json::obj([
                    ("rule", Json::from(a.rule.as_str())),
                    ("path", Json::from(a.path.as_str())),
                    ("count", Json::from(a.count)),
                    ("budget", Json::from(a.budget)),
                    ("exceeded", Json::from(a.exceeded())),
                ])
            })
            .collect();
        Json::obj([
            ("files_scanned", Json::from(self.files_scanned)),
            ("failed", Json::from(self.failed())),
            ("violations", violations),
            ("allowances", allowances),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config;
    use crate::rules::Severity;

    fn finding(rule: &'static str, path: &str, line: usize) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.to_owned(),
            line,
            message: "m".to_owned(),
            excerpt: "e".to_owned(),
            exempt_from_budget: false,
        }
    }

    #[test]
    fn exempt_findings_ignore_budgets() {
        let cfg = config::parse("[allow.atomic-ordering]\n\"crates/a.rs\" = 5\n").expect("cfg");
        let mut f = finding("atomic-ordering", "crates/a.rs", 1);
        f.exempt_from_budget = true;
        let r = LintReport::assemble(1, vec![f], &cfg);
        assert!(r.failed(), "SeqCst-style findings must not be absorbed");
        assert_eq!(r.violations.len(), 1);
        // …and they do not eat into the budget of the same group.
        let hints = r.tightening_hints();
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].slack(), 5);
    }

    #[test]
    fn unbudgeted_findings_fail() {
        let r = LintReport::assemble(
            3,
            vec![finding("no-panic", "crates/a.rs", 1)],
            &LintConfig::default(),
        );
        assert!(r.failed());
        assert_eq!(r.exit_code(), 1);
        assert_eq!(r.violations.len(), 1);
    }

    #[test]
    fn budget_absorbs_findings_exactly() {
        let cfg = config::parse("[allow.no-panic]\n\"crates/a.rs\" = 2\n").expect("cfg");
        let within = LintReport::assemble(
            1,
            vec![
                finding("no-panic", "crates/a.rs", 1),
                finding("no-panic", "crates/a.rs", 2),
            ],
            &cfg,
        );
        assert!(!within.failed(), "{:?}", within.violations);
        assert!(within.tightening_hints().is_empty());

        let over = LintReport::assemble(
            1,
            vec![
                finding("no-panic", "crates/a.rs", 1),
                finding("no-panic", "crates/a.rs", 2),
                finding("no-panic", "crates/a.rs", 3),
            ],
            &cfg,
        );
        assert!(over.failed());
        // Over-budget groups surface every finding.
        assert_eq!(over.violations.len(), 3);
    }

    #[test]
    fn budget_is_per_rule_and_per_file() {
        let cfg = config::parse("[allow.no-panic]\n\"crates/a.rs\" = 5\n").expect("cfg");
        let r = LintReport::assemble(
            1,
            vec![
                finding("no-entropy", "crates/a.rs", 1), // different rule
                finding("no-panic", "crates/b.rs", 1),   // different file
            ],
            &cfg,
        );
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn slack_produces_tightening_hint_not_failure() {
        let cfg = config::parse("[allow.no-panic]\n\"crates/a.rs\" = 4\n").expect("cfg");
        let r = LintReport::assemble(1, vec![finding("no-panic", "crates/a.rs", 1)], &cfg);
        assert!(!r.failed());
        let hints = r.tightening_hints();
        assert_eq!(hints.len(), 1);
        assert_eq!(hints[0].slack(), 3);
        assert!(r.render_human().contains("tighten lint.toml"));
    }

    #[test]
    fn json_shape() {
        let cfg = config::parse("[allow.no-panic]\n\"crates/a.rs\" = 1\n").expect("cfg");
        let r = LintReport::assemble(2, vec![finding("no-panic", "crates/b.rs", 7)], &cfg);
        let j = r.to_json();
        assert_eq!(j.get("files_scanned").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("failed"), Some(&Json::Bool(true)));
        let v = j
            .get("violations")
            .and_then(Json::as_array)
            .map(<[Json]>::len);
        assert_eq!(v, Some(1));
        let a0 = j
            .get("allowances")
            .and_then(|a| a.at(0))
            .and_then(|a| a.get("budget"));
        assert_eq!(a0.and_then(Json::as_u64), Some(1));
        // Round-trips through the parser.
        let text = j.to_string_pretty();
        let back = smdb_common::json::parse(&text).expect("round trip");
        assert_eq!(back.get("failed"), Some(&Json::Bool(true)));
    }
}
