//! The organizer (Section II-E).
//!
//! "The organizer is responsible for orchestrating the whole
//! self-managing process. It identifies convenient points in time for
//! tuning by constantly monitoring runtime KPIs and taking workload
//! forecasts into account. The organizer also decides whether changes
//! observed in workload forecasts are significant enough to justify
//! possibly expensive tunings."

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;
use smdb_common::{Cost, LogicalTime};

use crate::constraints::ConstraintSet;
use crate::kpi::KpiSnapshot;

/// Why the organizer triggered a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningTrigger {
    /// The forecast workload's estimated cost under the current
    /// configuration deviates from the recently observed cost by more
    /// than the threshold: the workload changed.
    ForecastShift { ratio: f64 },
    /// The SLA on mean response time is being violated.
    SlaViolation { mean_response: Cost },
    /// The SLA on tail (p95) response time is being violated.
    P95Violation { p95_response: Cost },
    /// Engine memory crossed the configured ceiling.
    MemoryPressure { bytes: usize },
    /// The caller forced a run.
    Manual,
}

impl TuningTrigger {
    /// Stable short name, used as a metric label (`organizer.trigger.*`)
    /// and in flight-recorder events.
    pub fn label(&self) -> &'static str {
        match self {
            TuningTrigger::ForecastShift { .. } => "forecast_shift",
            TuningTrigger::SlaViolation { .. } => "sla_violation",
            TuningTrigger::P95Violation { .. } => "p95_violation",
            TuningTrigger::MemoryPressure { .. } => "memory_pressure",
            TuningTrigger::Manual => "manual",
        }
    }
}

/// Organizer thresholds.
#[derive(Debug, Clone)]
pub struct OrganizerConfig {
    /// Relative cost-delta above which a forecast shift justifies tuning
    /// (`|forecast − observed| / observed`).
    pub cost_delta_threshold: f64,
    /// Minimum buckets between tuning runs.
    pub min_interval: u64,
    /// Whether expensive tunings must wait for low utilization.
    pub require_low_utilization: bool,
}

impl Default for OrganizerConfig {
    fn default() -> Self {
        OrganizerConfig {
            cost_delta_threshold: 0.25,
            min_interval: 2,
            require_low_utilization: false,
        }
    }
}

/// The organizer component.
#[derive(Debug)]
pub struct Organizer {
    pub config: OrganizerConfig,
    last_tuning: Mutex<Option<LogicalTime>>,
    /// Degraded-mode switch: while set, no tuning triggers fire. The
    /// runtime pauses tuning after a failed reconfiguration so serving
    /// continues while the system settles.
    paused: AtomicBool,
}

impl Organizer {
    /// Creates an organizer.
    pub fn new(config: OrganizerConfig) -> Self {
        Organizer {
            config,
            last_tuning: Mutex::new(None),
            paused: AtomicBool::new(false),
        }
    }

    /// When the last tuning ran.
    pub fn last_tuning(&self) -> Option<LogicalTime> {
        *self.last_tuning.lock()
    }

    /// Pauses all tuning triggers (degraded mode).
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Resumes tuning after a pause.
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Whether tuning is currently paused.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::Relaxed)
    }

    /// Records that a tuning ran at `now`.
    pub fn record_tuning(&self, now: LogicalTime) {
        *self.last_tuning.lock() = Some(now);
    }

    /// Decides whether to tune now.
    ///
    /// * `observed_cost` — recently observed per-horizon workload cost,
    /// * `forecast_cost_current_config` — estimated cost of the forecast
    ///   workload *under the current configuration* (the paper's
    ///   trigger signal).
    pub fn should_tune(
        &self,
        now: LogicalTime,
        observed_cost: Cost,
        forecast_cost_current_config: Cost,
        kpis: &KpiSnapshot,
        constraints: &ConstraintSet,
    ) -> Option<TuningTrigger> {
        let trigger = self.evaluate(
            now,
            observed_cost,
            forecast_cost_current_config,
            kpis,
            constraints,
        );
        smdb_obs::metrics::counter("organizer.checks").inc();
        if let Some(t) = &trigger {
            smdb_obs::metrics::counter(&format!("organizer.trigger.{}", t.label())).inc();
        }
        trigger
    }

    fn evaluate(
        &self,
        now: LogicalTime,
        observed_cost: Cost,
        forecast_cost_current_config: Cost,
        kpis: &KpiSnapshot,
        constraints: &ConstraintSet,
    ) -> Option<TuningTrigger> {
        // Degraded mode: a failed reconfiguration paused tuning.
        if self.is_paused() {
            return None;
        }
        // Rate limit.
        if let Some(last) = self.last_tuning() {
            if now.since(last) < self.config.min_interval {
                return None;
            }
        }
        // Utilization gate for the *decision* (the executor has its own).
        if self.config.require_low_utilization && !kpis.is_low_utilization() {
            return None;
        }
        // SLA violations always justify tuning.
        let mean = kpis.mean_response;
        if constraints.violates_sla(mean) {
            return Some(TuningTrigger::SlaViolation {
                mean_response: mean,
            });
        }
        let p95 = kpis.p95_response;
        if constraints.violates_p95(p95) {
            return Some(TuningTrigger::P95Violation { p95_response: p95 });
        }
        if let Some(bytes) = kpis.memory {
            if constraints.violates_memory(bytes) {
                return Some(TuningTrigger::MemoryPressure { bytes });
            }
        }
        // Forecast shift.
        if observed_cost.ms() > 0.0 {
            let ratio =
                (forecast_cost_current_config.ms() - observed_cost.ms()).abs() / observed_cost.ms();
            if ratio > self.config.cost_delta_threshold {
                return Some(TuningTrigger::ForecastShift { ratio });
            }
        } else if forecast_cost_current_config.ms() > 0.0 {
            // Nothing observed yet but work is forecast: bootstrap.
            return Some(TuningTrigger::ForecastShift {
                ratio: f64::INFINITY,
            });
        }
        None
    }
}

impl Default for Organizer {
    fn default() -> Self {
        Organizer::new(OrganizerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiCollector;

    fn organizer() -> Organizer {
        Organizer::default()
    }

    #[test]
    fn forecast_shift_triggers() {
        let o = organizer();
        let k = KpiCollector::default();
        let t = o.should_tune(
            LogicalTime(10),
            Cost(100.0),
            Cost(140.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(matches!(t, Some(TuningTrigger::ForecastShift { .. })));
        // Small shift: no trigger.
        let t = o.should_tune(
            LogicalTime(10),
            Cost(100.0),
            Cost(110.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_none());
    }

    #[test]
    fn sla_violation_triggers() {
        let o = organizer();
        let k = KpiCollector::default();
        for _ in 0..10 {
            k.record_query(Cost(50.0));
        }
        let constraints = ConstraintSet {
            sla_mean_response: Some(Cost(10.0)),
            ..ConstraintSet::default()
        };
        let t = o.should_tune(
            LogicalTime(5),
            Cost(100.0),
            Cost(100.0),
            &k.snapshot(),
            &constraints,
        );
        assert!(matches!(t, Some(TuningTrigger::SlaViolation { .. })));
    }

    #[test]
    fn p95_and_memory_triggers() {
        let o = organizer();
        let k = KpiCollector::default();
        // 100 fast queries, 2 slow outliers: mean stays low, p95 spikes.
        for _ in 0..100 {
            k.record_query(Cost(1.0));
        }
        for _ in 0..8 {
            k.record_query(Cost(100.0));
        }
        let constraints = ConstraintSet {
            sla_mean_response: Some(Cost(50.0)),
            sla_p95_response: Some(Cost(50.0)),
            ..ConstraintSet::default()
        };
        let t = o.should_tune(
            LogicalTime(5),
            Cost(100.0),
            Cost(100.0),
            &k.snapshot(),
            &constraints,
        );
        assert!(
            matches!(t, Some(TuningTrigger::P95Violation { .. })),
            "{t:?}"
        );

        let constraints = ConstraintSet {
            memory_ceiling_bytes: Some(1_000),
            ..ConstraintSet::default()
        };
        k.record_memory(2_000);
        let t = o.should_tune(
            LogicalTime(5),
            Cost(100.0),
            Cost(100.0),
            &k.snapshot(),
            &constraints,
        );
        assert!(
            matches!(t, Some(TuningTrigger::MemoryPressure { bytes: 2_000 })),
            "{t:?}"
        );
    }

    #[test]
    fn pause_suppresses_all_triggers() {
        let o = organizer();
        let k = KpiCollector::default();
        o.pause();
        assert!(o.is_paused());
        let t = o.should_tune(
            LogicalTime(10),
            Cost(100.0),
            Cost(900.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_none(), "paused organizer never fires");
        o.resume();
        let t = o.should_tune(
            LogicalTime(10),
            Cost(100.0),
            Cost(900.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_some());
    }

    #[test]
    fn rate_limit_enforced() {
        let o = organizer();
        let k = KpiCollector::default();
        o.record_tuning(LogicalTime(10));
        let t = o.should_tune(
            LogicalTime(11),
            Cost(100.0),
            Cost(500.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_none(), "within min_interval");
        let t = o.should_tune(
            LogicalTime(12),
            Cost(100.0),
            Cost(500.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_some());
    }

    #[test]
    fn utilization_gate() {
        let config = OrganizerConfig {
            require_low_utilization: true,
            ..OrganizerConfig::default()
        };
        let o = Organizer::new(config);
        let k = KpiCollector::new(Cost(100.0), 0.3);
        k.end_bucket(Cost(90.0)); // busy
        let t = o.should_tune(
            LogicalTime(5),
            Cost(100.0),
            Cost(500.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_none());
        k.end_bucket(Cost(5.0)); // idle
        let t = o.should_tune(
            LogicalTime(5),
            Cost(100.0),
            Cost(500.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(t.is_some());
    }

    #[test]
    fn bootstrap_with_no_observations() {
        let o = organizer();
        let k = KpiCollector::default();
        let t = o.should_tune(
            LogicalTime(0),
            Cost::ZERO,
            Cost(50.0),
            &k.snapshot(),
            &ConstraintSet::none(),
        );
        assert!(matches!(t, Some(TuningTrigger::ForecastShift { .. })));
    }
}
