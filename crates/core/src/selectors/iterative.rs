//! Interaction-aware iterative greedy selection.
//!
//! "Selectors can also request re-assessments of certain candidates from
//! the assessors. This is useful to reflect changed circumstances or
//! incorporate interaction between candidates." (Section II-D(c))
//!
//! Plain one-shot selectors price every candidate against the *same*
//! base configuration, double-counting overlapping benefits (two indexes
//! that would each accelerate the same query are both credited with the
//! full speedup). The iterative greedy picks one candidate, asks the
//! assessor to re-assess the remainder against the updated configuration,
//! and repeats until nothing improves — trading extra assessment rounds
//! for interaction-correct benefits.

use std::collections::HashSet;

use smdb_common::Result;
use smdb_forecast::ForecastSet;
use smdb_storage::{ConfigInstance, StorageEngine};

use crate::assessor::Assessor;
use crate::candidate::Candidate;

/// Interaction-aware greedy selection via assessor round-trips.
#[derive(Debug, Clone)]
pub struct IterativeGreedy {
    /// Safety cap on rounds (each round selects one candidate).
    pub max_rounds: usize,
}

impl Default for IterativeGreedy {
    fn default() -> Self {
        IterativeGreedy { max_rounds: 256 }
    }
}

impl IterativeGreedy {
    /// Selects candidates one at a time, re-assessing the remainder
    /// against the configuration built so far. Respects the memory
    /// budget (positive permanent bytes accumulate) and exclusivity
    /// groups. Returns chosen indices in pick order.
    pub fn select(
        &self,
        engine: &StorageEngine,
        assessor: &dyn Assessor,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
        memory_budget_bytes: Option<i64>,
    ) -> Result<Vec<usize>> {
        let mut chosen: Vec<usize> = Vec::new();
        let mut working = base.clone();
        let mut remaining: Vec<usize> = (0..candidates.len()).collect();
        let mut used_groups: HashSet<u64> = HashSet::new();
        let mut used_bytes = 0.0f64;
        let budget = memory_budget_bytes.map(|b| b as f64);

        for _round in 0..self.max_rounds {
            if remaining.is_empty() {
                break;
            }
            // Re-assess the survivors against the *current* configuration.
            let assessments =
                assessor.reassess(engine, &working, scenarios, candidates, &remaining)?;
            // Best feasible candidate by desirability-per-byte.
            let mut best: Option<(usize, f64)> = None; // (pos in remaining, score)
            for (pos, a) in assessments.iter().enumerate() {
                let d = a.expected_desirability();
                if d <= 0.0 {
                    continue;
                }
                let i = remaining[pos];
                if let Some(g) = candidates[i].exclusive_group {
                    if used_groups.contains(&g) {
                        continue;
                    }
                }
                let w = a.budget_weight();
                if let Some(b) = budget {
                    if used_bytes + w > b + 1e-6 {
                        continue;
                    }
                }
                let ratio = if w > 0.0 { d / w } else { f64::INFINITY };
                if best.is_none_or(|(_, s)| ratio > s) {
                    best = Some((pos, ratio));
                }
            }
            let Some((pos, _)) = best else {
                break; // nothing improves any more
            };
            let pick = remaining.swap_remove(pos);
            let assessment = assessments
                .iter()
                .find(|a| a.candidate == pick)
                .expect("assessment for picked candidate exists");
            if let Some(g) = candidates[pick].exclusive_group {
                used_groups.insert(g);
            }
            used_bytes += assessment.budget_weight();
            working.apply(&candidates[pick].action);
            chosen.push(pick);
        }
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessor::WhatIfAssessor;
    use crate::enumerator::{Enumerator, IndexEnumerator};
    use crate::selectors::{greedy_by_score, Selector};
    use smdb_common::{ColumnId, TableId};
    use smdb_cost::{CalibratedCostModel, WhatIf};
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::{Query, Workload};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};
    use std::sync::Arc;

    /// Table with two columns; queries filter on BOTH columns, so an
    /// index on either column alone captures (almost) the whole benefit —
    /// the classic overlapping-benefit interaction.
    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..4000).map(|i| i % 100).collect()),
                ColumnValues::Int((0..4000).map(|i| (i * 7) % 100).collect()),
            ],
            1000,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(t: TableId) -> ForecastSet {
        // Every query constrains both columns with equal selectivity.
        let mut w = Workload::default();
        for v in 0..10 {
            w.push(
                Query::new(
                    t,
                    "t",
                    vec![
                        ScanPredicate::eq(ColumnId(0), v),
                        ScanPredicate::eq(ColumnId(1), v),
                    ],
                    None,
                    "two_col",
                ),
                10.0,
            );
        }
        ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload: w,
            }],
        }
    }

    fn trained(engine: &StorageEngine, t: TableId) -> WhatIf {
        let model = Arc::new(CalibratedCostModel::new());
        // Train on plain and single-index variants.
        let mut variant = engine.clone();
        variant
            .apply_action(&smdb_storage::ConfigAction::CreateIndex {
                target: smdb_common::ChunkColumnRef::new(t.0, 0, 0),
                kind: smdb_storage::IndexKind::Hash,
            })
            .unwrap();
        for eng in [engine, &variant] {
            let config = eng.current_config();
            for v in 0..60 {
                let q = Query::new(
                    t,
                    "t",
                    vec![
                        ScanPredicate::eq(ColumnId(0), v % 100),
                        ScanPredicate::eq(ColumnId(1), (v * 3) % 100),
                    ],
                    None,
                    "train",
                );
                let out = eng.scan(t, q.predicates(), None).unwrap();
                model.observe(eng, &q, &config, out.sim_cost).unwrap();
            }
        }
        model.refit().unwrap();
        WhatIf::new(model)
    }

    #[test]
    fn iterative_avoids_redundant_overlapping_indexes() {
        let (engine, t) = setup();
        let what_if = trained(&engine, t);
        let assessor = WhatIfAssessor::new(what_if, 0.9);
        let base = ConfigInstance::default();
        let scenarios = forecast(t);
        let mut candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &scenarios)
            .unwrap();
        // Restrict to single-attribute candidates: this test isolates the
        // overlap interaction (either column alone suffices); composite
        // upgrades are covered separately.
        candidates.retain(|c| {
            !matches!(
                c.action,
                smdb_storage::ConfigAction::CreateIndex {
                    kind: smdb_storage::IndexKind::CompositeHash { .. },
                    ..
                }
            )
        });
        assert!(candidates.len() >= 8, "both columns × 4 chunks");

        // One-shot greedy double-counts: it takes indexes on BOTH columns
        // of each chunk, although the second adds almost nothing.
        let assessments = assessor
            .assess(&engine, &base, &scenarios, &candidates)
            .unwrap();
        let input = crate::candidate::SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        let one_shot = crate::selectors::GreedySelector.select(&input).unwrap();

        let iterative = IterativeGreedy::default()
            .select(&engine, &assessor, &base, &scenarios, &candidates, None)
            .unwrap();

        assert!(
            iterative.len() < one_shot.len(),
            "iterative {} vs one-shot {}",
            iterative.len(),
            one_shot.len()
        );
        // The iterative pick still covers every chunk once (4 indexes).
        assert_eq!(iterative.len(), 4, "{iterative:?}");
        // And each chunk is indexed on exactly one column.
        let mut chunks = std::collections::HashSet::new();
        for &i in &iterative {
            if let smdb_storage::ConfigAction::CreateIndex { target, .. } = candidates[i].action {
                assert!(
                    chunks.insert(target.chunk),
                    "duplicate chunk in {iterative:?}"
                );
            }
        }
    }

    #[test]
    fn iterative_respects_budget_and_groups() {
        let (engine, t) = setup();
        let what_if = trained(&engine, t);
        let assessor = WhatIfAssessor::new(what_if, 0.9);
        let base = ConfigInstance::default();
        let scenarios = forecast(t);
        let candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &scenarios)
            .unwrap();
        // Tiny budget: at most one index fits.
        let one_index_bytes =
            smdb_cost::sizes::estimate_index_bytes(1000, 100, smdb_storage::IndexKind::Hash);
        let chosen = IterativeGreedy::default()
            .select(
                &engine,
                &assessor,
                &base,
                &scenarios,
                &candidates,
                Some(one_index_bytes as i64 + 8),
            )
            .unwrap();
        assert_eq!(chosen.len(), 1, "{chosen:?}");
    }

    #[test]
    fn round_cap_bounds_work() {
        let (engine, t) = setup();
        let what_if = trained(&engine, t);
        let assessor = WhatIfAssessor::new(what_if, 0.9);
        let base = ConfigInstance::default();
        let scenarios = forecast(t);
        let candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &scenarios)
            .unwrap();
        let capped = IterativeGreedy { max_rounds: 2 }
            .select(&engine, &assessor, &base, &scenarios, &candidates, None)
            .unwrap();
        assert!(capped.len() <= 2);
    }

    // `greedy_by_score` is exercised via GreedySelector above; silence the
    // unused-import lint if the helper is not referenced directly.
    #[allow(unused_imports)]
    use greedy_by_score as _greedy_by_score;
}
