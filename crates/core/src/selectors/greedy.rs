//! The greedy selector: desirability-per-cost ratio, first-fit.
//!
//! "Choosing the candidates with the highest ratio first and proceeding
//! until the constraint is violated. The strength of the greedy selector
//! is its short runtime." (Section II-D(c))

use smdb_common::Result;

use crate::candidate::SelectionInput;
use crate::selectors::{greedy_by_score, Selector};

/// Greedy selection by expected desirability per byte.
#[derive(Debug, Clone, Default)]
pub struct GreedySelector;

impl Selector for GreedySelector {
    fn name(&self) -> &str {
        "greedy"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Vec<usize>> {
        Ok(greedy_by_score(input, |a| a.expected_desirability()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::testkit::fixture;

    #[test]
    fn picks_by_ratio_not_absolute_value() {
        // Candidate 0: value 10, weight 100 (ratio 0.1).
        // Candidates 1+2: value 6 each, weight 50 (ratio 0.12).
        let (candidates, assessments) =
            fixture(&[(10.0, 100, None), (6.0, 50, None), (6.0, 50, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(100),
            scenario_base_costs: None,
        };
        let chosen = GreedySelector.select(&input).unwrap();
        let mut sorted = chosen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2]);
    }

    #[test]
    fn unbudgeted_takes_all_positive() {
        let (candidates, assessments) =
            fixture(&[(3.0, 10, None), (-1.0, 10, None), (2.0, 999, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        let mut chosen = GreedySelector.select(&input).unwrap();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![0, 2]);
    }

    #[test]
    fn empty_input_empty_selection() {
        let (candidates, assessments) = fixture(&[]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(10),
            scenario_base_costs: None,
        };
        assert!(GreedySelector.select(&input).unwrap().is_empty());
    }
}
