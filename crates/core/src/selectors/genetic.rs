//! The genetic selector.
//!
//! "Based on the biological principles of mutation, selection, and
//! crossover … applied when the search space is too large to find optimal
//! solutions. They usually find close-to-optimal solutions in relatively
//! short amounts of time." (Section II-D(c); cf. Kratica et al.)
//!
//! Bitstring GA with tournament selection, uniform crossover, bit-flip
//! mutation and a repair operator enforcing the budget and exclusivity
//! groups. Fully deterministic under `seed`.

use rand::rngs::StdRng;
use rand::RngExt;
use smdb_common::{seeded_rng, Result};

use crate::candidate::SelectionInput;
use crate::selectors::Selector;

/// Genetic-algorithm selection.
#[derive(Debug, Clone)]
pub struct GeneticSelector {
    pub population: usize,
    pub generations: usize,
    pub mutation_rate: f64,
    pub tournament: usize,
    pub seed: u64,
}

impl Default for GeneticSelector {
    fn default() -> Self {
        GeneticSelector {
            population: 48,
            generations: 60,
            mutation_rate: 0.02,
            tournament: 3,
            seed: 0x6E6E_7E1C,
        }
    }
}

impl GeneticSelector {
    fn fitness(&self, input: &SelectionInput<'_>, genome: &[bool]) -> f64 {
        genome
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(i, _)| input.assessments[i].expected_desirability())
            .sum()
    }

    /// Drops genes (worst ratio first) until budget and groups hold.
    fn repair(&self, input: &SelectionInput<'_>, genome: &mut [bool], rng: &mut StdRng) {
        // Resolve group duplicates: keep the best expected desirability.
        let mut best_in_group: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for i in 0..genome.len() {
            if !genome[i] {
                continue;
            }
            if let Some(g) = input.candidates[i].exclusive_group {
                match best_in_group.get(&g).copied() {
                    None => {
                        best_in_group.insert(g, i);
                    }
                    Some(j) => {
                        if input.assessments[i].expected_desirability()
                            > input.assessments[j].expected_desirability()
                        {
                            genome[j] = false;
                            best_in_group.insert(g, i);
                        } else {
                            genome[i] = false;
                        }
                    }
                }
            }
        }
        // Budget: drop lowest-ratio genes until feasible.
        if let Some(budget) = input.memory_budget_bytes {
            let budget = budget as f64;
            let mut used: f64 = genome
                .iter()
                .enumerate()
                .filter(|(_, &g)| g)
                .map(|(i, _)| input.assessments[i].budget_weight())
                .sum();
            while used > budget + 1e-6 {
                let victim = genome
                    .iter()
                    .enumerate()
                    .filter(|(i, &g)| g && input.assessments[*i].budget_weight() > 0.0)
                    .min_by(|(a, _), (b, _)| {
                        let ra = ratio(input, *a);
                        let rb = ratio(input, *b);
                        ra.total_cmp(&rb)
                    })
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => {
                        genome[i] = false;
                        used -= input.assessments[i].budget_weight();
                    }
                    None => {
                        // Only zero-weight genes left yet over budget:
                        // impossible, but guard against infinite loops.
                        let _ = rng;
                        break;
                    }
                }
            }
        }
    }
}

fn ratio(input: &SelectionInput<'_>, i: usize) -> f64 {
    let d = input.assessments[i].expected_desirability();
    let w = input.assessments[i].budget_weight();
    if w > 0.0 {
        d / w
    } else if d > 0.0 {
        f64::INFINITY
    } else {
        d
    }
}

impl Selector for GeneticSelector {
    fn name(&self) -> &str {
        "genetic"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Vec<usize>> {
        let n = input.candidates.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut rng = seeded_rng(self.seed);

        // Initial population: random subsets of the positive candidates
        // plus the greedy solution as an elite seed.
        let positive: Vec<usize> = (0..n)
            .filter(|&i| input.assessments[i].expected_desirability() > 0.0)
            .collect();
        if positive.is_empty() {
            return Ok(Vec::new());
        }
        let greedy = crate::selectors::greedy_by_score(input, |a| a.expected_desirability());
        let mut population: Vec<Vec<bool>> = Vec::with_capacity(self.population);
        let mut elite = vec![false; n];
        for &i in &greedy {
            elite[i] = true;
        }
        population.push(elite);
        while population.len() < self.population.max(2) {
            let mut genome = vec![false; n];
            for &i in &positive {
                if rng.random_bool(0.3) {
                    genome[i] = true;
                }
            }
            self.repair(input, &mut genome, &mut rng);
            population.push(genome);
        }

        let mut best: (f64, Vec<bool>) = population
            .iter()
            .map(|g| (self.fitness(input, g), g.clone()))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("population non-empty");

        for _gen in 0..self.generations {
            let mut next = Vec::with_capacity(population.len());
            // Elitism: carry the best genome forward.
            next.push(best.1.clone());
            while next.len() < population.len() {
                let a = self.tournament_pick(input, &population, &mut rng);
                let b = self.tournament_pick(input, &population, &mut rng);
                // Uniform crossover.
                let mut child: Vec<bool> = (0..n)
                    .map(|i| if rng.random_bool(0.5) { a[i] } else { b[i] })
                    .collect();
                // Mutation (only over positive candidates; enabling a
                // known-negative gene is never useful).
                for &i in &positive {
                    if rng.random_bool(self.mutation_rate) {
                        child[i] = !child[i];
                    }
                }
                self.repair(input, &mut child, &mut rng);
                next.push(child);
            }
            population = next;
            for g in &population {
                let f = self.fitness(input, g);
                if f > best.0 {
                    best = (f, g.clone());
                }
            }
        }

        let chosen: Vec<usize> = best
            .1
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(input.is_feasible(&chosen));
        Ok(chosen)
    }
}

impl GeneticSelector {
    fn tournament_pick<'a>(
        &self,
        input: &SelectionInput<'_>,
        population: &'a [Vec<bool>],
        rng: &mut StdRng,
    ) -> &'a Vec<bool> {
        let mut best: Option<(&Vec<bool>, f64)> = None;
        for _ in 0..self.tournament.max(1) {
            let g = &population[rng.random_range(0..population.len())];
            let f = self.fitness(input, g);
            if best.as_ref().is_none_or(|&(_, bf)| f > bf) {
                best = Some((g, f));
            }
        }
        best.expect("tournament ran at least once").0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::testkit::fixture;
    use crate::selectors::{GreedySelector, OptimalSelector};

    fn value(assessments: &[crate::candidate::Assessment], chosen: &[usize]) -> f64 {
        chosen
            .iter()
            .map(|&i| assessments[i].expected_desirability())
            .sum()
    }

    #[test]
    fn finds_feasible_near_optimal_solutions() {
        // 20 items with varied ratios, budget 50% of total weight.
        let spec: Vec<(f64, i64, Option<u64>)> = (0..20)
            .map(|i| {
                let v = 5.0 + ((i * 13) % 17) as f64;
                let w = 5 + ((i * 7) % 11) as i64;
                (v, w, None)
            })
            .collect();
        let (candidates, assessments) = fixture(&spec);
        let total_w: i64 = spec.iter().map(|s| s.1).sum();
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(total_w / 2),
            scenario_base_costs: None,
        };
        let ga = GeneticSelector::default().select(&input).unwrap();
        let opt = OptimalSelector.select(&input).unwrap();
        let greedy = GreedySelector.select(&input).unwrap();
        assert!(input.is_feasible(&ga));
        let (vg, vo, vgr) = (
            value(&assessments, &ga),
            value(&assessments, &opt),
            value(&assessments, &greedy),
        );
        assert!(vg <= vo + 1e-9);
        // GA should at least match greedy (it is seeded with it).
        assert!(vg >= vgr - 1e-9, "ga {vg} < greedy {vgr}");
        // And be close to optimal on this small instance.
        assert!(vg >= 0.95 * vo, "ga {vg} far from optimal {vo}");
    }

    #[test]
    fn respects_groups() {
        let (candidates, assessments) =
            fixture(&[(10.0, 1, Some(3)), (12.0, 1, Some(3)), (4.0, 1, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        let chosen = GeneticSelector::default().select(&input).unwrap();
        assert!(input.is_feasible(&chosen));
        assert!(chosen.contains(&1) || chosen.contains(&0));
        assert!(!(chosen.contains(&0) && chosen.contains(&1)));
    }

    #[test]
    fn deterministic_under_seed() {
        let spec: Vec<(f64, i64, Option<u64>)> = (0..12)
            .map(|i| (1.0 + i as f64, 2 + i as i64, None))
            .collect();
        let (candidates, assessments) = fixture(&spec);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(30),
            scenario_base_costs: None,
        };
        let a = GeneticSelector::default().select(&input).unwrap();
        let b = GeneticSelector::default().select(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_all_negative_inputs() {
        let (candidates, assessments) = fixture(&[]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        assert!(GeneticSelector::default()
            .select(&input)
            .unwrap()
            .is_empty());

        let (candidates, assessments) = fixture(&[(-1.0, 5, None), (-2.0, 5, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        assert!(GeneticSelector::default()
            .select(&input)
            .unwrap()
            .is_empty());
    }
}
