//! Selectors (Section II-D(c)).
//!
//! "A selector chooses candidates based on the previous assessments and
//! specified constraints." The paper names four classes, all implemented
//! here:
//!
//! * [`greedy::GreedySelector`] — desirability-per-cost ratio until the
//!   budget is exhausted; fastest.
//! * [`optimal::OptimalSelector`] — exact 0/1 knapsack via
//!   branch-and-bound (`smdb-lp`); best quality, slowest.
//! * [`genetic::GeneticSelector`] — mutation/selection/crossover for
//!   search spaces too large for exact solutions.
//! * [`robust::RobustSelector`] — risk-averse criteria (mean-variance,
//!   worst case, CVaR) over the per-scenario desirabilities.

pub mod genetic;
pub mod greedy;
pub mod iterative;
pub mod optimal;
pub mod robust;

use smdb_common::Result;

use crate::candidate::SelectionInput;

pub use genetic::GeneticSelector;
pub use greedy::GreedySelector;
pub use iterative::IterativeGreedy;
pub use optimal::OptimalSelector;
pub use robust::{RiskCriterion, RobustSelector};

/// Chooses a feasible subset of candidates.
pub trait Selector: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Returns indices of chosen candidates. Implementations must respect
    /// the budget and exclusivity groups
    /// ([`SelectionInput::is_feasible`]).
    fn select(&self, input: &SelectionInput<'_>) -> Result<Vec<usize>>;
}

/// Shared helper: greedy selection by an arbitrary score function.
/// Candidates with non-positive score are never chosen; groups and the
/// budget are respected. Returns indices in score order.
pub(crate) fn greedy_by_score(
    input: &SelectionInput<'_>,
    score: impl Fn(&crate::candidate::Assessment) -> f64,
) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64, f64)> = input
        .assessments
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let s = score(a);
            let weight = a.budget_weight();
            // Ratio for budgeted problems; plain score when free.
            let ratio = if weight > 0.0 {
                s / weight
            } else {
                f64::INFINITY
            };
            (i, s, ratio)
        })
        .filter(|&(_, s, _)| s > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.2.total_cmp(&a.2)
            .then(b.1.total_cmp(&a.1))
            .then(a.0.cmp(&b.0))
    });

    let mut chosen = Vec::new();
    let mut used_groups = std::collections::HashSet::new();
    let mut used_bytes = 0.0f64;
    let budget = input.memory_budget_bytes.map(|b| b as f64);
    for (i, _, _) in ranked {
        if let Some(g) = input.candidates[i].exclusive_group {
            if used_groups.contains(&g) {
                continue;
            }
        }
        let w = input.assessments[i].budget_weight();
        if let Some(b) = budget {
            if used_bytes + w > b + 1e-6 {
                continue;
            }
        }
        if let Some(g) = input.candidates[i].exclusive_group {
            used_groups.insert(g);
        }
        used_bytes += w;
        chosen.push(i);
    }
    chosen
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared fixtures for selector tests.

    use smdb_common::{ChunkColumnRef, Cost};
    use smdb_storage::{ConfigAction, IndexKind};

    use crate::candidate::{Assessment, Candidate};

    /// Builds `n` candidates with the given (desirability, bytes, group)
    /// triples; single scenario.
    pub fn fixture(spec: &[(f64, i64, Option<u64>)]) -> (Vec<Candidate>, Vec<Assessment>) {
        let candidates: Vec<Candidate> = spec
            .iter()
            .enumerate()
            .map(|(i, &(_, _, group))| {
                Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(0, 0, i as u32),
                        kind: IndexKind::Hash,
                    },
                    group,
                )
            })
            .collect();
        let assessments: Vec<Assessment> = spec
            .iter()
            .enumerate()
            .map(|(i, &(d, bytes, _))| Assessment {
                candidate: i,
                per_scenario: vec![d],
                probabilities: vec![1.0],
                confidence: 1.0,
                permanent_bytes: bytes,
                one_time_cost: Cost(1.0),
            })
            .collect();
        (candidates, assessments)
    }

    /// Multi-scenario fixture: each entry is (per_scenario, bytes).
    pub fn fixture_scenarios(
        probabilities: &[f64],
        spec: &[(Vec<f64>, i64)],
    ) -> (Vec<Candidate>, Vec<Assessment>) {
        let candidates: Vec<Candidate> = spec
            .iter()
            .enumerate()
            .map(|(i, _)| {
                Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(0, 0, i as u32),
                        kind: IndexKind::Hash,
                    },
                    None,
                )
            })
            .collect();
        let assessments: Vec<Assessment> = spec
            .iter()
            .enumerate()
            .map(|(i, (per_scenario, bytes))| Assessment {
                candidate: i,
                per_scenario: per_scenario.clone(),
                probabilities: probabilities.to_vec(),
                confidence: 1.0,
                permanent_bytes: *bytes,
                one_time_cost: Cost(1.0),
            })
            .collect();
        (candidates, assessments)
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::fixture;
    use super::*;

    #[test]
    fn greedy_by_score_respects_everything() {
        let (candidates, assessments) = fixture(&[
            (10.0, 100, Some(1)),
            (9.0, 100, Some(1)), // same group as 0
            (-5.0, 10, None),    // negative: never chosen
            (8.0, 100, None),
            (1.0, 0, None), // free: always fits
        ]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(150),
            scenario_base_costs: None,
        };
        let chosen = greedy_by_score(&input, |a| a.expected_desirability());
        assert!(input.is_feasible(&chosen));
        assert!(chosen.contains(&4), "free candidate always fits");
        assert!(chosen.contains(&0), "best of group 1");
        assert!(!chosen.contains(&1));
        assert!(!chosen.contains(&2));
        assert!(!chosen.contains(&3), "budget exhausted by 0");
    }
}
