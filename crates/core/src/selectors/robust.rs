//! Robust / risk-averse selectors (Section II-D(c)).
//!
//! "Selectors that act risk-averse are a good choice for scenarios in
//! which stable performance in most cases is preferred over best
//! performance in the expected case. Criteria based on mean-variance
//! optimization, utility functions, value at risk, and worst-case
//! considerations can be used." (cf. Mozafari et al., CliffGuard.)
//!
//! The selector scores each candidate by a risk criterion over its
//! per-scenario desirabilities and then runs budgeted greedy selection on
//! that score.

use smdb_common::Result;

use crate::candidate::{Assessment, SelectionInput};
use crate::selectors::{greedy_by_score, Selector};

/// The risk criterion used to collapse per-scenario desirabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RiskCriterion {
    /// `mean − λ·std`: mean-variance optimization.
    MeanVariance { lambda: f64 },
    /// The minimum desirability across scenarios.
    WorstCase,
    /// Expected desirability over the `alpha` worst probability mass
    /// (conditional value at risk).
    Cvar { alpha: f64 },
}

impl RiskCriterion {
    /// Collapses an assessment to a scalar robust score.
    pub fn score(&self, a: &Assessment) -> f64 {
        match *self {
            RiskCriterion::MeanVariance { lambda } => {
                a.expected_desirability() - lambda * a.desirability_std()
            }
            RiskCriterion::WorstCase => a.worst_desirability(),
            RiskCriterion::Cvar { alpha } => cvar(a, alpha),
        }
    }

    /// Short label.
    pub fn label(&self) -> String {
        match self {
            RiskCriterion::MeanVariance { lambda } => format!("mean_var(λ={lambda})"),
            RiskCriterion::WorstCase => "worst_case".to_string(),
            RiskCriterion::Cvar { alpha } => format!("cvar(α={alpha})"),
        }
    }
}

/// Expected desirability over the worst `alpha` probability mass.
fn cvar(a: &Assessment, alpha: f64) -> f64 {
    let alpha = alpha.clamp(1e-6, 1.0);
    // Sort scenarios ascending by desirability.
    let mut pairs: Vec<(f64, f64)> = a
        .per_scenario
        .iter()
        .zip(&a.probabilities)
        .map(|(&d, &p)| (d, p))
        .collect();
    pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
    let mut remaining = alpha;
    let mut acc = 0.0;
    for (d, p) in pairs {
        if remaining <= 0.0 {
            break;
        }
        let take = p.min(remaining);
        acc += d * take;
        remaining -= take;
    }
    acc / alpha
}

/// Risk-averse greedy selection.
#[derive(Debug, Clone)]
pub struct RobustSelector {
    pub criterion: RiskCriterion,
}

impl RobustSelector {
    /// Creates a robust selector with the given criterion.
    pub fn new(criterion: RiskCriterion) -> Self {
        RobustSelector { criterion }
    }
}

impl Selector for RobustSelector {
    fn name(&self) -> &str {
        "robust"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Vec<usize>> {
        // Worst-case selection is a *set-level* objective: minimize the
        // final configuration's maximum scenario cost. When the caller
        // supplies base costs we run the cost-aware greedy; otherwise we
        // fall back to the per-candidate max-min-benefit score.
        if self.criterion == RiskCriterion::WorstCase {
            if let Some(base_costs) = &input.scenario_base_costs {
                return Ok(worst_case_cost_greedy(input, base_costs));
            }
        }
        Ok(greedy_by_score(input, |a| self.criterion.score(a)))
    }
}

/// Greedy minimization of the maximum scenario cost: each step picks the
/// feasible candidate with the best marginal benefit *in the currently
/// worst scenario* per byte, until no candidate improves that scenario.
fn worst_case_cost_greedy(input: &SelectionInput<'_>, base_costs: &[f64]) -> Vec<usize> {
    let mut residual: Vec<f64> = base_costs.to_vec();
    let mut chosen: Vec<usize> = Vec::new();
    let mut used_groups = std::collections::HashSet::new();
    let mut used_bytes = 0.0f64;
    let budget = input.memory_budget_bytes.map(|b| b as f64);
    let mut available: Vec<bool> = vec![true; input.candidates.len()];

    while let Some(worst_s) =
        (0..residual.len()).max_by(|&a, &b| residual[a].total_cmp(&residual[b]))
    {
        // `worst_s` is the scenario currently dominating the worst case.
        // Best feasible candidate for that scenario, by benefit per byte.
        let mut best: Option<(usize, f64)> = None;
        for (i, a) in input.assessments.iter().enumerate() {
            if !available[i] {
                continue;
            }
            let d = *a.per_scenario.get(worst_s).unwrap_or(&0.0);
            if d <= 0.0 {
                continue;
            }
            if let Some(g) = input.candidates[i].exclusive_group {
                if used_groups.contains(&g) {
                    continue;
                }
            }
            let w = a.budget_weight();
            if let Some(b) = budget {
                if used_bytes + w > b + 1e-6 {
                    continue;
                }
            }
            let ratio = if w > 0.0 { d / w } else { f64::INFINITY };
            if best.is_none_or(|(_, s)| ratio > s) {
                best = Some((i, ratio));
            }
        }
        let Some((pick, _)) = best else {
            break;
        };
        available[pick] = false;
        if let Some(g) = input.candidates[pick].exclusive_group {
            used_groups.insert(g);
        }
        used_bytes += input.assessments[pick].budget_weight();
        for (r, d) in residual
            .iter_mut()
            .zip(&input.assessments[pick].per_scenario)
        {
            *r -= d; // candidate benefits apply in every scenario
        }
        chosen.push(pick);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::testkit::fixture_scenarios;

    #[test]
    fn criteria_score_sensibly() {
        let (_, assessments) = fixture_scenarios(
            &[0.5, 0.5],
            &[
                (vec![10.0, 10.0], 1), // stable
                (vec![22.0, 0.0], 1),  // volatile, higher mean
            ],
        );
        let stable = &assessments[0];
        let volatile = &assessments[1];
        // Plain expectation prefers the volatile one.
        assert!(volatile.expected_desirability() > stable.expected_desirability());
        // Every risk criterion prefers the stable one.
        for criterion in [
            RiskCriterion::MeanVariance { lambda: 1.0 },
            RiskCriterion::WorstCase,
            RiskCriterion::Cvar { alpha: 0.5 },
        ] {
            assert!(
                criterion.score(stable) > criterion.score(volatile),
                "criterion {criterion:?}"
            );
        }
    }

    #[test]
    fn selection_prefers_stable_candidates_under_budget() {
        let (candidates, assessments) = fixture_scenarios(
            &[0.5, 0.5],
            &[
                (vec![10.0, 10.0], 100),
                (vec![25.0, -2.0], 100), // higher mean, can hurt
            ],
        );
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(100),
            scenario_base_costs: None,
        };
        let chosen = RobustSelector::new(RiskCriterion::WorstCase)
            .select(&input)
            .unwrap();
        assert_eq!(chosen, vec![0]);
    }

    #[test]
    fn cvar_interpolates_between_worst_and_mean() {
        let (_, assessments) =
            fixture_scenarios(&[0.25, 0.25, 0.25, 0.25], &[(vec![0.0, 4.0, 8.0, 12.0], 1)]);
        let a = &assessments[0];
        let worst = RiskCriterion::Cvar { alpha: 0.25 }.score(a);
        let half = RiskCriterion::Cvar { alpha: 0.5 }.score(a);
        let full = RiskCriterion::Cvar { alpha: 1.0 }.score(a);
        assert!((worst - 0.0).abs() < 1e-9);
        assert!((half - 2.0).abs() < 1e-9);
        assert!((full - a.expected_desirability()).abs() < 1e-9);
    }

    #[test]
    fn mean_variance_lambda_zero_is_plain_expectation() {
        let (_, assessments) = fixture_scenarios(&[0.5, 0.5], &[(vec![3.0, 9.0], 1)]);
        let a = &assessments[0];
        let score = RiskCriterion::MeanVariance { lambda: 0.0 }.score(a);
        assert!((score - a.expected_desirability()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod cost_aware_tests {
    use super::*;
    use crate::selectors::testkit::fixture_scenarios;

    #[test]
    fn cost_aware_worst_case_targets_dominating_scenario() {
        // Scenario 1 dominates the base cost. Candidate 0 helps scenario
        // 0 a lot but scenario 1 barely; candidate 1 is the reverse. The
        // benefit-space worst-case score prefers candidate 0 (its minimum
        // benefit 4 > candidate 1's minimum 2); the cost-aware greedy
        // must instead attack scenario 1 first via candidate 1.
        let (candidates, assessments) =
            fixture_scenarios(&[0.5, 0.5], &[(vec![20.0, 4.0], 10), (vec![2.0, 30.0], 10)]);
        let input_with_costs = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(10), // exactly one candidate fits
            scenario_base_costs: Some(vec![50.0, 200.0]),
        };
        let chosen = RobustSelector::new(RiskCriterion::WorstCase)
            .select(&input_with_costs)
            .unwrap();
        assert_eq!(chosen, vec![1], "must attack the dominating scenario");

        // Without base costs: falls back to max-min benefit → candidate 0.
        let input_no_costs = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(10),
            scenario_base_costs: None,
        };
        let fallback = RobustSelector::new(RiskCriterion::WorstCase)
            .select(&input_no_costs)
            .unwrap();
        assert_eq!(fallback, vec![0]);
    }

    #[test]
    fn cost_aware_selection_is_feasible_and_terminates() {
        let (candidates, assessments) = fixture_scenarios(
            &[0.4, 0.6],
            &[
                (vec![5.0, 1.0], 4),
                (vec![1.0, 5.0], 4),
                (vec![3.0, 3.0], 4),
                (vec![-1.0, -1.0], 1),
            ],
        );
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(8),
            scenario_base_costs: Some(vec![100.0, 100.0]),
        };
        let chosen = RobustSelector::new(RiskCriterion::WorstCase)
            .select(&input)
            .unwrap();
        assert!(input.is_feasible(&chosen));
        assert!(chosen.len() <= 2);
        assert!(!chosen.contains(&3), "never pick harmful candidates");
    }
}
