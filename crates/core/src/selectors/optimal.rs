//! The optimal selector: exact selection under the memory budget and
//! exclusivity groups.
//!
//! "Optimal selectors find optimal configurations … usually based on
//! off-the-shelf solvers … might lead to long runtimes." (Section
//! II-D(c); cf. Dash et al., CoPhy.)
//!
//! Group-free instances (and instances whose groups have at most one
//! beneficial member, the common case for index alternatives) reduce to
//! a plain 0/1 knapsack, solved by the specialised branch-and-bound in
//! `smdb-lp`. Instances with real multi-member groups are a
//! multiple-choice knapsack and are solved exactly as an integer LP —
//! slower, as the paper warns, but optimal.

use std::collections::HashMap;

use smdb_common::Result;
use smdb_lp::branch_bound::{solve_ilp, IlpOptions};
use smdb_lp::knapsack::solve_knapsack;
use smdb_lp::model::{ConstraintOp, LpModel};

use crate::candidate::SelectionInput;
use crate::selectors::Selector;

/// Exact selection (knapsack / multiple-choice knapsack).
#[derive(Debug, Clone, Default)]
pub struct OptimalSelector;

impl Selector for OptimalSelector {
    fn name(&self) -> &str {
        "optimal"
    }

    fn select(&self, input: &SelectionInput<'_>) -> Result<Vec<usize>> {
        // Positive candidates only; group by exclusivity.
        let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut free_items: Vec<usize> = Vec::new();
        for (i, a) in input.assessments.iter().enumerate() {
            if a.expected_desirability() <= 0.0 {
                continue;
            }
            match input.candidates[i].exclusive_group {
                None => free_items.push(i),
                Some(g) => groups.entry(g).or_default().push(i),
            }
        }
        // Singleton groups behave like free items.
        let mut multi_groups: Vec<Vec<usize>> = Vec::new();
        for (_, members) in groups {
            if members.len() == 1 {
                free_items.push(members[0]);
            } else {
                multi_groups.push(members);
            }
        }
        free_items.sort_unstable();
        multi_groups.sort();

        if multi_groups.is_empty() {
            return self.knapsack_path(input, &free_items);
        }
        self.ilp_path(input, &free_items, &multi_groups)
    }
}

impl OptimalSelector {
    /// Plain 0/1 knapsack over `items`.
    fn knapsack_path(&self, input: &SelectionInput<'_>, items: &[usize]) -> Result<Vec<usize>> {
        match input.memory_budget_bytes {
            None => Ok(items.to_vec()),
            Some(budget) => {
                let values: Vec<f64> = items
                    .iter()
                    .map(|&i| input.assessments[i].expected_desirability())
                    .collect();
                let weights: Vec<f64> = items
                    .iter()
                    .map(|&i| input.assessments[i].budget_weight())
                    .collect();
                let sol = solve_knapsack(&values, &weights, budget.max(0) as f64)?;
                Ok(sol.chosen.into_iter().map(|k| items[k]).collect())
            }
        }
    }

    /// Multiple-choice knapsack as an exact integer LP.
    fn ilp_path(
        &self,
        input: &SelectionInput<'_>,
        free_items: &[usize],
        multi_groups: &[Vec<usize>],
    ) -> Result<Vec<usize>> {
        let all: Vec<usize> = free_items
            .iter()
            .chain(multi_groups.iter().flatten())
            .copied()
            .collect();
        let mut model = LpModel::new();
        let vars: Vec<_> = all
            .iter()
            .map(|&i| {
                model.add_binary(
                    format!("c{i}"),
                    input.assessments[i].expected_desirability(),
                )
            })
            .collect();
        let var_of: HashMap<usize, _> = all.iter().copied().zip(vars.iter().copied()).collect();
        if let Some(budget) = input.memory_budget_bytes {
            let coeffs: Vec<_> = all
                .iter()
                .map(|&i| (var_of[&i], input.assessments[i].budget_weight()))
                .collect();
            model.add_constraint("budget", coeffs, ConstraintOp::Le, budget.max(0) as f64)?;
        }
        for (g, members) in multi_groups.iter().enumerate() {
            let coeffs: Vec<_> = members.iter().map(|&i| (var_of[&i], 1.0)).collect();
            model.add_constraint(format!("group{g}"), coeffs, ConstraintOp::Le, 1.0)?;
        }
        let sol = solve_ilp(&model, &IlpOptions::default())?;
        let mut chosen: Vec<usize> = all
            .iter()
            .enumerate()
            .filter(|(k, _)| sol.x[*k].round() as i64 == 1)
            .map(|(_, &i)| i)
            .collect();
        chosen.sort_unstable();
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::testkit::fixture;
    use crate::selectors::GreedySelector;

    fn value(assessments: &[crate::candidate::Assessment], chosen: &[usize]) -> f64 {
        chosen
            .iter()
            .map(|&i| assessments[i].expected_desirability())
            .sum()
    }

    #[test]
    fn beats_greedy_on_adversarial_instance() {
        // Classic greedy trap: the ratio-best item blocks the optimum.
        // Budget 10. Item 0: value 9, weight 6 (ratio 1.5) — greedy takes
        // it and can fit nothing else. Items 1, 2: value 6, weight 5
        // (ratio 1.2 each) — together they are the optimum (12).
        let (candidates, assessments) = fixture(&[(9.0, 6, None), (6.0, 5, None), (6.0, 5, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(10),
            scenario_base_costs: None,
        };
        let optimal = OptimalSelector.select(&input).unwrap();
        let greedy = GreedySelector.select(&input).unwrap();
        assert_eq!(value(&assessments, &optimal), 12.0);
        assert_eq!(value(&assessments, &greedy), 9.0);
        assert!(input.is_feasible(&optimal));
    }

    #[test]
    fn multi_member_groups_solved_exactly() {
        // Group 7 offers a light member (value 10, weight 10) and a
        // heavy one (value 20, weight 95). Budget 100. Density-reduction
        // would keep only the light member and then take item 2 (value 5,
        // weight 85): total 15. True optimum: heavy member + nothing
        // (20) vs light + item 2 (15) — the ILP must find 20... unless
        // light + item 2 + slack fits better. Weights: heavy 95 alone =
        // 20; light 10 + item2 85 = 95 ≤ 100 → 15. Optimum is 20.
        let (candidates, assessments) =
            fixture(&[(10.0, 10, Some(7)), (20.0, 95, Some(7)), (5.0, 85, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(100),
            scenario_base_costs: None,
        };
        let chosen = OptimalSelector.select(&input).unwrap();
        assert_eq!(value(&assessments, &chosen), 20.0, "{chosen:?}");
        assert!(input.is_feasible(&chosen));
    }

    #[test]
    fn group_choice_interacts_with_budget() {
        // Optimum takes the *lower-value* group member to free budget
        // for another item: group {A: v8 w8, B: v6 w2}, item C: v5 w6,
        // budget 8 → B + C = 11 beats A = 8.
        let (candidates, assessments) =
            fixture(&[(8.0, 8, Some(1)), (6.0, 2, Some(1)), (5.0, 6, None)]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(8),
            scenario_base_costs: None,
        };
        let chosen = OptimalSelector.select(&input).unwrap();
        assert_eq!(value(&assessments, &chosen), 11.0, "{chosen:?}");
    }

    #[test]
    fn no_budget_selects_best_per_group_and_all_positive() {
        let (candidates, assessments) = fixture(&[
            (10.0, 10, Some(7)),
            (20.0, 10, Some(7)),
            (-2.0, 0, None),
            (5.0, 10, None),
        ]);
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        let mut chosen = OptimalSelector.select(&input).unwrap();
        chosen.sort_unstable();
        assert_eq!(chosen, vec![1, 3]);
    }
}
