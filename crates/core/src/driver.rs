//! The driver: "the central entity encapsulating all the other
//! components that are responsible for adding self-management
//! capabilities" (Section II-A).
//!
//! The driver owns the workload predictor, the multi-feature tuner, the
//! organizer, the KPI collector, the configuration-instance storage and
//! the constraint set, and mediates their access to the database (plan
//! cache, engine, cost estimators).

use std::sync::Arc;

use parking_lot::Mutex;
use smdb_common::{Cost, Result};
use smdb_cost::{CalibratedCostModel, CostEstimator, WhatIf};
use smdb_forecast::{
    ForecastSet, PredictorConfig, WorkloadAnalyzer, WorkloadHistory, WorkloadPredictor,
};
use smdb_query::{Database, Query};

use crate::config_storage::{ConfigStorage, StoredInstance};
use crate::constraints::ConstraintSet;
use crate::executor::{Executor, SequentialExecutor};
use crate::feature::FeatureKind;
use crate::kpi::KpiCollector;
use crate::multi::MultiFeatureTuner;
use crate::organizer::{Organizer, OrganizerConfig, TuningTrigger};
use crate::tuner::{standard_tuner, TuningProposal};

/// How the driver orders features in a multi-feature tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Registration order (no analysis).
    Registration,
    /// Descending single-feature impact `W∅/W_A`.
    Impact,
    /// The paper's LP-based order optimization (Section III-B).
    LpOptimized,
}

/// Report of one driver-run bucket.
#[derive(Debug, Clone)]
pub struct BucketReport {
    pub queries_run: usize,
    pub bucket_cost: Cost,
    pub now: smdb_common::LogicalTime,
}

/// Report of one tuning run.
#[derive(Debug)]
pub struct TuningRunReport {
    pub trigger: TuningTrigger,
    pub order: Vec<FeatureKind>,
    pub proposals: Vec<TuningProposal>,
    pub applied_actions: usize,
    pub reconfiguration_cost: Cost,
}

/// The central self-management entity.
pub struct Driver {
    db: Arc<Database>,
    history: Mutex<WorkloadHistory>,
    predictor: WorkloadPredictor,
    multi: MultiFeatureTuner,
    organizer: Organizer,
    kpis: KpiCollector,
    storage: ConfigStorage,
    constraints: ConstraintSet,
    executor: Box<dyn Executor>,
    /// Online-learning cost model fed by every monitored execution.
    calibrated: Option<Arc<CalibratedCostModel>>,
    ordering_policy: OrderingPolicy,
    /// Rolling observed workload cost of the last closed bucket.
    last_bucket_cost: Mutex<Cost>,
    /// Actions a utilization-gated executor deferred; retried each bucket
    /// ("the executor can access runtime KPIs to determine favorable
    /// points in time for applying the choices", Section II-D(d)).
    pending_actions: Mutex<Vec<smdb_storage::ConfigAction>>,
}

impl Driver {
    /// Starts building a driver for a database.
    pub fn builder(db: Arc<Database>) -> DriverBuilder {
        DriverBuilder::new(db)
    }

    /// The database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The KPI collector.
    pub fn kpis(&self) -> &KpiCollector {
        &self.kpis
    }

    /// The configuration-instance storage (feedback loop).
    pub fn config_storage(&self) -> &ConfigStorage {
        &self.storage
    }

    /// The constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// The multi-feature tuner.
    pub fn multi(&self) -> &MultiFeatureTuner {
        &self.multi
    }

    /// Runs one bucket of queries through the database: executes each
    /// query (monitoring feeds the plan cache), records KPIs, optionally
    /// trains the calibrated cost model, snapshots the plan cache into
    /// the workload history, and advances the logical clock.
    pub fn run_bucket(&self, queries: &[Query]) -> Result<BucketReport> {
        let mut bucket_cost = Cost::ZERO;
        let config = self.db.engine().current_config();
        for q in queries {
            let result = self.db.run_query(q)?;
            bucket_cost += result.output.sim_cost;
            self.kpis.record_query(result.output.sim_cost);
            if let Some(model) = &self.calibrated {
                let engine = self.db.engine();
                model.observe(&engine, q, &config, result.output.sim_cost)?;
            }
        }
        let now = self.db.now();
        {
            let engine = self.db.engine();
            self.kpis
                .record_memory(engine.memory_report().total_bytes());
        }
        self.history
            .lock()
            .observe(now, &self.db.plan_cache().snapshot());
        self.kpis.end_bucket(bucket_cost);
        *self.last_bucket_cost.lock() = bucket_cost;
        self.db.advance_time();
        // Retry actions a utilization-gated executor deferred earlier;
        // the bucket just closed, so the KPI window is fresh.
        self.drain_pending()?;
        Ok(BucketReport {
            queries_run: queries.len(),
            bucket_cost,
            now,
        })
    }

    /// Attempts to apply deferred actions (no-op when none are pending or
    /// the executor still defers). Returns how many were applied.
    pub fn drain_pending(&self) -> Result<usize> {
        let actions: Vec<smdb_storage::ConfigAction> = {
            let mut pending = self.pending_actions.lock();
            if pending.is_empty() {
                return Ok(0);
            }
            std::mem::take(&mut *pending)
        };
        let report = self.executor.execute(&self.db, &self.kpis, &actions)?;
        if report.deferred > 0 {
            // Still not a favorable point in time; keep them queued.
            *self.pending_actions.lock() = actions;
            return Ok(0);
        }
        Ok(report.applied)
    }

    /// Number of actions currently deferred by the executor.
    pub fn pending_actions(&self) -> usize {
        self.pending_actions.lock().len()
    }

    /// Produces the current forecast from the observed history.
    pub fn forecast(&self) -> ForecastSet {
        self.predictor.predict(&self.history.lock())
    }

    /// Checks the organizer and, when it fires, runs a full tuning pass.
    pub fn maybe_tune(&self) -> Result<Option<TuningRunReport>> {
        let forecast = self.forecast();
        let Some(expected) = forecast.expected() else {
            return Ok(None);
        };
        let forecast_cost = {
            let engine = self.db.engine();
            let config = engine.current_config();
            self.multi
                .what_if()
                .workload_cost(&engine, &expected.workload, &config)?
        };
        let observed = *self.last_bucket_cost.lock();
        let now = self.db.now();
        let Some(trigger) =
            self.organizer
                .should_tune(now, observed, forecast_cost, &self.kpis, &self.constraints)
        else {
            return Ok(None);
        };
        self.tune_with_trigger(trigger, forecast).map(Some)
    }

    /// Forces a tuning pass now (Manual trigger).
    pub fn force_tune(&self) -> Result<TuningRunReport> {
        let forecast = self.forecast();
        self.tune_with_trigger(TuningTrigger::Manual, forecast)
    }

    fn tune_with_trigger(
        &self,
        trigger: TuningTrigger,
        forecast: ForecastSet,
    ) -> Result<TuningRunReport> {
        if forecast.expected().is_none() {
            return Err(smdb_common::Error::invalid(
                "cannot tune without an expected forecast",
            ));
        }
        let (order_idx, proposals, final_config, base_config) = {
            let engine = self.db.engine();
            let base = engine.current_config();
            let n = self.multi.features().len();
            let order_idx: Vec<usize> = match self.ordering_policy {
                OrderingPolicy::Registration => (0..n).collect(),
                OrderingPolicy::Impact => {
                    let report =
                        self.multi
                            .analyze(&engine, &forecast, &base, &self.constraints)?;
                    report.impact_order()
                }
                OrderingPolicy::LpOptimized => {
                    let report =
                        self.multi
                            .analyze(&engine, &forecast, &base, &self.constraints)?;
                    self.multi.lp_order(&report)?.order
                }
            };
            let run = self.multi.tune_in_order(
                &engine,
                &forecast,
                &base,
                &self.constraints,
                &order_idx,
            )?;
            (order_idx, run.proposals, run.final_config, base)
        };

        // Execute the combined action list.
        let actions = base_config.diff(&final_config);
        let report = self.executor.execute(&self.db, &self.kpis, &actions)?;
        if report.deferred > 0 {
            // Utilization-gated executor postponed the change; queue it
            // for the next low-utilization window.
            self.pending_actions.lock().extend(actions.iter().cloned());
        }
        let now = self.db.now();
        self.organizer.record_tuning(now);

        // Feedback loop: complete the previous instance, store this one.
        let observed_before = self.kpis.mean_response();
        self.storage.complete_latest(observed_before);
        if report.applied > 0 {
            let predicted_cost = {
                let engine = self.db.engine();
                let expected = forecast.expected().ok_or_else(|| {
                    smdb_common::Error::invalid("forecast lost its expected scenario mid-tuning")
                })?;
                self.multi
                    .what_if()
                    .workload_cost(&engine, &expected.workload, &final_config)?
            };
            self.storage.store(StoredInstance {
                applied_at: now,
                feature: None,
                config: final_config,
                actions: actions.clone(),
                predicted_cost,
                reconfiguration_cost: report.reconfiguration_cost,
                observed_before,
                observed_after: None,
            });
            self.kpis.reset_latencies();
        }

        let order: Vec<FeatureKind> = {
            let features = self.multi.features();
            order_idx.iter().map(|&i| features[i]).collect()
        };
        Ok(TuningRunReport {
            trigger,
            order,
            proposals,
            applied_actions: report.applied,
            reconfiguration_cost: report.reconfiguration_cost,
        })
    }
}

/// Builder wiring the driver's exchangeable components.
pub struct DriverBuilder {
    db: Arc<Database>,
    analyzer: Box<dyn WorkloadAnalyzer>,
    predictor_config: PredictorConfig,
    estimator: Option<Arc<dyn CostEstimator>>,
    calibrated: Option<Arc<CalibratedCostModel>>,
    features: Vec<FeatureKind>,
    organizer_config: OrganizerConfig,
    constraints: ConstraintSet,
    executor: Option<Box<dyn Executor>>,
    ordering_policy: OrderingPolicy,
    kpi_bucket_capacity: Cost,
}

impl DriverBuilder {
    fn new(db: Arc<Database>) -> Self {
        DriverBuilder {
            db,
            analyzer: Box::new(smdb_forecast::analyzers::MovingAverage::new(4)),
            predictor_config: PredictorConfig::default(),
            estimator: None,
            calibrated: None,
            features: vec![FeatureKind::Indexing, FeatureKind::Compression],
            organizer_config: OrganizerConfig::default(),
            constraints: ConstraintSet::none(),
            executor: None,
            ordering_policy: OrderingPolicy::Registration,
            kpi_bucket_capacity: Cost(1000.0),
        }
    }

    /// Sets the workload analyzer.
    pub fn analyzer(mut self, analyzer: Box<dyn WorkloadAnalyzer>) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Sets the predictor configuration.
    pub fn predictor_config(mut self, config: PredictorConfig) -> Self {
        self.predictor_config = config;
        self
    }

    /// Uses a fixed cost estimator (e.g. the logical model).
    pub fn estimator(mut self, estimator: Arc<dyn CostEstimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Uses a calibrated cost model that keeps learning online from every
    /// monitored execution (the paper's adaptive cost estimation).
    pub fn learned_estimator(mut self, model: Arc<CalibratedCostModel>) -> Self {
        self.calibrated = Some(model.clone());
        self.estimator = Some(model);
        self
    }

    /// Sets the managed features (one tuner per feature).
    pub fn features(mut self, features: Vec<FeatureKind>) -> Self {
        self.features = features;
        self
    }

    /// Sets organizer thresholds.
    pub fn organizer(mut self, config: OrganizerConfig) -> Self {
        self.organizer_config = config;
        self
    }

    /// Sets constraints.
    pub fn constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the executor.
    pub fn executor(mut self, executor: Box<dyn Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Sets the feature-ordering policy.
    pub fn ordering_policy(mut self, policy: OrderingPolicy) -> Self {
        self.ordering_policy = policy;
        self
    }

    /// Sets the KPI bucket capacity (ms of work per bucket at 100 %).
    pub fn kpi_bucket_capacity(mut self, capacity: Cost) -> Self {
        self.kpi_bucket_capacity = capacity;
        self
    }

    /// Assembles the driver.
    pub fn build(self) -> Driver {
        let estimator = self.estimator.unwrap_or_else(|| {
            Arc::new(smdb_cost::LogicalCostModel::default()) as Arc<dyn CostEstimator>
        });
        let what_if = WhatIf::new(estimator);
        let tuners = self
            .features
            .iter()
            .map(|&f| standard_tuner(f, what_if.clone()))
            .collect();
        Driver {
            db: self.db,
            history: Mutex::new(WorkloadHistory::new()),
            predictor: WorkloadPredictor::new(self.analyzer, self.predictor_config),
            multi: MultiFeatureTuner::new(tuners, what_if),
            organizer: Organizer::new(self.organizer_config),
            kpis: KpiCollector::new(self.kpi_bucket_capacity, 0.3),
            storage: ConfigStorage::new(),
            constraints: self.constraints,
            executor: self
                .executor
                .unwrap_or_else(|| Box::new(SequentialExecutor::immediate())),
            calibrated: self.calibrated,
            ordering_policy: self.ordering_policy,
            last_bucket_cost: Mutex::new(Cost::ZERO),
            pending_actions: Mutex::new(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

    fn database() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 50).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    TableId(0),
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i % 50) as i64)],
                    None,
                    "pt",
                )
            })
            .collect()
    }

    #[test]
    fn bucket_lifecycle_feeds_history_and_kpis() {
        let db = database();
        let driver = Driver::builder(db).build();
        let report = driver.run_bucket(&queries(20)).unwrap();
        assert_eq!(report.queries_run, 20);
        assert!(report.bucket_cost.ms() > 0.0);
        assert_eq!(driver.kpis().queries_total(), 20);
        let forecast = driver.forecast();
        assert!(!forecast.is_empty());
        assert!(forecast.expected().unwrap().workload.total_weight() > 0.0);
    }

    #[test]
    fn end_to_end_tuning_improves_workload() {
        let db = database();
        let driver = Driver::builder(db.clone()).build();
        // Observe a few buckets of a stable point-lookup workload.
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        let before: Cost = queries(30)
            .iter()
            .map(|q| db.run_query(q).unwrap().output.sim_cost)
            .sum();
        let report = driver.force_tune().unwrap();
        assert!(report.applied_actions > 0, "{report:?}");
        assert_eq!(driver.config_storage().len(), 1);
        let after: Cost = queries(30)
            .iter()
            .map(|q| db.run_query(q).unwrap().output.sim_cost)
            .sum();
        assert!(
            after.ms() < before.ms() * 0.8,
            "before {before} after {after}"
        );
    }

    #[test]
    fn organizer_gates_tuning() {
        let db = database();
        let driver = Driver::builder(db).build();
        // Stable workload: the moving-average forecast matches what is
        // being observed, so the organizer stays quiet.
        for _ in 0..3 {
            driver.run_bucket(&queries(10)).unwrap();
        }
        // A sudden surge: the lagging forecast deviates from the observed
        // bucket cost by far more than the threshold → trigger.
        driver.run_bucket(&queries(80)).unwrap();
        let first = driver.maybe_tune().unwrap();
        assert!(first.is_some());
        assert!(matches!(
            first.unwrap().trigger,
            crate::organizer::TuningTrigger::ForecastShift { .. }
        ));
        // Immediately after: rate-limited.
        let second = driver.maybe_tune().unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn feedback_loop_completes_instances() {
        let db = database();
        let driver = Driver::builder(db).build();
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        driver.force_tune().unwrap();
        // Run more traffic, then a second tuning completes the first
        // instance's after-measurement.
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        driver.force_tune().unwrap();
        let feedback = driver.config_storage().feedback();
        assert_eq!(feedback.len(), 1);
        assert!(feedback[0].observed_improvement.ms() > 0.0);
    }
}

#[cfg(test)]
mod deferred_tests {
    use super::*;
    use crate::executor::SequentialExecutor;
    use smdb_common::{ColumnId, TableId};
    use smdb_query::Query;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

    fn database() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 50).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    TableId(0),
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i % 50) as i64)],
                    None,
                    "pt",
                )
            })
            .collect()
    }

    #[test]
    fn tuning_defers_under_load_and_applies_when_idle() {
        let db = database();
        let driver = Driver::builder(db.clone())
            .features(vec![FeatureKind::Indexing])
            .executor(Box::new(SequentialExecutor::during_low_utilization()))
            // Tiny bucket capacity: the observation buckets count as busy.
            .kpi_bucket_capacity(Cost(1.0))
            .build();
        for _ in 0..3 {
            driver.run_bucket(&queries(100)).unwrap();
        }
        // The system is "busy" (bucket cost >> capacity): tuning defers.
        let report = driver.force_tune().unwrap();
        assert_eq!(report.applied_actions, 0, "{report:?}");
        assert!(driver.pending_actions() > 0);
        assert!(db.engine().current_config().indexes.is_empty());

        // An idle bucket closes → the deferred actions drain.
        driver.run_bucket(&[]).unwrap();
        assert_eq!(driver.pending_actions(), 0);
        assert!(!db.engine().current_config().indexes.is_empty());
    }

    #[test]
    fn drain_pending_is_noop_without_queue() {
        let db = database();
        let driver = Driver::builder(db).build();
        assert_eq!(driver.drain_pending().unwrap(), 0);
        assert_eq!(driver.pending_actions(), 0);
    }
}
