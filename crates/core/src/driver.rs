//! The driver: "the central entity encapsulating all the other
//! components that are responsible for adding self-management
//! capabilities" (Section II-A).
//!
//! The driver owns the workload predictor, the multi-feature tuner, the
//! organizer, the KPI collector, the configuration-instance storage and
//! the constraint set, and mediates their access to the database (plan
//! cache, engine, cost estimators).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use smdb_common::{Cost, LogicalTime, Result};
use smdb_cost::{CalibratedCostModel, CostEstimator, WhatIf};
use smdb_forecast::{
    ForecastSet, PredictorConfig, WorkloadAnalyzer, WorkloadHistory, WorkloadPredictor,
};
use smdb_obs::{span, FlightRecorder, TrailEvent};
use smdb_query::{Database, Query};
use smdb_storage::ConfigInstance;

use crate::config_storage::{ConfigStorage, RollbackRecord, StoredInstance};
use crate::constraints::ConstraintSet;
use crate::durability::{DurabilityManager, PendingReconfigState, RecoveredState, ServingState};
use crate::executor::{ExecutionReport, Executor, SequentialExecutor};
use crate::feature::FeatureKind;
use crate::kpi::{KpiCollector, KpiSnapshot};
use crate::multi::MultiFeatureTuner;
use crate::organizer::{Organizer, OrganizerConfig, TuningTrigger};
use crate::tuner::{standard_tuner, TuningProposal};

/// How the driver orders features in a multi-feature tuning run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Registration order (no analysis).
    Registration,
    /// Descending single-feature impact `W∅/W_A`.
    Impact,
    /// The paper's LP-based order optimization (Section III-B).
    LpOptimized,
}

/// A consistent view of the serving state at one bucket boundary —
/// everything a tuning decision reads, captured once so the decision is
/// a pure function of the tick regardless of what worker threads do to
/// the live collector afterwards. The serving runtime builds a tick
/// after each [`Driver::close_bucket`] and hands it to the tuning
/// thread.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningTick {
    /// Logical time the tick was taken at.
    pub now: LogicalTime,
    /// KPI snapshot at the bucket boundary.
    pub kpis: KpiSnapshot,
    /// Observed workload cost of the last closed bucket.
    pub bucket_cost: Cost,
}

/// How a tuning pass hands its chosen actions to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TuningMode {
    /// Run the executor right away (the embedded / single-threaded path).
    Immediate,
    /// Queue every action for the caller to drain at a bucket boundary —
    /// the serving runtime's path, where the tuning thread only decides
    /// and the control thread applies, so configuration changes never
    /// race live query execution.
    DeferAll,
}

/// Report of one driver-run bucket.
#[derive(Debug, Clone)]
pub struct BucketReport {
    pub queries_run: usize,
    pub bucket_cost: Cost,
    pub now: smdb_common::LogicalTime,
}

/// Report of one tuning run.
#[derive(Debug)]
pub struct TuningRunReport {
    pub trigger: TuningTrigger,
    pub order: Vec<FeatureKind>,
    pub proposals: Vec<TuningProposal>,
    pub applied_actions: usize,
    pub reconfiguration_cost: Cost,
}

/// Report of one rollback to the last good configuration.
#[derive(Debug, Clone)]
pub struct RollbackReport {
    /// Actions it took to restore the last good configuration.
    pub undo_actions: usize,
    /// Queued actions that were abandoned (never applied).
    pub abandoned_actions: usize,
    /// One-time cost of the restore.
    pub reconfiguration_cost: Cost,
}

/// Point-in-time snapshot of the driver's tuning machinery, safe to take
/// from any thread while serving continues.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningState {
    /// Actions queued for a low-utilization window.
    pub pending_actions: usize,
    /// Whether a deferred tuning is still being drained slice by slice.
    pub reconfig_in_flight: bool,
    /// Whether the organizer is paused (degraded mode).
    pub paused: bool,
    /// When the last tuning ran.
    pub last_tuning: Option<smdb_common::LogicalTime>,
    /// Configuration instances stored by the feedback loop.
    pub stored_instances: usize,
    /// Rollbacks recorded so far.
    pub rollbacks: usize,
    /// Buckets closed so far.
    pub buckets_closed: u64,
    /// Tuning passes run (regardless of outcome).
    pub tunings_run: u64,
    /// Configuration actions applied (immediately or via drains).
    pub actions_applied: u64,
    /// Configuration actions the executor deferred at least once.
    pub actions_deferred: u64,
    /// Apply attempts that returned an error.
    pub apply_failures: u64,
}

/// A tuning whose actions the executor deferred: the context needed to
/// store the configuration instance once the drain completes.
#[derive(Debug)]
struct PendingReconfig {
    final_config: ConfigInstance,
    actions: Vec<smdb_storage::ConfigAction>,
    predicted_cost: Cost,
    observed_before: Cost,
    /// Reconfiguration cost accrued over completed slices.
    accrued_cost: Cost,
}

#[derive(Debug, Default)]
struct DriverCounters {
    buckets_closed: AtomicU64,
    tunings_run: AtomicU64,
    actions_applied: AtomicU64,
    actions_deferred: AtomicU64,
    apply_failures: AtomicU64,
}

/// The central self-management entity.
pub struct Driver {
    db: Arc<Database>,
    history: Mutex<WorkloadHistory>,
    predictor: WorkloadPredictor,
    multi: MultiFeatureTuner,
    organizer: Organizer,
    kpis: KpiCollector,
    storage: ConfigStorage,
    /// Constraint set behind its own lock so an external arbiter (the
    /// sharded Organizer splitting one memory budget across shards) can
    /// retarget budgets between ticks. Tuning paths clone it up front
    /// and never hold this lock across engine locks.
    constraints: RwLock<ConstraintSet>,
    executor: Box<dyn Executor>,
    /// Online-learning cost model fed by every monitored execution.
    calibrated: Option<Arc<CalibratedCostModel>>,
    ordering_policy: OrderingPolicy,
    /// Rolling observed workload cost of the last closed bucket.
    last_bucket_cost: Mutex<Cost>,
    /// Actions a utilization-gated executor deferred; retried each bucket
    /// ("the executor can access runtime KPIs to determine favorable
    /// points in time for applying the choices", Section II-D(d)).
    pending_actions: Mutex<Vec<smdb_storage::ConfigAction>>,
    /// Context of the deferred tuning the pending actions realise.
    pending_reconfig: Mutex<Option<PendingReconfig>>,
    /// The configuration at build time — the rollback target before any
    /// instance has been stored.
    baseline_config: ConfigInstance,
    counters: DriverCounters,
    /// Flight recorder every tuning decision lands in (bounded ring;
    /// exportable as JSON, dumped on rollback when auto-dump is on).
    recorder: Arc<FlightRecorder>,
    /// WAL + snapshot manager; `None` keeps the in-memory path free of
    /// durability overhead.
    durability: Option<Arc<DurabilityManager>>,
}

impl Driver {
    /// Starts building a driver for a database.
    pub fn builder(db: Arc<Database>) -> DriverBuilder {
        DriverBuilder::new(db)
    }

    /// The database handle.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The KPI collector.
    pub fn kpis(&self) -> &KpiCollector {
        &self.kpis
    }

    /// The configuration-instance storage (feedback loop).
    pub fn config_storage(&self) -> &ConfigStorage {
        &self.storage
    }

    /// A snapshot of the current constraint set.
    pub fn constraints(&self) -> ConstraintSet {
        self.constraints.read().clone()
    }

    /// Replaces the whole constraint set (takes effect at the next
    /// tuning pass; in-flight passes keep the snapshot they started
    /// with).
    pub fn set_constraints(&self, constraints: ConstraintSet) {
        *self.constraints.write() = constraints;
    }

    /// Retargets just the index memory budget — the lever a global
    /// budget arbiter pulls per shard. The shard-local tuner enforces
    /// the new value on its next proposal (crate-level `tuner` caps
    /// proposals at `effective_index_budget` minus already-configured
    /// index bytes).
    pub fn set_index_memory_budget(&self, bytes: Option<i64>) {
        self.constraints.write().index_memory_bytes = bytes;
    }

    /// The multi-feature tuner.
    pub fn multi(&self) -> &MultiFeatureTuner {
        &self.multi
    }

    /// The organizer (pause/resume and trigger bookkeeping).
    pub fn organizer(&self) -> &Organizer {
        &self.organizer
    }

    /// The configuration the driver was built against — the rollback
    /// target before any instance has been stored.
    pub fn baseline_config(&self) -> &ConfigInstance {
        &self.baseline_config
    }

    /// The flight recorder holding the recent decision trail.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The durability manager, when this driver persists its state.
    pub fn durability(&self) -> Option<&Arc<DurabilityManager>> {
        self.durability.as_ref()
    }

    /// Label of the configuration a rollback would restore right now:
    /// the latest stored instance, or the build-time baseline.
    fn restore_label(&self) -> String {
        if self.storage.last_good_config().is_some() {
            format!("instance-{}", self.storage.len() - 1)
        } else {
            "baseline".to_string()
        }
    }

    /// Records one served query's response time into the KPI window and
    /// the open bucket. The serving runtime calls this from worker
    /// threads; [`Driver::close_bucket`] consumes the accumulation.
    pub fn record_query(&self, latency: Cost) {
        self.kpis.record_query(latency);
    }

    /// Records one served query's scan-dispatch footprint alongside its
    /// response time: `latency` is the (possibly parallel) simulated
    /// latency and `morsels` how many morsels the scan pool executed for
    /// it (0 = inline). The serving runtime calls this instead of
    /// [`Driver::record_query`] when morsel-driven scans are enabled.
    pub fn record_scan(&self, latency: Cost, morsels: u64) {
        self.kpis.record_query(latency);
        self.kpis.record_morsels(morsels);
    }

    /// Closes the current KPI bucket from whatever
    /// [`Driver::record_query`] accumulated: samples engine memory,
    /// snapshots the plan cache into the workload history, updates the
    /// observed bucket cost and advances the logical clock.
    pub fn close_bucket(&self) -> BucketReport {
        let _span = span!("driver", "close_bucket");
        let now = self.db.now();
        {
            let engine = self.db.engine();
            self.kpis
                .record_memory(engine.memory_report().total_bytes());
        }
        self.history
            .lock()
            .observe(now, &self.db.plan_cache().snapshot());
        let close = self.kpis.end_bucket_accumulated();
        *self.last_bucket_cost.lock() = close.busy;
        self.db.advance_time();
        self.counters.buckets_closed.fetch_add(1, Ordering::Relaxed);
        smdb_obs::metrics::counter("driver.buckets_closed").inc();
        smdb_obs::metrics::observe("driver.bucket_busy_ms", close.busy.ms());
        if close.morsels > 0 {
            smdb_obs::metrics::counter("driver.morsels").add(close.morsels);
        }
        self.recorder.record(TrailEvent::BucketClosed {
            at: now.raw(),
            queries: close.queries,
            busy_ms: close.busy.ms(),
            utilization: close.utilization,
            morsels: close.morsels,
        });
        BucketReport {
            queries_run: close.queries as usize,
            bucket_cost: close.busy,
            now,
        }
    }

    /// Builds a [`TuningTick`] — the consistent bucket-boundary view the
    /// serving runtime hands to the tuning thread.
    pub fn tick(&self) -> TuningTick {
        TuningTick {
            now: self.db.now(),
            kpis: self.kpis.snapshot(),
            bucket_cost: *self.last_bucket_cost.lock(),
        }
    }

    /// Runs one bucket of queries through the database: executes each
    /// query (monitoring feeds the plan cache), records KPIs, optionally
    /// trains the calibrated cost model, snapshots the plan cache into
    /// the workload history, and advances the logical clock.
    pub fn run_bucket(&self, queries: &[Query]) -> Result<BucketReport> {
        let config = self.db.engine().current_config();
        for q in queries {
            let result = self.db.run_query(q)?;
            self.record_query(result.output.sim_cost);
            if let Some(model) = &self.calibrated {
                let engine = self.db.engine();
                model.observe(&engine, q, &config, result.output.sim_cost)?;
            }
        }
        let report = self.close_bucket();
        // Retry actions a utilization-gated executor deferred earlier;
        // the bucket just closed, so the KPI window is fresh.
        self.drain_pending()?;
        Ok(report)
    }

    /// Attempts to apply deferred actions (no-op when none are pending or
    /// the executor still defers). Returns how many were applied.
    pub fn drain_pending(&self) -> Result<usize> {
        self.drain_pending_slice(usize::MAX)
    }

    /// Attempts to apply up to `budget` deferred actions — the
    /// slice-budgeted drain the serving runtime uses so one
    /// low-utilization window never stalls readers behind an unbounded
    /// reconfiguration. Returns how many were applied (0 when the
    /// executor still defers; the slice is requeued at the front).
    ///
    /// On an apply error the failed slice is *not* requeued — the engine
    /// may hold a partial prefix of it — and the error propagates; the
    /// caller is expected to invoke [`Driver::rollback_to_last_good`].
    pub fn drain_pending_slice(&self, budget: usize) -> Result<usize> {
        self.drain_slice_inner(&self.kpis.snapshot(), self.db.now(), budget)
    }

    /// Slice-budgeted drain driven by a [`TuningTick`]: the executor's
    /// gating decision and every trail event use the tick's consistent
    /// bucket-boundary view. This is the serving runtime's barrier-drain
    /// entry point.
    pub fn drain_pending_slice_at(&self, tick: &TuningTick, budget: usize) -> Result<usize> {
        self.drain_slice_inner(&tick.kpis, tick.now, budget)
    }

    fn drain_slice_inner(
        &self,
        kpis: &KpiSnapshot,
        at: LogicalTime,
        budget: usize,
    ) -> Result<usize> {
        let slice: Vec<smdb_storage::ConfigAction> = {
            let mut pending = self.pending_actions.lock();
            if pending.is_empty() || budget == 0 {
                return Ok(0);
            }
            let n = budget.min(pending.len());
            pending.drain(..n).collect()
        };
        let _span = span!("driver", "drain_slice", { actions: slice.len() });
        let report = match self.executor.execute(&self.db, kpis, &slice) {
            Ok(report) => report,
            Err(e) => {
                self.counters.apply_failures.fetch_add(1, Ordering::Relaxed);
                smdb_obs::metrics::counter("driver.apply_failures").inc();
                return Err(e);
            }
        };
        if report.deferred > 0 {
            // Still not a favorable point in time; requeue the slice in
            // front of whatever else is waiting.
            let mut pending = self.pending_actions.lock();
            let deferred = slice.len();
            let mut restored = slice;
            restored.extend(pending.drain(..));
            *pending = restored;
            drop(pending);
            self.recorder.record(TrailEvent::SliceDeferred {
                at: at.raw(),
                deferred,
            });
            return Ok(0);
        }
        self.counters
            .actions_applied
            .fetch_add(report.applied as u64, Ordering::Relaxed);
        smdb_obs::metrics::counter("driver.actions_applied").add(report.applied as u64);
        let remaining = self.pending_actions.lock().len();
        self.recorder.record(TrailEvent::SliceApplied {
            at: at.raw(),
            applied: report.applied,
            remaining,
        });
        if let Some(pr) = self.pending_reconfig.lock().as_mut() {
            pr.accrued_cost += report.reconfiguration_cost;
        }
        if remaining == 0 {
            // The deferred tuning is fully applied: store its instance so
            // the feedback loop (and the rollback target) see it.
            if let Some(pr) = self.pending_reconfig.lock().take() {
                let actions = pr.actions.len();
                let instance = StoredInstance {
                    applied_at: self.db.now(),
                    feature: None,
                    config: pr.final_config,
                    actions: pr.actions,
                    predicted_cost: pr.predicted_cost,
                    reconfiguration_cost: pr.accrued_cost,
                    observed_before: pr.observed_before,
                    observed_after: None,
                };
                if let Some(d) = &self.durability {
                    d.log_instance_stored(&instance)?;
                }
                self.storage.store(instance);
                self.kpis.reset_latencies();
                self.recorder.record(TrailEvent::InstanceStored {
                    at: at.raw(),
                    instance: format!("instance-{}", self.storage.len() - 1),
                    actions,
                });
            }
        }
        Ok(report.applied)
    }

    /// Number of actions currently deferred by the executor.
    pub fn pending_actions(&self) -> usize {
        self.pending_actions.lock().len()
    }

    /// Restores the last good configuration after a failed apply:
    /// abandons all queued actions, diffs the engine's current (possibly
    /// partially reconfigured) state against the latest stored instance —
    /// or the build-time baseline when none exists — and applies the
    /// undo atomically. Records a [`RollbackRecord`] and clears the KPI
    /// latency window. Serving continues throughout; only tuning state
    /// is touched.
    pub fn rollback_to_last_good(&self, cause: &str) -> Result<RollbackReport> {
        let _span = span!("driver", "rollback");
        let abandoned: Vec<smdb_storage::ConfigAction> =
            std::mem::take(&mut *self.pending_actions.lock());
        *self.pending_reconfig.lock() = None;
        let restored_label = self.restore_label();
        let target = self
            .storage
            .last_good_config()
            .unwrap_or_else(|| self.baseline_config.clone());
        let undo = {
            let engine = self.db.engine();
            engine.current_config().diff(&target)
        };
        let cost = self.db.apply_config_atomic(&undo)?;
        let record = RollbackRecord {
            at: self.db.now(),
            abandoned_actions: abandoned.clone(),
            restored_config: target,
            cause: cause.to_string(),
        };
        if let Some(d) = &self.durability {
            d.log_rollback(&record)?;
        }
        self.storage.record_rollback(record);
        self.kpis.reset_latencies();
        smdb_obs::metrics::counter("driver.rollbacks").inc();
        self.recorder.record(TrailEvent::ActionRolledBack {
            at: self.db.now().raw(),
            restored: restored_label,
            undo_actions: undo.len(),
            abandoned_actions: abandoned.len(),
            cause: cause.to_string(),
        });
        Ok(RollbackReport {
            undo_actions: undo.len(),
            abandoned_actions: abandoned.len(),
            reconfiguration_cost: cost,
        })
    }

    /// A point-in-time snapshot of the tuning machinery.
    pub fn tuning_state(&self) -> TuningState {
        TuningState {
            pending_actions: self.pending_actions.lock().len(),
            reconfig_in_flight: self.pending_reconfig.lock().is_some(),
            paused: self.organizer.is_paused(),
            last_tuning: self.organizer.last_tuning(),
            stored_instances: self.storage.len(),
            rollbacks: self.storage.rollback_count(),
            buckets_closed: self.counters.buckets_closed.load(Ordering::Relaxed),
            tunings_run: self.counters.tunings_run.load(Ordering::Relaxed),
            actions_applied: self.counters.actions_applied.load(Ordering::Relaxed),
            actions_deferred: self.counters.actions_deferred.load(Ordering::Relaxed),
            apply_failures: self.counters.apply_failures.load(Ordering::Relaxed),
        }
    }

    /// Produces the current forecast from the observed history.
    pub fn forecast(&self) -> ForecastSet {
        self.predictor.predict(&self.history.lock())
    }

    /// Captures the complete serving state at a bucket boundary —
    /// everything a boundary WAL record carries. `bucket` is the number
    /// of buckets fully served and `stats` the cumulative session
    /// statistics the serving runtime accumulated.
    pub fn export_serving_state(
        &self,
        bucket: u64,
        stats: &smdb_query::SessionStats,
    ) -> ServingState {
        let config = smdb_storage::ConfigSnapshot::from(&self.db.engine().current_config());
        let plan_cache = self
            .db
            .plan_cache()
            .snapshot()
            .into_iter()
            .map(|e| {
                (
                    e.example,
                    e.executions,
                    e.total_cost,
                    e.first_seen,
                    e.last_seen,
                )
            })
            .collect();
        // Locks are taken one at a time in the driver's canonical order
        // (history, last_bucket_cost, pending_actions, pending_reconfig)
        // so boundary export cannot deadlock against the tuning thread.
        let history = self.history.lock().export_state();
        let last_bucket_cost = *self.last_bucket_cost.lock();
        let pending_actions = self.pending_actions.lock().clone();
        let pending_reconfig =
            self.pending_reconfig
                .lock()
                .as_ref()
                .map(|pr| PendingReconfigState {
                    final_config: smdb_storage::ConfigSnapshot::from(&pr.final_config),
                    actions: pr.actions.clone(),
                    predicted_cost: pr.predicted_cost,
                    observed_before: pr.observed_before,
                    accrued_cost: pr.accrued_cost,
                });
        let c = &self.counters;
        let counters = [
            &c.buckets_closed,
            &c.tunings_run,
            &c.actions_applied,
            &c.actions_deferred,
            &c.apply_failures,
        ]
        // ordering: relaxed snapshot of independent statistic counters.
        .map(|counter| counter.load(Ordering::Relaxed));
        ServingState {
            bucket,
            stats: stats.clone(),
            clock: self.db.now().raw(),
            config,
            kpi: self.kpis.export_state(),
            history,
            plan_cache,
            organizer_last_tuning: self.organizer.last_tuning().map(|t| t.raw()),
            organizer_paused: self.organizer.is_paused(),
            last_bucket_cost,
            pending_actions,
            pending_reconfig,
            counters,
        }
    }

    /// Logs a bucket boundary to the WAL and, when the snapshot cadence
    /// fires, takes a full snapshot. No-op without a durability manager.
    pub fn persist_boundary(&self, bucket: u64, stats: &smdb_query::SessionStats) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let state = self.export_serving_state(bucket, stats);
        d.log_boundary(&state)?;
        if d.should_snapshot(bucket) {
            self.persist_snapshot_inner(d, &state)?;
        }
        Ok(())
    }

    /// Takes a full snapshot right now (e.g. the run-start snapshot a
    /// durable run writes before serving). No-op without a durability
    /// manager.
    pub fn persist_snapshot(&self, bucket: u64, stats: &smdb_query::SessionStats) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let state = self.export_serving_state(bucket, stats);
        self.persist_snapshot_inner(d, &state)
    }

    fn persist_snapshot_inner(
        &self,
        d: &Arc<DurabilityManager>,
        state: &ServingState,
    ) -> Result<()> {
        let instances = self.storage.snapshot();
        let rollbacks = self.storage.rollbacks();
        let (wal_records, bytes) = {
            let engine = self.db.engine();
            d.take_snapshot(state, &engine, &instances, &rollbacks)?
        };
        self.recorder.record(TrailEvent::SnapshotTaken {
            at: state.clock,
            bucket: state.bucket,
            wal_records,
            bytes,
        });
        Ok(())
    }

    /// Restores this (freshly built) driver from recovered durable
    /// state: re-applies the persisted configuration to the engine,
    /// reinstates the stored instances and rollbacks, and restores the
    /// whole serving state (clock, KPIs, history, plan cache, organizer,
    /// pending tuning, counters). The engine must already hold the
    /// recovered tables at the default configuration. Records a
    /// `recovered` trail event.
    pub fn restore_from_recovery(&self, rec: &RecoveredState) -> Result<()> {
        let target = ConfigInstance::from(&rec.serving.config);
        let redo = {
            let engine = self.db.engine();
            engine.current_config().diff(&target)
        };
        if !redo.is_empty() {
            self.db.apply_config_atomic(&redo)?;
        }
        for inst in &rec.instances {
            self.storage.store(inst.clone());
        }
        for rb in &rec.rollbacks {
            self.storage.record_rollback(rb.clone());
        }
        self.restore_serving_state(&rec.serving);
        smdb_obs::metrics::counter("driver.recoveries").inc();
        self.recorder.record(TrailEvent::Recovered {
            at: self.db.now().raw(),
            bucket: rec.serving.bucket,
            replayed_records: rec.replayed_records,
            dropped_records: rec.dropped_records,
        });
        Ok(())
    }

    fn restore_serving_state(&self, state: &ServingState) {
        self.db.restore_clock(LogicalTime(state.clock));
        self.kpis.restore_state(state.kpi.clone());
        *self.history.lock() = WorkloadHistory::restore_state(state.history.clone());
        {
            let mut cache = self.db.plan_cache();
            cache.clear();
            for (example, executions, total_cost, first_seen, last_seen) in &state.plan_cache {
                cache.restore_entry(
                    example.clone(),
                    *executions,
                    *total_cost,
                    *first_seen,
                    *last_seen,
                );
            }
        }
        if let Some(t) = state.organizer_last_tuning {
            self.organizer.record_tuning(LogicalTime(t));
        }
        if state.organizer_paused {
            self.organizer.pause();
        }
        *self.last_bucket_cost.lock() = state.last_bucket_cost;
        *self.pending_actions.lock() = state.pending_actions.clone();
        *self.pending_reconfig.lock() = state.pending_reconfig.as_ref().map(|p| PendingReconfig {
            final_config: ConfigInstance::from(&p.final_config),
            actions: p.actions.clone(),
            predicted_cost: p.predicted_cost,
            observed_before: p.observed_before,
            accrued_cost: p.accrued_cost,
        });
        let [buckets, tunings, applied, deferred, failures] = state.counters;
        let c = &self.counters;
        for (counter, value) in [
            (&c.buckets_closed, buckets),
            (&c.tunings_run, tunings),
            (&c.actions_applied, applied),
            (&c.actions_deferred, deferred),
            (&c.apply_failures, failures),
        ] {
            // ordering: relaxed counter restore; recovery is single-threaded.
            counter.store(value, Ordering::Relaxed);
        }
    }

    /// Checks the organizer and, when it fires, runs a full tuning pass
    /// applying actions immediately (the embedded / single-threaded
    /// path). Builds its own [`TuningTick`] from the live collector.
    pub fn maybe_tune(&self) -> Result<Option<TuningRunReport>> {
        let tick = self.tick();
        self.maybe_tune_with(&tick, TuningMode::Immediate)
    }

    /// Checks the organizer against a [`TuningTick`] and, when it fires,
    /// runs a tuning pass that only *decides*: every chosen action is
    /// queued for the caller to drain via
    /// [`Driver::drain_pending_slice_at`] at the next bucket boundary.
    /// No-op while a previous decision is still queued or draining.
    pub fn maybe_tune_deferred(&self, tick: &TuningTick) -> Result<Option<TuningRunReport>> {
        if !self.pending_actions.lock().is_empty() || self.pending_reconfig.lock().is_some() {
            return Ok(None);
        }
        self.maybe_tune_with(tick, TuningMode::DeferAll)
    }

    fn maybe_tune_with(
        &self,
        tick: &TuningTick,
        mode: TuningMode,
    ) -> Result<Option<TuningRunReport>> {
        let _span = span!("driver", "maybe_tune");
        // Snapshot once, before any engine lock, so budget retargeting
        // never races a pass midway and no lock-order edge forms.
        let constraints = self.constraints();
        let forecast = self.forecast();
        let Some(expected) = forecast.expected() else {
            return Ok(None);
        };
        let forecast_cost = {
            let engine = self.db.engine();
            let config = engine.current_config();
            self.multi
                .what_if()
                .workload_cost(&engine, &expected.workload, &config)?
        };
        let Some(trigger) = self.organizer.should_tune(
            tick.now,
            tick.bucket_cost,
            forecast_cost,
            &tick.kpis,
            &constraints,
        ) else {
            return Ok(None);
        };
        self.tune_with(trigger, forecast, tick, mode).map(Some)
    }

    /// Forces a tuning pass now (Manual trigger), applying immediately.
    pub fn force_tune(&self) -> Result<TuningRunReport> {
        let forecast = self.forecast();
        let tick = self.tick();
        self.tune_with(
            TuningTrigger::Manual,
            forecast,
            &tick,
            TuningMode::Immediate,
        )
    }

    fn tune_with(
        &self,
        trigger: TuningTrigger,
        forecast: ForecastSet,
        tick: &TuningTick,
        mode: TuningMode,
    ) -> Result<TuningRunReport> {
        let _span = span!("driver", "tune");
        // Same snapshot discipline as `maybe_tune_with`: one clone up
        // front, never the lock itself across engine access.
        let constraints = self.constraints();
        if forecast.expected().is_none() {
            return Err(smdb_common::Error::invalid(
                "cannot tune without an expected forecast",
            ));
        }
        let at = tick.now.raw();
        self.recorder.record(TrailEvent::TuningTriggered {
            at,
            trigger: format!("{trigger:?}"),
        });
        smdb_obs::metrics::counter(&format!("driver.tuning.{}", trigger.label())).inc();
        let (order_idx, proposals, final_config, base_config) = {
            let engine = self.db.engine();
            let base = engine.current_config();
            let n = self.multi.features().len();
            let features = self.multi.features();
            let order_idx: Vec<usize> = match self.ordering_policy {
                OrderingPolicy::Registration => (0..n).collect(),
                OrderingPolicy::Impact => {
                    let report = self
                        .multi
                        .analyze(&engine, &forecast, &base, &constraints)?;
                    report.impact_order()
                }
                OrderingPolicy::LpOptimized => {
                    let report = self
                        .multi
                        .analyze(&engine, &forecast, &base, &constraints)?;
                    let solution = self.multi.lp_order(&report)?;
                    self.recorder.record(TrailEvent::IlpOrderChosen {
                        at,
                        order: solution
                            .order
                            .iter()
                            .map(|&i| features[i].label().to_string())
                            .collect(),
                        objective: solution.objective,
                        dependence: report.dependence.clone(),
                    });
                    solution.order
                }
            };
            // Tune feature by feature so each feature's what-if cache
            // traffic (and proposal) lands in the decision trail
            // individually; chaining the accepted configs is exactly what
            // a single `tune_in_order` over the full order does.
            let mut config = base.clone();
            let mut proposals: Vec<TuningProposal> = Vec::new();
            for &idx in &order_idx {
                let _span = span!("driver", "tune_feature");
                let before = self.multi.what_if().cache_stats().unwrap_or_default();
                let run =
                    self.multi
                        .tune_in_order(&engine, &forecast, &config, &constraints, &[idx])?;
                let stats = self
                    .multi
                    .what_if()
                    .cache_stats()
                    .unwrap_or_default()
                    .since(&before);
                for p in &run.proposals {
                    self.recorder.record(TrailEvent::CandidateAssessed {
                        at,
                        feature: features[idx].label().to_string(),
                        candidates: p.candidates_enumerated,
                        predicted_benefit_ms: p.predicted_benefit.ms(),
                        accepted: p.accepted,
                        cache_hits: stats.hits,
                        cache_misses: stats.misses,
                    });
                }
                smdb_obs::metrics::counter("driver.whatif_cache_hits").add(stats.hits);
                smdb_obs::metrics::counter("driver.whatif_cache_misses").add(stats.misses);
                proposals.extend(run.proposals);
                config = run.final_config;
            }
            (order_idx, proposals, config, base)
        };

        // Hand over the combined action list: execute it now, or queue it
        // all for the caller's barrier drain.
        let actions = base_config.diff(&final_config);
        let report = match mode {
            TuningMode::Immediate => match self.executor.execute(&self.db, &tick.kpis, &actions) {
                Ok(report) => report,
                Err(e) => {
                    self.counters.apply_failures.fetch_add(1, Ordering::Relaxed);
                    smdb_obs::metrics::counter("driver.apply_failures").inc();
                    return Err(e);
                }
            },
            TuningMode::DeferAll => ExecutionReport {
                applied: 0,
                deferred: actions.len(),
                reconfiguration_cost: Cost::ZERO,
            },
        };
        self.counters.tunings_run.fetch_add(1, Ordering::Relaxed);
        self.counters
            .actions_applied
            .fetch_add(report.applied as u64, Ordering::Relaxed);
        self.counters
            .actions_deferred
            .fetch_add(report.deferred as u64, Ordering::Relaxed);
        let now = tick.now;
        self.organizer.record_tuning(now);

        // Feedback loop: complete the previous instance, store this one.
        let observed_before = tick.kpis.mean_response;
        if self.storage.complete_latest(observed_before) {
            if let Some(d) = &self.durability {
                d.log_instance_completed(observed_before)?;
            }
        }
        let predicted_cost = {
            let engine = self.db.engine();
            let expected = forecast.expected().ok_or_else(|| {
                smdb_common::Error::invalid("forecast lost its expected scenario mid-tuning")
            })?;
            self.multi
                .what_if()
                .workload_cost(&engine, &expected.workload, &final_config)?
        };
        if report.deferred > 0 {
            // The change waits — either the utilization-gated executor
            // postponed it, or a defer-all tuning hands it to the caller's
            // barrier drain. Queue it and remember the tuning context so
            // the completed drain stores its instance.
            self.pending_actions.lock().extend(actions.iter().cloned());
            *self.pending_reconfig.lock() = Some(PendingReconfig {
                final_config,
                actions: actions.clone(),
                predicted_cost,
                observed_before,
                accrued_cost: Cost::ZERO,
            });
            self.recorder.record(TrailEvent::ActionsQueued {
                at,
                actions: actions.len(),
            });
        } else if report.applied > 0 {
            let instance = StoredInstance {
                applied_at: now,
                feature: None,
                config: final_config,
                actions: actions.clone(),
                predicted_cost,
                reconfiguration_cost: report.reconfiguration_cost,
                observed_before,
                observed_after: None,
            };
            if let Some(d) = &self.durability {
                d.log_instance_stored(&instance)?;
            }
            self.storage.store(instance);
            self.kpis.reset_latencies();
            self.recorder.record(TrailEvent::ActionsApplied {
                at,
                applied: report.applied,
                reconfiguration_cost_ms: report.reconfiguration_cost.ms(),
            });
            self.recorder.record(TrailEvent::InstanceStored {
                at,
                instance: format!("instance-{}", self.storage.len() - 1),
                actions: actions.len(),
            });
        }

        let order: Vec<FeatureKind> = {
            let features = self.multi.features();
            order_idx.iter().map(|&i| features[i]).collect()
        };
        Ok(TuningRunReport {
            trigger,
            order,
            proposals,
            applied_actions: report.applied,
            reconfiguration_cost: report.reconfiguration_cost,
        })
    }
}

/// Builder wiring the driver's exchangeable components.
pub struct DriverBuilder {
    db: Arc<Database>,
    analyzer: Box<dyn WorkloadAnalyzer>,
    predictor_config: PredictorConfig,
    estimator: Option<Arc<dyn CostEstimator>>,
    calibrated: Option<Arc<CalibratedCostModel>>,
    features: Vec<FeatureKind>,
    organizer_config: OrganizerConfig,
    constraints: ConstraintSet,
    executor: Option<Box<dyn Executor>>,
    ordering_policy: OrderingPolicy,
    kpi_bucket_capacity: Cost,
    recorder: Option<Arc<FlightRecorder>>,
    durability: Option<Arc<DurabilityManager>>,
}

impl DriverBuilder {
    fn new(db: Arc<Database>) -> Self {
        DriverBuilder {
            db,
            analyzer: Box::new(smdb_forecast::analyzers::MovingAverage::new(4)),
            predictor_config: PredictorConfig::default(),
            estimator: None,
            calibrated: None,
            features: vec![FeatureKind::Indexing, FeatureKind::Compression],
            organizer_config: OrganizerConfig::default(),
            constraints: ConstraintSet::none(),
            executor: None,
            ordering_policy: OrderingPolicy::Registration,
            kpi_bucket_capacity: Cost(1000.0),
            recorder: None,
            durability: None,
        }
    }

    /// Sets the workload analyzer.
    pub fn analyzer(mut self, analyzer: Box<dyn WorkloadAnalyzer>) -> Self {
        self.analyzer = analyzer;
        self
    }

    /// Sets the predictor configuration.
    pub fn predictor_config(mut self, config: PredictorConfig) -> Self {
        self.predictor_config = config;
        self
    }

    /// Uses a fixed cost estimator (e.g. the logical model).
    pub fn estimator(mut self, estimator: Arc<dyn CostEstimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Uses a calibrated cost model that keeps learning online from every
    /// monitored execution (the paper's adaptive cost estimation).
    pub fn learned_estimator(mut self, model: Arc<CalibratedCostModel>) -> Self {
        self.calibrated = Some(model.clone());
        self.estimator = Some(model);
        self
    }

    /// Sets the managed features (one tuner per feature).
    pub fn features(mut self, features: Vec<FeatureKind>) -> Self {
        self.features = features;
        self
    }

    /// Sets organizer thresholds.
    pub fn organizer(mut self, config: OrganizerConfig) -> Self {
        self.organizer_config = config;
        self
    }

    /// Sets constraints.
    pub fn constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Sets the executor.
    pub fn executor(mut self, executor: Box<dyn Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Sets the feature-ordering policy.
    pub fn ordering_policy(mut self, policy: OrderingPolicy) -> Self {
        self.ordering_policy = policy;
        self
    }

    /// Sets the KPI bucket capacity (ms of work per bucket at 100 %).
    pub fn kpi_bucket_capacity(mut self, capacity: Cost) -> Self {
        self.kpi_bucket_capacity = capacity;
        self
    }

    /// Uses a caller-owned flight recorder (e.g. shared with a test or
    /// the serving runtime's report). Defaults to a fresh 512-event ring.
    pub fn flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Persists the driver's state through a durability manager (WAL +
    /// snapshots). Without one, nothing is ever written — the in-memory
    /// path carries no durability overhead.
    pub fn durability(mut self, manager: Arc<DurabilityManager>) -> Self {
        self.durability = Some(manager);
        self
    }

    /// Assembles the driver.
    pub fn build(self) -> Driver {
        let estimator = self.estimator.unwrap_or_else(|| {
            Arc::new(smdb_cost::LogicalCostModel::default()) as Arc<dyn CostEstimator>
        });
        let what_if = WhatIf::new(estimator);
        let tuners = self
            .features
            .iter()
            .map(|&f| standard_tuner(f, what_if.clone()))
            .collect();
        let baseline_config = self.db.engine().current_config();
        Driver {
            db: self.db,
            history: Mutex::new(WorkloadHistory::new()),
            predictor: WorkloadPredictor::new(self.analyzer, self.predictor_config),
            multi: MultiFeatureTuner::new(tuners, what_if),
            organizer: Organizer::new(self.organizer_config),
            kpis: KpiCollector::new(self.kpi_bucket_capacity, 0.3),
            storage: ConfigStorage::new(),
            constraints: RwLock::new(self.constraints),
            executor: self
                .executor
                .unwrap_or_else(|| Box::new(SequentialExecutor::immediate())),
            calibrated: self.calibrated,
            ordering_policy: self.ordering_policy,
            last_bucket_cost: Mutex::new(Cost::ZERO),
            pending_actions: Mutex::new(Vec::new()),
            pending_reconfig: Mutex::new(None),
            baseline_config,
            counters: DriverCounters::default(),
            recorder: self
                .recorder
                .unwrap_or_else(|| Arc::new(FlightRecorder::new(512))),
            durability: self.durability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

    fn database() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 50).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    TableId(0),
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i % 50) as i64)],
                    None,
                    "pt",
                )
            })
            .collect()
    }

    #[test]
    fn bucket_lifecycle_feeds_history_and_kpis() {
        let db = database();
        let driver = Driver::builder(db).build();
        let report = driver.run_bucket(&queries(20)).unwrap();
        assert_eq!(report.queries_run, 20);
        assert!(report.bucket_cost.ms() > 0.0);
        assert_eq!(driver.kpis().queries_total(), 20);
        let forecast = driver.forecast();
        assert!(!forecast.is_empty());
        assert!(forecast.expected().unwrap().workload.total_weight() > 0.0);
    }

    #[test]
    fn end_to_end_tuning_improves_workload() {
        let db = database();
        let driver = Driver::builder(db.clone()).build();
        // Observe a few buckets of a stable point-lookup workload.
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        let before: Cost = queries(30)
            .iter()
            .map(|q| db.run_query(q).unwrap().output.sim_cost)
            .sum();
        let report = driver.force_tune().unwrap();
        assert!(report.applied_actions > 0, "{report:?}");
        assert_eq!(driver.config_storage().len(), 1);
        let after: Cost = queries(30)
            .iter()
            .map(|q| db.run_query(q).unwrap().output.sim_cost)
            .sum();
        assert!(
            after.ms() < before.ms() * 0.8,
            "before {before} after {after}"
        );
    }

    #[test]
    fn organizer_gates_tuning() {
        let db = database();
        let driver = Driver::builder(db).build();
        // Stable workload: the moving-average forecast matches what is
        // being observed, so the organizer stays quiet.
        for _ in 0..3 {
            driver.run_bucket(&queries(10)).unwrap();
        }
        // A sudden surge: the lagging forecast deviates from the observed
        // bucket cost by far more than the threshold → trigger.
        driver.run_bucket(&queries(80)).unwrap();
        let first = driver.maybe_tune().unwrap();
        assert!(first.is_some());
        assert!(matches!(
            first.unwrap().trigger,
            crate::organizer::TuningTrigger::ForecastShift { .. }
        ));
        // Immediately after: rate-limited.
        let second = driver.maybe_tune().unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn feedback_loop_completes_instances() {
        let db = database();
        let driver = Driver::builder(db).build();
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        driver.force_tune().unwrap();
        // Run more traffic, then a second tuning completes the first
        // instance's after-measurement.
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        driver.force_tune().unwrap();
        let feedback = driver.config_storage().feedback();
        assert_eq!(feedback.len(), 1);
        assert!(feedback[0].observed_improvement.ms() > 0.0);
    }
}

#[cfg(test)]
mod deferred_tests {
    use super::*;
    use crate::executor::SequentialExecutor;
    use smdb_common::{ColumnId, TableId};
    use smdb_query::Query;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

    fn database() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 50).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    TableId(0),
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i % 50) as i64)],
                    None,
                    "pt",
                )
            })
            .collect()
    }

    #[test]
    fn tuning_defers_under_load_and_applies_when_idle() {
        let db = database();
        let driver = Driver::builder(db.clone())
            .features(vec![FeatureKind::Indexing])
            .executor(Box::new(SequentialExecutor::during_low_utilization()))
            // Tiny bucket capacity: the observation buckets count as busy.
            .kpi_bucket_capacity(Cost(1.0))
            .build();
        for _ in 0..3 {
            driver.run_bucket(&queries(100)).unwrap();
        }
        // The system is "busy" (bucket cost >> capacity): tuning defers.
        let report = driver.force_tune().unwrap();
        assert_eq!(report.applied_actions, 0, "{report:?}");
        assert!(driver.pending_actions() > 0);
        assert!(db.engine().current_config().indexes.is_empty());

        // An idle bucket closes → the deferred actions drain.
        driver.run_bucket(&[]).unwrap();
        assert_eq!(driver.pending_actions(), 0);
        assert!(!db.engine().current_config().indexes.is_empty());
    }

    #[test]
    fn drain_pending_is_noop_without_queue() {
        let db = database();
        let driver = Driver::builder(db).build();
        assert_eq!(driver.drain_pending().unwrap(), 0);
        assert_eq!(driver.pending_actions(), 0);
    }

    #[test]
    fn slice_budgeted_drain_completes_deferred_tuning() {
        let db = database();
        let driver = Driver::builder(db.clone())
            .features(vec![FeatureKind::Indexing])
            .executor(Box::new(SequentialExecutor::during_low_utilization()))
            .kpi_bucket_capacity(Cost(1.0))
            .build();
        for _ in 0..3 {
            driver.run_bucket(&queries(100)).unwrap();
        }
        let report = driver.force_tune().unwrap();
        assert_eq!(report.applied_actions, 0);
        let queued = driver.pending_actions();
        assert!(queued > 1, "need several actions for a multi-slice drain");
        let state = driver.tuning_state();
        assert!(state.reconfig_in_flight);
        assert_eq!(state.stored_instances, 0);
        assert_eq!(state.actions_deferred as usize, queued);

        // Idle bucket → low utilization, but drain only one action per
        // slice; the tuning instance is stored only once fully drained.
        driver.close_bucket();
        let mut slices = 0;
        while driver.pending_actions() > 0 {
            assert_eq!(driver.drain_pending_slice(1).unwrap(), 1);
            slices += 1;
            if driver.pending_actions() > 0 {
                assert!(
                    driver.config_storage().is_empty(),
                    "instance stored before the drain completed"
                );
            }
        }
        assert_eq!(slices, queued);
        assert_eq!(driver.config_storage().len(), 1);
        let state = driver.tuning_state();
        assert!(!state.reconfig_in_flight);
        assert_eq!(state.actions_applied as usize, queued);
        let stored = &driver.config_storage().snapshot()[0];
        assert!(
            stored.reconfiguration_cost.ms() > 0.0,
            "accrued over slices"
        );
        assert_eq!(stored.config, db.engine().current_config());
    }

    #[test]
    fn rollback_restores_baseline_when_nothing_stored() {
        let db = database();
        let driver = Driver::builder(db.clone())
            .features(vec![FeatureKind::Indexing])
            .build();
        // Simulate a partial reconfiguration outside the feedback loop.
        db.apply_config(&[smdb_storage::ConfigAction::CreateIndex {
            target: smdb_common::ChunkColumnRef::new(0, 0, 0),
            kind: smdb_storage::IndexKind::Hash,
        }])
        .unwrap();
        assert_ne!(db.engine().current_config(), *driver.baseline_config());
        let report = driver.rollback_to_last_good("injected failure").unwrap();
        assert_eq!(report.undo_actions, 1);
        assert_eq!(db.engine().current_config(), *driver.baseline_config());
        assert_eq!(driver.config_storage().rollback_count(), 1);
        assert_eq!(
            driver.config_storage().rollbacks()[0].cause,
            "injected failure"
        );
        assert_eq!(driver.tuning_state().rollbacks, 1);
    }

    #[test]
    fn rollback_targets_latest_stored_instance() {
        let db = database();
        let driver = Driver::builder(db.clone()).build();
        for _ in 0..3 {
            driver.run_bucket(&queries(30)).unwrap();
        }
        driver.force_tune().unwrap();
        let good = driver.config_storage().latest_config().unwrap();
        assert_eq!(db.engine().current_config(), good);
        // A later partial change fails mid-way (simulated): roll back.
        db.apply_config(&[smdb_storage::ConfigAction::SetKnob {
            knob: smdb_storage::config::KnobKind::BufferPoolMb,
            value: 4096.0,
        }])
        .unwrap();
        assert_ne!(db.engine().current_config(), good);
        driver.rollback_to_last_good("apply failed").unwrap();
        assert_eq!(db.engine().current_config(), good);
        // KPI utilization is stale until the next bucket closes.
        assert_eq!(driver.kpis().current_utilization(), None);
    }
}
