//! # smdb-core — the self-management framework
//!
//! The paper's contribution (Sections II and III): a component-based
//! framework that adds self-management capabilities to a database system
//! with a strict separation of concerns. Components are trait objects
//! with narrow interfaces, so every one of them is exchangeable and
//! reusable — the property the paper's architecture diagram (Figure 1)
//! promises.
//!
//! * [`driver`] — the central entity encapsulating all components and
//!   the interface to the database (plan cache, cost estimators, KPIs,
//!   configuration).
//! * [`tuner`] — the per-feature tuning pipeline:
//!   [`enumerator`] → [`assessor`] → [`selectors`] → [`executor`].
//! * [`organizer`] — orchestration: when to tune, which features, in
//!   what order; enforces constraints and reacts to runtime KPIs.
//! * [`multi`] — combined tuning of multiple features (Section III):
//!   automatic dependence ratios `d_{A,B}`, impact ratios `W∅/W_A`, and
//!   the LP-based order optimization.
//! * [`constraints`] — DBMS-related and hardware constraints, with
//!   hardware taking precedence on conflict (Section II-A(c)).
//! * [`kpi`] — runtime KPI collection (response times, memory,
//!   utilization) driving tuning triggers and low-utilization windows.
//! * [`config_storage`] — the configuration-instance history enabling
//!   the feedback loop on past tuning decisions.

pub mod assessor;
pub mod candidate;
pub mod config_storage;
pub mod constraints;
pub mod driver;
pub mod durability;
pub mod enumerator;
pub mod executor;
pub mod feature;
pub mod kpi;
pub mod multi;
pub mod organizer;
pub mod plugin;
pub mod selectors;
pub mod tuner;

pub use assessor::{Assessor, WhatIfAssessor};
pub use candidate::{Assessment, Candidate, SelectionInput};
pub use config_storage::{ConfigStorage, RollbackRecord, StoredInstance};
pub use constraints::ConstraintSet;
pub use driver::{
    BucketReport, Driver, DriverBuilder, OrderingPolicy, RollbackReport, TuningRunReport,
    TuningState, TuningTick,
};
pub use durability::{
    recover, DurabilityConfig, DurabilityManager, DurabilityStats, PendingReconfigState,
    RecoveredState, ServingState,
};
pub use enumerator::Enumerator;
pub use executor::{ExecutionReport, ExecutionStrategy, Executor, SequentialExecutor};
pub use feature::FeatureKind;
pub use kpi::{BucketClose, KpiCollector, KpiSnapshot};
pub use multi::{DependencyReport, MultiFeatureTuner};
pub use organizer::{Organizer, OrganizerConfig, TuningTrigger};
pub use plugin::{PluginHost, SelfDrivingPlugin, SelfManagementPlugin};
pub use selectors::Selector;
pub use tuner::{Tuner, TuningProposal};
