//! Executors (Section II-D(d)).
//!
//! "The executor takes care of applying the choices that were selected
//! previously. There are different application strategies regarding
//! order, point in time and sequential or parallel application. The
//! executor can access runtime KPIs to determine favorable points in time
//! for applying the choices."

use smdb_common::{Cost, Result};
use smdb_query::Database;
use smdb_storage::ConfigAction;

use crate::kpi::KpiSnapshot;

/// When the executor applies the chosen actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Apply immediately, in selection order.
    Immediate,
    /// Apply only while system utilization is below the collector's
    /// low-utilization threshold; otherwise defer.
    DuringLowUtilization,
}

/// Outcome of one execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Actions actually applied.
    pub applied: usize,
    /// Actions deferred (waiting for a better point in time).
    pub deferred: usize,
    /// Measured one-time reconfiguration cost of the applied actions.
    pub reconfiguration_cost: Cost,
}

/// Applies configuration actions to the database.
pub trait Executor: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Applies (all or part of) `actions`, returning what happened.
    ///
    /// KPIs arrive as a [`KpiSnapshot`] — one consistent view taken at a
    /// bucket boundary — so a gating decision cannot race live worker
    /// updates to the collector.
    fn execute(
        &self,
        db: &Database,
        kpis: &KpiSnapshot,
        actions: &[ConfigAction],
    ) -> Result<ExecutionReport>;
}

/// The default executor: sequential application honouring a strategy.
#[derive(Debug, Clone)]
pub struct SequentialExecutor {
    pub strategy: ExecutionStrategy,
}

impl SequentialExecutor {
    /// Immediate sequential execution.
    pub fn immediate() -> Self {
        SequentialExecutor {
            strategy: ExecutionStrategy::Immediate,
        }
    }

    /// Low-utilization-gated execution.
    pub fn during_low_utilization() -> Self {
        SequentialExecutor {
            strategy: ExecutionStrategy::DuringLowUtilization,
        }
    }
}

impl Executor for SequentialExecutor {
    fn name(&self) -> &str {
        match self.strategy {
            ExecutionStrategy::Immediate => "sequential_immediate",
            ExecutionStrategy::DuringLowUtilization => "sequential_low_util",
        }
    }

    fn execute(
        &self,
        db: &Database,
        kpis: &KpiSnapshot,
        actions: &[ConfigAction],
    ) -> Result<ExecutionReport> {
        if self.strategy == ExecutionStrategy::DuringLowUtilization && !kpis.is_low_utilization() {
            return Ok(ExecutionReport {
                applied: 0,
                deferred: actions.len(),
                reconfiguration_cost: Cost::ZERO,
            });
        }
        let cost = db.apply_config(actions)?;
        Ok(ExecutionReport {
            applied: actions.len(),
            deferred: 0,
            reconfiguration_cost: cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::KpiCollector;
    use smdb_common::ChunkColumnRef;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, IndexKind, Schema, StorageEngine, Table};

    fn db() -> std::sync::Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int((0..100).collect())], 50)
                .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn actions() -> Vec<ConfigAction> {
        vec![ConfigAction::CreateIndex {
            target: ChunkColumnRef::new(0, 0, 0),
            kind: IndexKind::Hash,
        }]
    }

    #[test]
    fn immediate_applies_and_reports_cost() {
        let db = db();
        let kpis = KpiCollector::default();
        let report = SequentialExecutor::immediate()
            .execute(&db, &kpis.snapshot(), &actions())
            .unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.deferred, 0);
        assert!(report.reconfiguration_cost.ms() > 0.0);
        assert_eq!(db.engine().current_config().indexes.len(), 1);
    }

    #[test]
    fn low_utilization_gate_defers_under_load() {
        let db = db();
        let kpis = KpiCollector::default();
        // Saturate utilization.
        for _ in 0..50 {
            kpis.record_query(Cost(100.0));
        }
        kpis.end_bucket(Cost(100.0) * 50.0);
        let report = SequentialExecutor::during_low_utilization()
            .execute(&db, &kpis.snapshot(), &actions())
            .unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.deferred, 1);
        assert!(db.engine().current_config().indexes.is_empty());
    }

    #[test]
    fn low_utilization_gate_applies_when_idle() {
        let db = db();
        let kpis = KpiCollector::default();
        kpis.end_bucket(Cost(0.1));
        let report = SequentialExecutor::during_low_utilization()
            .execute(&db, &kpis.snapshot(), &actions())
            .unwrap();
        assert_eq!(report.applied, 1);
    }
}
