//! The driver's durability layer: WAL + snapshots of the serving state.
//!
//! A durable run logs every tuning-state transition to an append-only
//! WAL (`smdb_durable::Wal`) and periodically writes a full snapshot —
//! raw table data, the applied configuration, the tuned `ConfigStorage`
//! instances and the whole serving state (KPI windows, workload history,
//! plan cache, organizer, counters). Recovery replays the WAL tail over
//! the latest valid snapshot, so a restart resumes with the *tuned*
//! physical design instead of re-tuning from cold.
//!
//! WAL record bodies are tagged:
//!
//! | tag | record              | written by                          |
//! |-----|---------------------|-------------------------------------|
//! | 1   | `Boundary`          | control thread, after each barrier  |
//! | 2   | `InstanceStored`    | feedback loop (tune / drain)        |
//! | 3   | `InstanceCompleted` | feedback loop (`complete_latest`)   |
//! | 4   | `Rollback`          | failed-apply rollback               |
//!
//! The serving runtime's ack rendezvous guarantees all tuner-thread
//! records for tick *t* land before the control thread appends boundary
//! *t+1*, so the WAL record order — like the decision trail — is
//! deterministic for a given seed.
//!
//! Snapshot cadence is the durability layer's tunable: frequent
//! snapshots shorten recovery (fewer records to replay — a lower RTO)
//! but multiply write amplification, since each snapshot rewrites the
//! full state the WAL describes incrementally. [`DurabilityStats`]
//! surfaces both sides as KPIs.

use std::sync::Arc;

use parking_lot::Mutex;
use smdb_common::{ColumnId, Cost, Error, LogicalTime, Result, TableId};
use smdb_durable::{ByteReader, ByteWriter, Persistence, SnapshotStore, Wal};
use smdb_forecast::{TemplateHistory, WorkloadHistoryState};
use smdb_query::{Query, SessionStats};
use smdb_storage::persist as storage_persist;
use smdb_storage::{
    Aggregate, AggregateOp, ConfigAction, ConfigSnapshot, PredicateOp, ScanPredicate,
    StorageEngine, Table, Value,
};

use crate::config_storage::{RollbackRecord, StoredInstance};
use crate::feature::FeatureKind;
use crate::kpi::KpiState;

/// Blob name of the write-ahead log.
pub const WAL_NAME: &str = "wal.log";
/// Name prefix of snapshot blobs.
pub const SNAPSHOT_PREFIX: &str = "snap-";
/// Format version tag at the head of every snapshot payload.
const SNAPSHOT_VERSION: u8 = 1;

const TAG_BOUNDARY: u8 = 1;
const TAG_INSTANCE_STORED: u8 = 2;
const TAG_INSTANCE_COMPLETED: u8 = 3;
const TAG_ROLLBACK: u8 = 4;

/// Durability tunables.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Take a full snapshot every N buckets (0 disables periodic
    /// snapshots; the run-start snapshot is always written). Lower
    /// values shorten recovery, higher values cut write amplification.
    pub snapshot_every_buckets: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            snapshot_every_buckets: 8,
        }
    }
}

/// Write-side KPIs of the durability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DurabilityStats {
    /// WAL records appended this run.
    pub wal_records: u64,
    /// WAL bytes appended this run.
    pub wal_bytes: u64,
    /// Snapshots taken this run.
    pub snapshots_taken: u64,
    /// Snapshot bytes written this run.
    pub snapshot_bytes: u64,
    /// Write amplification: total durable bytes per WAL byte. 1.0 means
    /// pure logging; each snapshot pushes it up — the cadence trade-off.
    pub write_amplification: f64,
}

#[derive(Debug, Default)]
struct ManagerState {
    next_seq: u64,
    wal_records: u64,
    wal_bytes: u64,
    snapshots_taken: u64,
    snapshot_bytes: u64,
}

/// Owns the WAL and the snapshot store of one durable run.
pub struct DurabilityManager {
    persistence: Arc<dyn Persistence>,
    wal: Wal,
    snapshots: SnapshotStore,
    config: DurabilityConfig,
    state: Mutex<ManagerState>,
}

impl std::fmt::Debug for DurabilityManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityManager")
            .field("config", &self.config)
            .field("state", &self.state.lock())
            .finish_non_exhaustive()
    }
}

impl DurabilityManager {
    /// A manager over an empty (or to-be-overwritten) log.
    pub fn new(persistence: Arc<dyn Persistence>, config: DurabilityConfig) -> Self {
        Self::with_next_seq(persistence, config, 0)
    }

    /// A manager resuming after recovery: `next_seq` is the number of
    /// valid WAL records already on disk (appends continue after them).
    pub fn with_next_seq(
        persistence: Arc<dyn Persistence>,
        config: DurabilityConfig,
        next_seq: u64,
    ) -> Self {
        DurabilityManager {
            persistence,
            wal: Wal::new(WAL_NAME),
            snapshots: SnapshotStore::new(SNAPSHOT_PREFIX),
            config,
            state: Mutex::new(ManagerState {
                next_seq,
                ..ManagerState::default()
            }),
        }
    }

    /// The durability configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// The backing persistence.
    pub fn persistence(&self) -> &Arc<dyn Persistence> {
        &self.persistence
    }

    /// Whether the cadence calls for a snapshot after `bucket` completed
    /// buckets (run-start snapshots are requested explicitly).
    pub fn should_snapshot(&self, bucket: u64) -> bool {
        let every = self.config.snapshot_every_buckets;
        every > 0 && bucket > 0 && bucket % every == 0
    }

    /// Write-side statistics for KPI reporting.
    pub fn stats(&self) -> DurabilityStats {
        let s = self.state.lock();
        let total = s.wal_bytes + s.snapshot_bytes;
        DurabilityStats {
            wal_records: s.wal_records,
            wal_bytes: s.wal_bytes,
            snapshots_taken: s.snapshots_taken,
            snapshot_bytes: s.snapshot_bytes,
            write_amplification: if s.wal_bytes > 0 {
                total as f64 / s.wal_bytes as f64
            } else {
                0.0
            },
        }
    }

    /// Total valid WAL records (the next record's sequence number).
    pub fn wal_records(&self) -> u64 {
        self.state.lock().next_seq
    }

    fn append(&self, body: &[u8]) -> Result<()> {
        let mut state = self.state.lock();
        let seq = state.next_seq;
        let bytes = self.wal.append(self.persistence.as_ref(), seq, body)?;
        state.next_seq += 1;
        state.wal_records += 1;
        state.wal_bytes += bytes;
        smdb_obs::metrics::counter("durable.wal_records").inc();
        Ok(())
    }

    /// Logs a bucket-boundary serving state.
    pub fn log_boundary(&self, state: &ServingState) -> Result<()> {
        let mut w = ByteWriter::new();
        w.u8(TAG_BOUNDARY);
        write_serving_state(&mut w, state);
        self.append(&w.into_bytes())
    }

    /// Logs a newly stored configuration instance.
    pub fn log_instance_stored(&self, instance: &StoredInstance) -> Result<()> {
        let mut w = ByteWriter::new();
        w.u8(TAG_INSTANCE_STORED);
        write_stored_instance(&mut w, instance);
        self.append(&w.into_bytes())
    }

    /// Logs the feedback loop completing the latest open instance.
    pub fn log_instance_completed(&self, observed_after: Cost) -> Result<()> {
        let mut w = ByteWriter::new();
        w.u8(TAG_INSTANCE_COMPLETED);
        w.f64(observed_after.0);
        self.append(&w.into_bytes())
    }

    /// Logs a rollback to the last good configuration.
    pub fn log_rollback(&self, record: &RollbackRecord) -> Result<()> {
        let mut w = ByteWriter::new();
        w.u8(TAG_ROLLBACK);
        write_rollback_record(&mut w, record);
        self.append(&w.into_bytes())
    }

    /// Writes a full snapshot (version = `serving.bucket`) superseding
    /// all WAL records so far. Returns `(wal_records_superseded, bytes)`.
    pub fn take_snapshot(
        &self,
        serving: &ServingState,
        engine: &StorageEngine,
        instances: &[StoredInstance],
        rollbacks: &[RollbackRecord],
    ) -> Result<(u64, u64)> {
        let wal_records = self.state.lock().next_seq;
        let mut w = ByteWriter::new();
        w.u8(SNAPSHOT_VERSION);
        w.u64(wal_records);
        write_serving_state(&mut w, serving);
        let tables: Vec<&Table> = engine.tables().map(|(_, t)| t).collect();
        w.usize(tables.len());
        for table in tables {
            storage_persist::write_table(&mut w, table)?;
        }
        w.usize(instances.len());
        for inst in instances {
            write_stored_instance(&mut w, inst);
        }
        w.usize(rollbacks.len());
        for rb in rollbacks {
            write_rollback_record(&mut w, rb);
        }
        let bytes =
            self.snapshots
                .write(self.persistence.as_ref(), serving.bucket, &w.into_bytes())?;
        let mut state = self.state.lock();
        state.snapshots_taken += 1;
        state.snapshot_bytes += bytes;
        smdb_obs::metrics::counter("durable.snapshots").inc();
        Ok((wal_records, bytes))
    }
}

/// Everything recovery reconstructs from the durable store.
#[derive(Debug)]
pub struct RecoveredState {
    /// The serving state at the last valid boundary.
    pub serving: ServingState,
    /// Raw tables, in id order, ready for `StorageEngine::create_table`.
    pub tables: Vec<Table>,
    /// Stored configuration instances, snapshot state plus WAL replay.
    pub instances: Vec<StoredInstance>,
    /// Recorded rollbacks, snapshot state plus WAL replay.
    pub rollbacks: Vec<RollbackRecord>,
    /// WAL records replayed over the snapshot.
    pub replayed_records: u64,
    /// WAL records dropped after the last valid prefix.
    pub dropped_records: u64,
    /// Total valid WAL records — the resumed manager's next sequence.
    pub wal_records: u64,
}

/// Reads the durable store back: latest valid snapshot plus the valid
/// WAL tail. Returns `Ok(None)` when no valid snapshot exists (nothing
/// was ever persisted, or every snapshot is corrupt — there is no base
/// state to replay onto). A corrupt WAL tail is truncated in place so
/// subsequent appends extend the valid prefix.
pub fn recover(p: &dyn Persistence, _config: &DurabilityConfig) -> Result<Option<RecoveredState>> {
    let snapshots = SnapshotStore::new(SNAPSHOT_PREFIX);
    let Some((_, payload)) = snapshots.latest_valid(p)? else {
        return Ok(None);
    };
    let mut r = ByteReader::new(&payload);
    let version = r.u8()?;
    if version != SNAPSHOT_VERSION {
        return Err(Error::invalid(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let wal_records_at_snapshot = r.u64()?;
    let mut serving = read_serving_state(&mut r)?;
    let n = r.usize()?;
    let mut tables = Vec::with_capacity(n.min(1 << 10));
    for _ in 0..n {
        tables.push(storage_persist::read_table(&mut r)?);
    }
    let n = r.usize()?;
    let mut instances = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        instances.push(read_stored_instance(&mut r)?);
    }
    let n = r.usize()?;
    let mut rollbacks = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rollbacks.push(read_rollback_record(&mut r)?);
    }

    // Replay the WAL tail over the snapshot: records the snapshot
    // already covers are skipped by sequence number.
    let raw = p.read(WAL_NAME)?.unwrap_or_default();
    let wal = smdb_durable::read_prefix(&raw);
    let mut replayed = 0u64;
    for record in &wal.records {
        if record.seq < wal_records_at_snapshot {
            continue;
        }
        replay_record(&record.body, &mut serving, &mut instances, &mut rollbacks)?;
        replayed += 1;
    }
    if wal.dropped_bytes > 0 {
        // Degrade to the last valid prefix: future appends must extend
        // it, not a corrupt tail.
        p.write_atomic(WAL_NAME, &raw[..wal.valid_bytes as usize])?;
    }
    Ok(Some(RecoveredState {
        serving,
        tables,
        instances,
        rollbacks,
        replayed_records: replayed,
        dropped_records: wal.dropped_records,
        wal_records: wal.records.len() as u64,
    }))
}

fn replay_record(
    body: &[u8],
    serving: &mut ServingState,
    instances: &mut Vec<StoredInstance>,
    rollbacks: &mut Vec<RollbackRecord>,
) -> Result<()> {
    let mut r = ByteReader::new(body);
    match r.u8()? {
        TAG_BOUNDARY => *serving = read_serving_state(&mut r)?,
        TAG_INSTANCE_STORED => instances.push(read_stored_instance(&mut r)?),
        TAG_INSTANCE_COMPLETED => {
            let after = Cost(r.f64()?);
            // Mirror `ConfigStorage::complete_latest`.
            if let Some(inst) = instances
                .iter_mut()
                .rev()
                .find(|i| i.observed_after.is_none())
            {
                inst.observed_after = Some(after);
            }
        }
        TAG_ROLLBACK => rollbacks.push(read_rollback_record(&mut r)?),
        other => return Err(Error::invalid(format!("unknown WAL record tag {other}"))),
    }
    Ok(())
}

/// A deferred tuning's context, flattened for serialization (the
/// driver-internal form holds the same fields).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingReconfigState {
    /// The configuration once the drain completes.
    pub final_config: ConfigSnapshot,
    /// The full action list of the tuning.
    pub actions: Vec<ConfigAction>,
    /// Predicted workload cost after the change.
    pub predicted_cost: Cost,
    /// Mean observed response before the change.
    pub observed_before: Cost,
    /// Reconfiguration cost accrued over completed slices.
    pub accrued_cost: Cost,
}

/// The driver's complete serving state at one bucket boundary — what a
/// boundary WAL record carries and recovery restores.
#[derive(Debug, Clone)]
pub struct ServingState {
    /// Buckets fully served (serving resumes at this bucket index).
    pub bucket: u64,
    /// Cumulative merged session statistics.
    pub stats: SessionStats,
    /// The database's logical clock.
    pub clock: u64,
    /// The applied configuration.
    pub config: ConfigSnapshot,
    /// KPI collector windows.
    pub kpi: KpiState,
    /// Workload history.
    pub history: WorkloadHistoryState,
    /// Plan-cache entries: `(example, executions, total_cost, first_seen,
    /// last_seen)` — templates and ranks are recomputed on restore.
    pub plan_cache: Vec<(Query, u64, Cost, LogicalTime, LogicalTime)>,
    /// Organizer: when the last tuning ran.
    pub organizer_last_tuning: Option<u64>,
    /// Organizer: whether tuning is paused (cooldown).
    pub organizer_paused: bool,
    /// Observed cost of the last closed bucket.
    pub last_bucket_cost: Cost,
    /// Actions still queued for barrier drains.
    pub pending_actions: Vec<ConfigAction>,
    /// In-flight deferred tuning, if any.
    pub pending_reconfig: Option<PendingReconfigState>,
    /// Driver counters: buckets_closed, tunings_run, actions_applied,
    /// actions_deferred, apply_failures.
    pub counters: [u64; 5],
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Int(x) => {
            w.u8(0);
            w.i64(*x);
        }
        Value::Float(x) => {
            w.u8(1);
            w.f64(*x);
        }
        Value::Text(s) => {
            w.u8(2);
            w.str(s);
        }
    }
}

fn read_value(r: &mut ByteReader) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Int(r.i64()?),
        1 => Value::Float(r.f64()?),
        2 => Value::Text(r.str()?),
        other => return Err(Error::invalid(format!("unknown value tag {other}"))),
    })
}

fn write_predicate(w: &mut ByteWriter, p: &ScanPredicate) {
    w.u32(u32::from(p.column.0));
    w.u8(match p.op {
        PredicateOp::Eq => 0,
        PredicateOp::Lt => 1,
        PredicateOp::Le => 2,
        PredicateOp::Gt => 3,
        PredicateOp::Ge => 4,
        PredicateOp::Between => 5,
    });
    write_value(w, &p.value);
    match &p.upper {
        Some(upper) => {
            w.bool(true);
            write_value(w, upper);
        }
        None => w.bool(false),
    }
}

fn read_predicate(r: &mut ByteReader) -> Result<ScanPredicate> {
    let column =
        ColumnId(u16::try_from(r.u32()?).map_err(|_| Error::invalid("column id overflow"))?);
    let op = match r.u8()? {
        0 => PredicateOp::Eq,
        1 => PredicateOp::Lt,
        2 => PredicateOp::Le,
        3 => PredicateOp::Gt,
        4 => PredicateOp::Ge,
        5 => PredicateOp::Between,
        other => return Err(Error::invalid(format!("unknown predicate op {other}"))),
    };
    let value = read_value(r)?;
    let upper = if r.bool()? {
        Some(read_value(r)?)
    } else {
        None
    };
    Ok(ScanPredicate {
        column,
        op,
        value,
        upper,
    })
}

fn write_query(w: &mut ByteWriter, q: &Query) {
    w.u32(q.table().0);
    w.str(q.table_name());
    w.usize(q.predicates().len());
    for p in q.predicates() {
        write_predicate(w, p);
    }
    match q.aggregate() {
        Some(agg) => {
            w.bool(true);
            w.u8(match agg.op {
                AggregateOp::Count => 0,
                AggregateOp::Sum => 1,
                AggregateOp::Avg => 2,
                AggregateOp::Min => 3,
                AggregateOp::Max => 4,
            });
            w.u32(u32::from(agg.column.0));
        }
        None => w.bool(false),
    }
    match q.group_by() {
        Some(col) => {
            w.bool(true);
            w.u32(u32::from(col.0));
        }
        None => w.bool(false),
    }
    w.str(q.label());
}

fn read_query(r: &mut ByteReader) -> Result<Query> {
    let table = TableId(r.u32()?);
    let table_name = r.str()?;
    let n = r.usize()?;
    let mut predicates = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        predicates.push(read_predicate(r)?);
    }
    let aggregate = if r.bool()? {
        let op = match r.u8()? {
            0 => AggregateOp::Count,
            1 => AggregateOp::Sum,
            2 => AggregateOp::Avg,
            3 => AggregateOp::Min,
            4 => AggregateOp::Max,
            other => return Err(Error::invalid(format!("unknown aggregate op {other}"))),
        };
        let column =
            ColumnId(u16::try_from(r.u32()?).map_err(|_| Error::invalid("column id overflow"))?);
        Some(Aggregate { op, column })
    } else {
        None
    };
    let group_by = if r.bool()? {
        Some(ColumnId(
            u16::try_from(r.u32()?).map_err(|_| Error::invalid("column id overflow"))?,
        ))
    } else {
        None
    };
    let label = r.str()?;
    let mut q = Query::new(table, table_name, predicates, aggregate, label);
    if let Some(col) = group_by {
        q = q.with_group_by(col);
    }
    Ok(q)
}

fn write_feature(w: &mut ByteWriter, f: Option<FeatureKind>) {
    match f {
        None => w.u8(0),
        Some(FeatureKind::Indexing) => w.u8(1),
        Some(FeatureKind::Compression) => w.u8(2),
        Some(FeatureKind::Placement) => w.u8(3),
        Some(FeatureKind::BufferPool) => w.u8(4),
    }
}

fn read_feature(r: &mut ByteReader) -> Result<Option<FeatureKind>> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(FeatureKind::Indexing),
        2 => Some(FeatureKind::Compression),
        3 => Some(FeatureKind::Placement),
        4 => Some(FeatureKind::BufferPool),
        other => return Err(Error::invalid(format!("unknown feature tag {other}"))),
    })
}

fn write_stored_instance(w: &mut ByteWriter, inst: &StoredInstance) {
    w.u64(inst.applied_at.raw());
    write_feature(w, inst.feature);
    storage_persist::write_config_snapshot(w, &ConfigSnapshot::from(&inst.config));
    storage_persist::write_actions(w, &inst.actions);
    w.f64(inst.predicted_cost.0);
    w.f64(inst.reconfiguration_cost.0);
    w.f64(inst.observed_before.0);
    w.opt_f64(inst.observed_after.map(|c| c.0));
}

fn read_stored_instance(r: &mut ByteReader) -> Result<StoredInstance> {
    Ok(StoredInstance {
        applied_at: LogicalTime(r.u64()?),
        feature: read_feature(r)?,
        config: (&storage_persist::read_config_snapshot(r)?).into(),
        actions: storage_persist::read_actions(r)?,
        predicted_cost: Cost(r.f64()?),
        reconfiguration_cost: Cost(r.f64()?),
        observed_before: Cost(r.f64()?),
        observed_after: r.opt_f64()?.map(Cost),
    })
}

fn write_rollback_record(w: &mut ByteWriter, rb: &RollbackRecord) {
    w.u64(rb.at.raw());
    storage_persist::write_actions(w, &rb.abandoned_actions);
    storage_persist::write_config_snapshot(w, &ConfigSnapshot::from(&rb.restored_config));
    w.str(&rb.cause);
}

fn read_rollback_record(r: &mut ByteReader) -> Result<RollbackRecord> {
    Ok(RollbackRecord {
        at: LogicalTime(r.u64()?),
        abandoned_actions: storage_persist::read_actions(r)?,
        restored_config: (&storage_persist::read_config_snapshot(r)?).into(),
        cause: r.str()?,
    })
}

fn write_session_stats(w: &mut ByteWriter, s: &SessionStats) {
    w.u64(s.session_id);
    w.u64(s.queries);
    w.u64(s.errors);
    w.u64(s.wrong_results);
    w.f64(s.busy.0);
    w.u64(s.morsels);
    w.u64(s.result_digest);
}

fn read_session_stats(r: &mut ByteReader) -> Result<SessionStats> {
    Ok(SessionStats {
        session_id: r.u64()?,
        queries: r.u64()?,
        errors: r.u64()?,
        wrong_results: r.u64()?,
        busy: Cost(r.f64()?),
        morsels: r.u64()?,
        result_digest: r.u64()?,
    })
}

fn write_kpi_state(w: &mut ByteWriter, k: &KpiState) {
    w.usize(k.closed.len());
    for bucket in &k.closed {
        w.usize(bucket.len());
        for &x in bucket {
            w.f64(x);
        }
    }
    w.usize(k.utilization.len());
    for &x in &k.utilization {
        w.f64(x);
    }
    w.usize(k.memory.len());
    for &x in &k.memory {
        w.usize(x);
    }
    w.usize(k.bucket_queries.len());
    for &x in &k.bucket_queries {
        w.u64(x);
    }
    w.u64(k.queries_total);
    w.bool(k.utilization_stale);
}

fn read_kpi_state(r: &mut ByteReader) -> Result<KpiState> {
    let n = r.usize()?;
    let mut closed = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        let m = r.usize()?;
        let mut bucket = Vec::with_capacity(m.min(1 << 16));
        for _ in 0..m {
            bucket.push(r.f64()?);
        }
        closed.push(bucket);
    }
    let n = r.usize()?;
    let mut utilization = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        utilization.push(r.f64()?);
    }
    let n = r.usize()?;
    let mut memory = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        memory.push(r.usize()?);
    }
    let n = r.usize()?;
    let mut bucket_queries = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        bucket_queries.push(r.u64()?);
    }
    Ok(KpiState {
        closed,
        utilization,
        memory,
        bucket_queries,
        queries_total: r.u64()?,
        utilization_stale: r.bool()?,
    })
}

fn write_history_state(w: &mut ByteWriter, h: &WorkloadHistoryState) {
    w.usize(h.templates.len());
    for (fp, th) in &h.templates {
        w.u64(*fp);
        write_query(w, &th.example);
        w.usize(th.buckets.len());
        for (&bucket, &count) in &th.buckets {
            w.u64(bucket);
            w.f64(count);
        }
        w.f64(th.mean_cost.0);
        w.f64(th.total);
    }
    w.usize(h.last_totals.len());
    for &(fp, exec, cost) in &h.last_totals {
        w.u64(fp);
        w.u64(exec);
        w.f64(cost.0);
    }
    match h.span {
        Some((lo, hi)) => {
            w.bool(true);
            w.u64(lo);
            w.u64(hi);
        }
        None => w.bool(false),
    }
}

fn read_history_state(r: &mut ByteReader) -> Result<WorkloadHistoryState> {
    let n = r.usize()?;
    let mut templates = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let fp = r.u64()?;
        let example = read_query(r)?;
        let m = r.usize()?;
        let mut buckets = std::collections::BTreeMap::new();
        for _ in 0..m {
            let bucket = r.u64()?;
            let count = r.f64()?;
            buckets.insert(bucket, count);
        }
        let mean_cost = Cost(r.f64()?);
        let total = r.f64()?;
        templates.push((
            fp,
            TemplateHistory {
                example,
                buckets,
                mean_cost,
                total,
            },
        ));
    }
    let n = r.usize()?;
    let mut last_totals = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let fp = r.u64()?;
        let exec = r.u64()?;
        let cost = Cost(r.f64()?);
        last_totals.push((fp, exec, cost));
    }
    let span = if r.bool()? {
        let lo = r.u64()?;
        let hi = r.u64()?;
        Some((lo, hi))
    } else {
        None
    };
    Ok(WorkloadHistoryState {
        templates,
        last_totals,
        span,
    })
}

fn write_pending_reconfig(w: &mut ByteWriter, p: &PendingReconfigState) {
    storage_persist::write_config_snapshot(w, &p.final_config);
    storage_persist::write_actions(w, &p.actions);
    w.f64(p.predicted_cost.0);
    w.f64(p.observed_before.0);
    w.f64(p.accrued_cost.0);
}

fn read_pending_reconfig(r: &mut ByteReader) -> Result<PendingReconfigState> {
    Ok(PendingReconfigState {
        final_config: storage_persist::read_config_snapshot(r)?,
        actions: storage_persist::read_actions(r)?,
        predicted_cost: Cost(r.f64()?),
        observed_before: Cost(r.f64()?),
        accrued_cost: Cost(r.f64()?),
    })
}

fn write_serving_state(w: &mut ByteWriter, s: &ServingState) {
    w.u64(s.bucket);
    write_session_stats(w, &s.stats);
    w.u64(s.clock);
    storage_persist::write_config_snapshot(w, &s.config);
    write_kpi_state(w, &s.kpi);
    write_history_state(w, &s.history);
    w.usize(s.plan_cache.len());
    for (example, executions, total_cost, first_seen, last_seen) in &s.plan_cache {
        write_query(w, example);
        w.u64(*executions);
        w.f64(total_cost.0);
        w.u64(first_seen.raw());
        w.u64(last_seen.raw());
    }
    w.opt_u64(s.organizer_last_tuning);
    w.bool(s.organizer_paused);
    w.f64(s.last_bucket_cost.0);
    storage_persist::write_actions(w, &s.pending_actions);
    match &s.pending_reconfig {
        Some(p) => {
            w.bool(true);
            write_pending_reconfig(w, p);
        }
        None => w.bool(false),
    }
    for &c in &s.counters {
        w.u64(c);
    }
}

fn read_serving_state(r: &mut ByteReader) -> Result<ServingState> {
    let bucket = r.u64()?;
    let stats = read_session_stats(r)?;
    let clock = r.u64()?;
    let config = storage_persist::read_config_snapshot(r)?;
    let kpi = read_kpi_state(r)?;
    let history = read_history_state(r)?;
    let n = r.usize()?;
    let mut plan_cache = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let example = read_query(r)?;
        let executions = r.u64()?;
        let total_cost = Cost(r.f64()?);
        let first_seen = LogicalTime(r.u64()?);
        let last_seen = LogicalTime(r.u64()?);
        plan_cache.push((example, executions, total_cost, first_seen, last_seen));
    }
    let organizer_last_tuning = r.opt_u64()?;
    let organizer_paused = r.bool()?;
    let last_bucket_cost = Cost(r.f64()?);
    let pending_actions = storage_persist::read_actions(r)?;
    let pending_reconfig = if r.bool()? {
        Some(read_pending_reconfig(r)?)
    } else {
        None
    };
    let mut counters = [0u64; 5];
    for c in &mut counters {
        *c = r.u64()?;
    }
    Ok(ServingState {
        bucket,
        stats,
        clock,
        config,
        kpi,
        history,
        plan_cache,
        organizer_last_tuning,
        organizer_paused,
        last_bucket_cost,
        pending_actions,
        pending_reconfig,
        counters,
    })
}

/// Encodes one serving state (test/bench helper; the manager frames it
/// into WAL records internally).
pub fn encode_serving_state(state: &ServingState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_serving_state(&mut w, state);
    w.into_bytes()
}

/// Decodes a serving state encoded by [`encode_serving_state`].
pub fn decode_serving_state(bytes: &[u8]) -> Result<ServingState> {
    let mut r = ByteReader::new(bytes);
    let state = read_serving_state(&mut r)?;
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::ChunkColumnRef;
    use smdb_durable::MemPersistence;
    use smdb_storage::ConfigInstance;

    fn sample_query() -> Query {
        Query::new(
            TableId(0),
            "events",
            vec![
                ScanPredicate {
                    column: ColumnId(0),
                    op: PredicateOp::Between,
                    value: Value::Int(4),
                    upper: Some(Value::Int(9)),
                },
                ScanPredicate {
                    column: ColumnId(2),
                    op: PredicateOp::Eq,
                    value: Value::Text("eu".into()),
                    upper: None,
                },
            ],
            Some(Aggregate {
                op: AggregateOp::Sum,
                column: ColumnId(1),
            }),
            "range",
        )
        .with_group_by(ColumnId(2))
    }

    fn sample_instance() -> StoredInstance {
        let mut config = ConfigInstance::default();
        config
            .indexes
            .insert(ChunkColumnRef::new(0, 0, 1), smdb_storage::IndexKind::Hash);
        config.knobs.buffer_pool_mb = 128.0;
        StoredInstance {
            applied_at: LogicalTime(7),
            feature: Some(FeatureKind::Indexing),
            config,
            actions: vec![ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(0, 0, 1),
                kind: smdb_storage::IndexKind::Hash,
            }],
            predicted_cost: Cost(10.5),
            reconfiguration_cost: Cost(2.25),
            observed_before: Cost(20.0),
            observed_after: None,
        }
    }

    fn sample_state() -> ServingState {
        ServingState {
            bucket: 9,
            stats: SessionStats {
                session_id: 0,
                queries: 512,
                errors: 0,
                wrong_results: 0,
                busy: Cost(123.5),
                morsels: 7,
                result_digest: 0xDEAD_BEEF_CAFE_F00D,
            },
            clock: 9,
            config: ConfigSnapshot::from(&ConfigInstance::default()),
            kpi: KpiState {
                closed: vec![vec![1.0, 2.0], vec![0.5]],
                utilization: vec![0.4, 0.1],
                memory: vec![4096],
                bucket_queries: vec![300, 212],
                queries_total: 512,
                utilization_stale: false,
            },
            history: WorkloadHistoryState {
                templates: vec![(
                    42,
                    TemplateHistory {
                        example: sample_query(),
                        buckets: [(3, 5.0), (4, 2.0)].into_iter().collect(),
                        mean_cost: Cost(1.5),
                        total: 7.0,
                    },
                )],
                last_totals: vec![(42, 7, Cost(10.5))],
                span: Some((3, 5)),
            },
            plan_cache: vec![(
                sample_query(),
                7,
                Cost(10.5),
                LogicalTime(3),
                LogicalTime(4),
            )],
            organizer_last_tuning: Some(6),
            organizer_paused: true,
            last_bucket_cost: Cost(55.0),
            pending_actions: vec![ConfigAction::SetKnob {
                knob: smdb_storage::KnobKind::BufferPoolMb,
                value: 96.0,
            }],
            pending_reconfig: Some(PendingReconfigState {
                final_config: ConfigSnapshot::from(&ConfigInstance::default()),
                actions: vec![],
                predicted_cost: Cost(9.0),
                observed_before: Cost(11.0),
                accrued_cost: Cost(0.5),
            }),
            counters: [9, 2, 5, 3, 1],
        }
    }

    #[test]
    fn serving_state_roundtrips_byte_identically() {
        let state = sample_state();
        let bytes = encode_serving_state(&state);
        let back = decode_serving_state(&bytes).unwrap();
        assert_eq!(encode_serving_state(&back), bytes);
        assert_eq!(back.stats.result_digest, state.stats.result_digest);
        assert_eq!(back.plan_cache.len(), 1);
        assert_eq!(
            back.plan_cache[0].0.instance_fingerprint(),
            state.plan_cache[0].0.instance_fingerprint(),
            "recomputed fingerprints must match"
        );
        assert_eq!(back.counters, state.counters);
    }

    #[test]
    fn manager_logs_and_recovers_boundary_tail() {
        let p: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
        let config = DurabilityConfig::default();
        let manager = DurabilityManager::new(Arc::clone(&p), config.clone());
        let engine = StorageEngine::default();
        let mut state = sample_state();
        state.bucket = 0;
        manager.take_snapshot(&state, &engine, &[], &[]).unwrap();
        let inst = sample_instance();
        manager.log_instance_stored(&inst).unwrap();
        manager.log_instance_completed(Cost(12.5)).unwrap();
        state.bucket = 1;
        manager.log_boundary(&state).unwrap();
        let rb = RollbackRecord {
            at: LogicalTime(2),
            abandoned_actions: vec![],
            restored_config: ConfigInstance::default(),
            cause: "test".into(),
        };
        manager.log_rollback(&rb).unwrap();

        let rec = recover(p.as_ref(), &config).unwrap().expect("recoverable");
        assert_eq!(rec.serving.bucket, 1);
        assert_eq!(rec.replayed_records, 4);
        assert_eq!(rec.dropped_records, 0);
        assert_eq!(rec.instances.len(), 1);
        assert_eq!(rec.instances[0].observed_after, Some(Cost(12.5)));
        assert_eq!(rec.rollbacks.len(), 1);
        assert_eq!(rec.rollbacks[0].cause, "test");
        // Instance round-trips byte-identically.
        let mut w = ByteWriter::new();
        write_stored_instance(&mut w, &rec.instances[0]);
        let mut expected = sample_instance();
        expected.observed_after = Some(Cost(12.5));
        let mut w2 = ByteWriter::new();
        write_stored_instance(&mut w2, &expected);
        assert_eq!(w.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn recover_truncates_corrupt_wal_tail() {
        let mem = Arc::new(MemPersistence::new());
        let p: Arc<dyn Persistence> = mem.clone();
        let config = DurabilityConfig::default();
        let manager = DurabilityManager::new(Arc::clone(&p), config.clone());
        let engine = StorageEngine::default();
        let mut state = sample_state();
        state.bucket = 0;
        manager.take_snapshot(&state, &engine, &[], &[]).unwrap();
        state.bucket = 1;
        manager.log_boundary(&state).unwrap();
        state.bucket = 2;
        manager.log_boundary(&state).unwrap();
        // Tear the last record.
        mem.mutate(WAL_NAME, |b| {
            let cut = b.len() - 7;
            b.truncate(cut);
        })
        .unwrap();
        let rec = recover(p.as_ref(), &config).unwrap().expect("recoverable");
        assert_eq!(rec.serving.bucket, 1, "degraded to the last valid prefix");
        assert_eq!(rec.dropped_records, 1);
        assert_eq!(rec.wal_records, 1);
        // The corrupt tail was truncated: a resumed manager's appends
        // extend the valid prefix.
        let resumed = DurabilityManager::with_next_seq(Arc::clone(&p), config.clone(), 1);
        state.bucket = 2;
        resumed.log_boundary(&state).unwrap();
        let rec = recover(p.as_ref(), &config).unwrap().expect("recoverable");
        assert_eq!(rec.serving.bucket, 2);
        assert_eq!(rec.dropped_records, 0);
    }

    #[test]
    fn no_snapshot_means_nothing_to_recover() {
        let p = MemPersistence::new();
        assert!(recover(&p, &DurabilityConfig::default()).unwrap().is_none());
    }

    #[test]
    fn stats_track_write_amplification() {
        let p: Arc<dyn Persistence> = Arc::new(MemPersistence::new());
        let manager = DurabilityManager::new(Arc::clone(&p), DurabilityConfig::default());
        let engine = StorageEngine::default();
        let state = sample_state();
        manager.log_boundary(&state).unwrap();
        let wal_only = manager.stats();
        assert_eq!(wal_only.wal_records, 1);
        assert!((wal_only.write_amplification - 1.0).abs() < 1e-12);
        manager.take_snapshot(&state, &engine, &[], &[]).unwrap();
        let with_snap = manager.stats();
        assert_eq!(with_snap.snapshots_taken, 1);
        assert!(with_snap.write_amplification > 1.0);
    }

    #[test]
    fn cadence_gates_snapshots() {
        let manager = DurabilityManager::new(
            Arc::new(MemPersistence::new()),
            DurabilityConfig {
                snapshot_every_buckets: 4,
            },
        );
        assert!(!manager.should_snapshot(0));
        assert!(!manager.should_snapshot(3));
        assert!(manager.should_snapshot(4));
        assert!(manager.should_snapshot(8));
        let off = DurabilityManager::new(
            Arc::new(MemPersistence::new()),
            DurabilityConfig {
                snapshot_every_buckets: 0,
            },
        );
        assert!(!off.should_snapshot(4));
    }
}
