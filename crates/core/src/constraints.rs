//! Constraints on the tuning process (Section II-A(c)).
//!
//! Constraints are either DBMS-related (SLAs, index memory budgets set by
//! users or management software) or derived from hardware resources.
//! "Both types of constraints could conflict. In such cases, available
//! hardware resources overwrite externally specified ones."

use smdb_common::Cost;

/// The constraint set the organizer enforces during tuning.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    /// DBMS-related: memory budget for indexes, bytes.
    pub index_memory_bytes: Option<i64>,
    /// DBMS-related: service-level agreement on mean query response time.
    pub sla_mean_response: Option<Cost>,
    /// DBMS-related: service-level agreement on tail (p95) response time.
    pub sla_p95_response: Option<Cost>,
    /// DBMS-related: ceiling on total engine memory (data + auxiliary
    /// structures), bytes; crossing it signals memory pressure.
    pub memory_ceiling_bytes: Option<i64>,
    /// Hardware: total memory available to the system, bytes. On
    /// conflict this overrides DBMS-related budgets.
    pub hardware_memory_bytes: Option<i64>,
    /// Hardware: capacity of the hot tier, bytes (drives placement).
    pub hot_tier_bytes: Option<i64>,
}

impl ConstraintSet {
    /// An unconstrained set.
    pub fn none() -> Self {
        ConstraintSet::default()
    }

    /// The index memory budget actually in effect: the DBMS budget capped
    /// by what the hardware can hold beyond the current data footprint.
    /// Hardware wins conflicts.
    pub fn effective_index_budget(&self, data_bytes_in_use: i64) -> Option<i64> {
        let hardware_headroom = self
            .hardware_memory_bytes
            .map(|hw| (hw - data_bytes_in_use).max(0));
        match (self.index_memory_bytes, hardware_headroom) {
            (Some(dbms), Some(hw)) => Some(dbms.min(hw)),
            (Some(dbms), None) => Some(dbms),
            (None, Some(hw)) => Some(hw),
            (None, None) => None,
        }
    }

    /// Whether a mean response time violates the SLA.
    pub fn violates_sla(&self, mean_response: Cost) -> bool {
        self.sla_mean_response
            .is_some_and(|sla| mean_response.ms() > sla.ms())
    }

    /// Whether a tail (p95) response time violates the SLA.
    pub fn violates_p95(&self, p95_response: Cost) -> bool {
        self.sla_p95_response
            .is_some_and(|sla| p95_response.ms() > sla.ms())
    }

    /// Whether a memory sample crosses the memory ceiling.
    pub fn violates_memory(&self, bytes: usize) -> bool {
        self.memory_ceiling_bytes
            .is_some_and(|ceiling| bytes as i64 > ceiling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_overrides_dbms_budget() {
        let c = ConstraintSet {
            index_memory_bytes: Some(1000),
            hardware_memory_bytes: Some(1200),
            ..ConstraintSet::default()
        };
        // 800 bytes of data leave 400 of hardware headroom < 1000 DBMS.
        assert_eq!(c.effective_index_budget(800), Some(400));
        // Plenty of hardware: DBMS budget binds.
        assert_eq!(c.effective_index_budget(0), Some(1000));
    }

    #[test]
    fn missing_constraints_propagate() {
        assert_eq!(ConstraintSet::none().effective_index_budget(0), None);
        let hw_only = ConstraintSet {
            hardware_memory_bytes: Some(100),
            ..ConstraintSet::default()
        };
        assert_eq!(hw_only.effective_index_budget(40), Some(60));
        // Headroom never negative.
        assert_eq!(hw_only.effective_index_budget(150), Some(0));
    }

    #[test]
    fn sla_detection() {
        let c = ConstraintSet {
            sla_mean_response: Some(Cost(5.0)),
            ..ConstraintSet::default()
        };
        assert!(c.violates_sla(Cost(6.0)));
        assert!(!c.violates_sla(Cost(4.0)));
        assert!(!ConstraintSet::none().violates_sla(Cost(100.0)));
    }

    #[test]
    fn tail_and_memory_detection() {
        let c = ConstraintSet {
            sla_p95_response: Some(Cost(20.0)),
            memory_ceiling_bytes: Some(1000),
            ..ConstraintSet::default()
        };
        assert!(c.violates_p95(Cost(21.0)));
        assert!(!c.violates_p95(Cost(20.0)));
        assert!(c.violates_memory(1001));
        assert!(!c.violates_memory(1000));
        assert!(!ConstraintSet::none().violates_p95(Cost(1e9)));
        assert!(!ConstraintSet::none().violates_memory(usize::MAX));
    }
}
