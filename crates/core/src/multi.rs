//! Combined tuning of multiple features (Section III).
//!
//! Implements the paper's recursive approach: tune single features in a
//! good order instead of one omnipotent model. Dependencies between
//! features are determined *automatically* from workload cost:
//!
//! * `W∅` — estimated cost of the expected workload with no optimization,
//! * `W_A` — cost after tuning feature `A` alone (impact `W∅/W_A`),
//! * `W_{A,B}` — cost after tuning `A` then `B`,
//! * `d_{A,B} = W_{B,A} / W_{A,B}` — the dependence ratio: `> 1` means
//!   `A` should precede `B`.
//!
//! The order is then optimized with the integer LP of Section III-B
//! (`smdb-lp`), with brute force and naive orders as baselines.

#![allow(clippy::needless_range_loop)] // dense matrix index arithmetic reads clearest with explicit indices

use smdb_common::{Cost, Result};
use smdb_cost::WhatIf;
use smdb_forecast::ForecastSet;
use smdb_lp::branch_bound::IlpOptions;
use smdb_lp::ordering::{OrderingProblem, OrderingSolution};
use smdb_query::Workload;
use smdb_storage::{ConfigInstance, StorageEngine};

use crate::constraints::ConstraintSet;
use crate::feature::FeatureKind;
use crate::tuner::{Tuner, TuningProposal};

/// The automatic dependence analysis of Section III-A.
#[derive(Debug, Clone)]
pub struct DependencyReport {
    pub features: Vec<FeatureKind>,
    /// `W∅`: expected-workload cost with no optimization.
    pub w_empty: Cost,
    /// `W_A` for each feature (diagonal of `w_pair`).
    pub w_single: Vec<Cost>,
    /// `w_pair[a][b] = W_{A,B}` (tune `a` first, then `b`); diagonal
    /// holds `W_A`.
    pub w_pair: Vec<Vec<Cost>>,
    /// Impact ratios `W∅ / W_A`.
    pub impact: Vec<f64>,
    /// Dependence ratios `d_{A,B}`.
    pub dependence: Vec<Vec<f64>>,
}

impl DependencyReport {
    /// The LP objective weights `W∅ / W_{A,B}`.
    pub fn impact_weights(&self) -> Vec<Vec<f64>> {
        let n = self.features.len();
        let mut w = vec![vec![1.0; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    w[a][b] = self.w_empty.ratio(self.w_pair[a][b]).unwrap_or(1.0);
                }
            }
        }
        w
    }

    /// Builds the paper's ordering problem from this report.
    pub fn ordering_problem(&self) -> Result<OrderingProblem> {
        OrderingProblem::new(self.dependence.clone(), self.impact_weights())
    }

    /// Heuristic impact-per-cost ranking (descending impact), the
    /// fallback "when resources do not suffice for tuning all features".
    pub fn impact_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.features.len()).collect();
        order.sort_by(|&a, &b| self.impact[b].total_cmp(&self.impact[a]));
        order
    }
}

/// Report of one multi-feature tuning pass.
#[derive(Debug)]
pub struct MultiTuneReport {
    /// Features in tuned order.
    pub order: Vec<FeatureKind>,
    /// Per-feature proposals, in tuned order.
    pub proposals: Vec<TuningProposal>,
    /// The final configuration after all accepted proposals.
    pub final_config: ConfigInstance,
}

/// Orchestrates the per-feature tuners for combined tuning.
pub struct MultiFeatureTuner {
    tuners: Vec<Tuner>,
    what_if: WhatIf,
    pub ilp_options: IlpOptions,
}

impl MultiFeatureTuner {
    /// Creates a multi-feature tuner over per-feature pipelines.
    pub fn new(tuners: Vec<Tuner>, what_if: WhatIf) -> Self {
        MultiFeatureTuner {
            tuners,
            what_if,
            ilp_options: IlpOptions::default(),
        }
    }

    /// The features managed, in registration order.
    pub fn features(&self) -> Vec<FeatureKind> {
        self.tuners.iter().map(|t| t.feature).collect()
    }

    /// Access to a tuner by feature.
    pub fn tuner_mut(&mut self, feature: FeatureKind) -> Option<&mut Tuner> {
        self.tuners.iter_mut().find(|t| t.feature == feature)
    }

    /// The what-if façade in use.
    pub fn what_if(&self) -> &WhatIf {
        &self.what_if
    }

    /// Hypothetically tunes feature `idx` on top of `base` and returns
    /// the resulting configuration (the proposal's target regardless of
    /// the reconfiguration acceptance — analysis wants the raw optimum).
    pub fn tune_feature_config(
        &self,
        idx: usize,
        engine: &StorageEngine,
        scenarios: &ForecastSet,
        base: &ConfigInstance,
        constraints: &ConstraintSet,
    ) -> Result<ConfigInstance> {
        let tuner = &self.tuners[idx];
        // Analysis bypasses the reconfiguration test: rebuild the target
        // from the proposal even if it was not "accepted".
        let proposal = propose_ungated(tuner, engine, base, scenarios, constraints)?;
        Ok(proposal.target)
    }

    /// Runs the full dependence analysis of Section III-A: `|S|` single
    /// tunings plus `|S|·(|S|−1)` ordered pair tunings, all what-if.
    pub fn analyze(
        &self,
        engine: &StorageEngine,
        scenarios: &ForecastSet,
        base: &ConfigInstance,
        constraints: &ConstraintSet,
    ) -> Result<DependencyReport> {
        let n = self.tuners.len();
        let expected: &Workload = scenarios
            .expected()
            .map(|s| &s.workload)
            .ok_or_else(|| smdb_common::Error::invalid("forecast lacks expected scenario"))?;

        // Distinct (a, b) orderings frequently converge to the *same*
        // configuration; memoize workload costs per config fingerprint so
        // the O(|S|²) sweep prices each distinct config once.
        let mut memo: std::collections::HashMap<u64, Cost> = std::collections::HashMap::new();
        let mut priced = |config: &ConfigInstance| -> Result<Cost> {
            if let Some(&c) = memo.get(&config.fingerprint()) {
                return Ok(c);
            }
            let c = self.what_if.workload_cost(engine, expected, config)?;
            memo.insert(config.fingerprint(), c);
            Ok(c)
        };

        let w_empty = priced(base)?;

        // Single-feature tunings and their configs.
        let mut single_configs = Vec::with_capacity(n);
        let mut w_single = Vec::with_capacity(n);
        for idx in 0..n {
            let config = self.tune_feature_config(idx, engine, scenarios, base, constraints)?;
            w_single.push(priced(&config)?);
            single_configs.push(config);
        }

        // Ordered pairs: tune a, then b on top of a's config.
        let mut w_pair = vec![vec![Cost::ZERO; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    w_pair[a][b] = w_single[a];
                    continue;
                }
                let config_ab = self.tune_feature_config(
                    b,
                    engine,
                    scenarios,
                    &single_configs[a],
                    constraints,
                )?;
                w_pair[a][b] = priced(&config_ab)?;
            }
        }

        let impact: Vec<f64> = w_single
            .iter()
            .map(|&w| w_empty.ratio(w).unwrap_or(1.0))
            .collect();
        let mut dependence = vec![vec![1.0; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    dependence[a][b] = w_pair[b][a].ratio(w_pair[a][b]).unwrap_or(1.0);
                }
            }
        }

        Ok(DependencyReport {
            features: self.features(),
            w_empty,
            w_single,
            w_pair,
            impact,
            dependence,
        })
    }

    /// Solves the paper's ordering LP for a report.
    pub fn lp_order(&self, report: &DependencyReport) -> Result<OrderingSolution> {
        report.ordering_problem()?.solve(&self.ilp_options)
    }

    /// Recursively tunes all features in `order` (indices into
    /// [`Self::features`]), each tuner seeing the configuration its
    /// predecessors produced. Purely hypothetical; the driver executes
    /// the resulting action list.
    pub fn tune_in_order(
        &self,
        engine: &StorageEngine,
        scenarios: &ForecastSet,
        base: &ConfigInstance,
        constraints: &ConstraintSet,
        order: &[usize],
    ) -> Result<MultiTuneReport> {
        let mut config = base.clone();
        let mut proposals = Vec::with_capacity(order.len());
        let mut order_features = Vec::with_capacity(order.len());
        for &idx in order {
            let tuner = &self.tuners[idx];
            let proposal = tuner.propose(engine, &config, scenarios, constraints)?;
            if proposal.accepted {
                config = proposal.target.clone();
            }
            order_features.push(tuner.feature);
            proposals.push(proposal);
        }
        Ok(MultiTuneReport {
            order: order_features,
            proposals,
            final_config: config,
        })
    }
}

/// A tuner proposal with the reconfiguration acceptance test bypassed
/// (used by the dependence analysis, which wants raw optima).
fn propose_ungated(
    tuner: &Tuner,
    engine: &StorageEngine,
    base: &ConfigInstance,
    scenarios: &ForecastSet,
    constraints: &ConstraintSet,
) -> Result<TuningProposal> {
    tuner.propose_internal(engine, base, scenarios, constraints, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::standard_tuner;
    use smdb_common::{ColumnId, TableId};
    use smdb_cost::{CalibratedCostModel, LogicalCostModel};
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::Query;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};
    use std::sync::Arc;

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..4000).map(|i| i % 80).collect()),
                ColumnValues::Int((0..4000).map(|i| (i * 7) % 501).collect()),
            ],
            1000,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(t: TableId) -> ForecastSet {
        let q1 = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            None,
            "pt_k",
        );
        let q2 = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(1), 100i64)],
            None,
            "pt_v",
        );
        let mut w = Workload::default();
        w.push(q1, 50.0);
        w.push(q2, 20.0);
        ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload: w,
            }],
        }
    }

    fn trained_what_if(engine: &StorageEngine, t: TableId) -> WhatIf {
        // Train a calibrated model so encodings/placement matter.
        let model = Arc::new(CalibratedCostModel::new());
        let config = engine.current_config();
        for v in 0..80 {
            let q = Query::new(
                t,
                "t",
                vec![ScanPredicate::eq(ColumnId(0), v)],
                None,
                "train",
            );
            let out = engine.scan(t, q.predicates(), None).unwrap();
            model.observe(engine, &q, &config, out.sim_cost).unwrap();
        }
        model.refit().unwrap();
        WhatIf::new(model)
    }

    fn multi(what_if: WhatIf) -> MultiFeatureTuner {
        let tuners = vec![
            standard_tuner(FeatureKind::Indexing, what_if.clone()),
            standard_tuner(FeatureKind::Compression, what_if.clone()),
        ];
        MultiFeatureTuner::new(tuners, what_if)
    }

    #[test]
    fn analyze_produces_consistent_report() {
        let (engine, t) = setup();
        let what_if = WhatIf::new(Arc::new(LogicalCostModel::default()));
        let m = multi(what_if);
        let report = m
            .analyze(
                &engine,
                &forecast(t),
                &ConfigInstance::default(),
                &ConstraintSet::none(),
            )
            .unwrap();
        assert_eq!(report.features.len(), 2);
        assert!(report.w_empty.ms() > 0.0);
        // Indexing must help under the logical model.
        assert!(report.impact[0] > 1.0, "impact {:?}", report.impact);
        // Diagonals equal singles.
        assert_eq!(report.w_pair[0][0], report.w_single[0]);
        // d matrix has unit diagonal.
        assert_eq!(report.dependence[0][0], 1.0);
        // Reciprocity: d_{A,B} = 1 / d_{B,A}.
        let prod = report.dependence[0][1] * report.dependence[1][0];
        assert!((prod - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lp_order_matches_brute_force() {
        let (engine, t) = setup();
        let m = multi(trained_what_if(&engine, t));
        let report = m
            .analyze(
                &engine,
                &forecast(t),
                &ConfigInstance::default(),
                &ConstraintSet::none(),
            )
            .unwrap();
        let lp = m.lp_order(&report).unwrap();
        let brute =
            smdb_lp::permutation::brute_force_order(&report.ordering_problem().unwrap()).unwrap();
        assert!((lp.objective - brute.objective).abs() < 1e-6);
    }

    #[test]
    fn recursive_tuning_composes_configs() {
        let (engine, t) = setup();
        let m = multi(trained_what_if(&engine, t));
        let f = forecast(t);
        let base = ConfigInstance::default();
        let report = m
            .tune_in_order(&engine, &f, &base, &ConstraintSet::none(), &[0, 1])
            .unwrap();
        assert_eq!(report.order.len(), 2);
        // Indexing accepted → final config has indexes.
        assert!(
            !report.final_config.indexes.is_empty(),
            "{:?}",
            report.proposals
        );
        // Workload cost improves end-to-end.
        let before = m
            .what_if()
            .workload_cost(&engine, &f.expected().unwrap().workload, &base)
            .unwrap();
        let after = m
            .what_if()
            .workload_cost(
                &engine,
                &f.expected().unwrap().workload,
                &report.final_config,
            )
            .unwrap();
        assert!(after < before);
    }

    #[test]
    fn impact_order_ranks_by_ratio() {
        let report = DependencyReport {
            features: vec![FeatureKind::Indexing, FeatureKind::Compression],
            w_empty: Cost(100.0),
            w_single: vec![Cost(80.0), Cost(40.0)],
            w_pair: vec![vec![Cost(80.0), Cost(30.0)], vec![Cost(35.0), Cost(40.0)]],
            impact: vec![1.25, 2.5],
            dependence: vec![vec![1.0, 35.0 / 30.0], vec![30.0 / 35.0, 1.0]],
        };
        assert_eq!(report.impact_order(), vec![1, 0]);
        let weights = report.impact_weights();
        assert!((weights[0][1] - 100.0 / 30.0).abs() < 1e-9);
    }
}
