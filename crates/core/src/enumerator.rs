//! Candidate enumerators (Section II-D(a)).
//!
//! "An enumerator is responsible for providing a list of candidates … The
//! size of the candidate set is typically a significant contributor to
//! the execution time of optimization algorithms." Each feature has an
//! exhaustive enumerator and (for indexing) a heuristic one that
//! restricts the set workload-drivenly; the framework can "fall back to
//! restrictive enumerators when necessary".

use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

use smdb_common::{ChunkColumnRef, Result};
use smdb_forecast::ForecastSet;
use smdb_storage::{
    ConfigAction, ConfigInstance, EncodingKind, IndexKind, KnobKind, StorageEngine, Tier,
};

use crate::candidate::Candidate;

/// Produces the candidate list for one tuning run.
pub trait Enumerator: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Enumerates candidates relative to `base` under the forecast.
    fn enumerate(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<Candidate>>;
}

fn group_of(target: ChunkColumnRef, salt: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    target.hash(&mut h);
    salt.hash(&mut h);
    h.finish()
}

/// Columns referenced by predicates in any scenario, with their summed
/// query weight (used for workload-driven restriction) and whether range
/// operators occur.
fn predicate_columns(
    scenarios: &ForecastSet,
) -> BTreeMap<(smdb_common::TableId, smdb_common::ColumnId), (f64, bool)> {
    let mut out: BTreeMap<_, (f64, bool)> = BTreeMap::new();
    for scenario in scenarios.iter() {
        for wq in scenario.workload.queries() {
            for p in wq.query.predicates() {
                let entry = out
                    .entry((wq.query.table(), p.column))
                    .or_insert((0.0, false));
                entry.0 += wq.weight * scenario.probability;
                entry.1 |= p.op.is_range();
            }
        }
    }
    out
}

/// Index candidates on every `(predicate column, chunk)` pair seen in the
/// forecast: hash where only point predicates occur, hash + B-tree where
/// ranges occur, plus **multi-attribute** composite candidates for every
/// ordered pair of equality predicates co-occurring in a query (the
/// paper's "set of lists (to support multi-attribute indexes) of
/// attributes"). Optionally capped to the `max_candidates` heaviest
/// targets (the heuristic, Chaudhuri-&-Narasayya-style restriction).
#[derive(Debug, Clone, Default)]
pub struct IndexEnumerator {
    pub max_candidates: Option<usize>,
}

/// Ordered `(table, leading, second)` column pairs that co-occur as
/// equality predicates within single forecast queries.
fn composite_pairs(
    scenarios: &ForecastSet,
) -> BTreeSet<(
    smdb_common::TableId,
    smdb_common::ColumnId,
    smdb_common::ColumnId,
)> {
    let mut out = BTreeSet::new();
    for scenario in scenarios.iter() {
        for wq in scenario.workload.queries() {
            let eq_cols: Vec<_> = wq
                .query
                .predicates()
                .iter()
                .filter(|p| matches!(p.op, smdb_storage::PredicateOp::Eq))
                .map(|p| p.column)
                .collect();
            for (i, &a) in eq_cols.iter().enumerate() {
                for (j, &b) in eq_cols.iter().enumerate() {
                    if i != j {
                        out.insert((wq.query.table(), a, b));
                    }
                }
            }
        }
    }
    out
}

impl Enumerator for IndexEnumerator {
    fn name(&self) -> &str {
        "index"
    }

    fn enumerate(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<Candidate>> {
        // Rank referenced columns by workload weight (heaviest first).
        let mut columns: Vec<_> = predicate_columns(scenarios).into_iter().collect();
        columns.sort_by(|a, b| b.1 .0.total_cmp(&a.1 .0));

        let pairs = composite_pairs(scenarios);
        let mut out = Vec::new();
        'outer: for ((table_id, column), (_, has_range)) in columns {
            let table = engine.table(table_id)?;
            for (chunk_id, _) in table.chunks() {
                let target = ChunkColumnRef {
                    table: table_id,
                    column,
                    chunk: chunk_id,
                };
                let group = group_of(target, 0xA11);
                let mut kinds: Vec<IndexKind> = if has_range {
                    vec![IndexKind::BTree, IndexKind::Hash]
                } else {
                    vec![IndexKind::Hash]
                };
                // Multi-attribute candidates led by this column.
                for &(t, a, b) in &pairs {
                    if t == table_id && a == column {
                        kinds.push(IndexKind::CompositeHash { second: b });
                    }
                }
                for kind in kinds {
                    if base.index_of(target) == Some(kind) {
                        continue; // already in effect
                    }
                    out.push(Candidate::new(
                        ConfigAction::CreateIndex { target, kind },
                        Some(group),
                    ));
                    if let Some(cap) = self.max_candidates {
                        if out.len() >= cap {
                            break 'outer;
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Encoding candidates: every alternative encoding for every segment a
/// forecast query touches.
#[derive(Debug, Clone, Default)]
pub struct EncodingEnumerator;

impl Enumerator for EncodingEnumerator {
    fn name(&self) -> &str {
        "encoding"
    }

    fn enumerate(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<Candidate>> {
        // Tables touched by the forecast.
        let mut touched: BTreeSet<smdb_common::TableId> = BTreeSet::new();
        for s in scenarios.iter() {
            for wq in s.workload.queries() {
                touched.insert(wq.query.table());
            }
        }
        let mut out = Vec::new();
        for table_id in touched {
            let table = engine.table(table_id)?;
            for (chunk_id, _) in table.chunks() {
                for (column, _) in table.schema().iter() {
                    let target = ChunkColumnRef {
                        table: table_id,
                        column,
                        chunk: chunk_id,
                    };
                    let current = base.encoding_of(target);
                    let group = group_of(target, 0xE4C);
                    for kind in EncodingKind::ALL {
                        if kind == current {
                            continue;
                        }
                        out.push(Candidate::new(
                            ConfigAction::SetEncoding { target, kind },
                            Some(group),
                        ));
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Placement candidates: every alternative tier for every chunk of the
/// touched tables.
#[derive(Debug, Clone, Default)]
pub struct PlacementEnumerator;

impl Enumerator for PlacementEnumerator {
    fn name(&self) -> &str {
        "placement"
    }

    fn enumerate(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<Candidate>> {
        let mut touched: BTreeSet<smdb_common::TableId> = BTreeSet::new();
        for s in scenarios.iter() {
            for wq in s.workload.queries() {
                touched.insert(wq.query.table());
            }
        }
        let mut out = Vec::new();
        for table_id in touched {
            let table = engine.table(table_id)?;
            for (chunk_id, _) in table.chunks() {
                let current = base.tier_of(table_id, chunk_id);
                let group = group_of(
                    ChunkColumnRef {
                        table: table_id,
                        column: smdb_common::ColumnId(0),
                        chunk: chunk_id,
                    },
                    0x97ACE,
                );
                for tier in Tier::ALL {
                    if tier == current {
                        continue;
                    }
                    out.push(Candidate::new(
                        ConfigAction::SetPlacement {
                            table: table_id,
                            chunk: chunk_id,
                            tier,
                        },
                        Some(group),
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Knob candidates for the buffer pool: the paper's continuous-range
/// shape — "the start and the end of a range, e.g., 1.0 GB to 100.0 GB
/// and the smallest available intervals to pick in this range".
#[derive(Debug, Clone)]
pub struct BufferPoolEnumerator {
    pub min_mb: f64,
    pub max_mb: f64,
    pub step_mb: f64,
}

impl Default for BufferPoolEnumerator {
    fn default() -> Self {
        BufferPoolEnumerator {
            min_mb: 0.0,
            max_mb: 1024.0,
            step_mb: 64.0,
        }
    }
}

impl Enumerator for BufferPoolEnumerator {
    fn name(&self) -> &str {
        "buffer_pool"
    }

    fn enumerate(
        &self,
        _engine: &StorageEngine,
        base: &ConfigInstance,
        _scenarios: &ForecastSet,
    ) -> Result<Vec<Candidate>> {
        let mut out = Vec::new();
        let group = Some(0xB0FFu64);
        let mut value = self.min_mb;
        while value <= self.max_mb + 1e-9 {
            if (value - base.knobs.buffer_pool_mb).abs() > 1e-9 {
                out.push(Candidate::new(
                    ConfigAction::SetKnob {
                        knob: KnobKind::BufferPoolMb,
                        value,
                    },
                    group,
                ));
            }
            value += self.step_mb.max(1e-9);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::{Query, Workload};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};

    fn setup() -> (StorageEngine, smdb_common::TableId) {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..400).collect()),
                ColumnValues::Int((0..400).map(|i| i % 7).collect()),
            ],
            100,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(queries: Vec<Query>) -> ForecastSet {
        ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload: Workload::uniform(queries),
            }],
        }
    }

    fn point_query(t: smdb_common::TableId, col: u16) -> Query {
        Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(smdb_common::ColumnId(col), 3i64)],
            None,
            "pt",
        )
    }

    #[test]
    fn index_enumerator_targets_predicate_columns_only() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let f = forecast(vec![point_query(t, 1)]);
        let candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &f)
            .unwrap();
        // 4 chunks × 1 column × 1 kind (only Eq seen → hash only).
        assert_eq!(candidates.len(), 4);
        for c in &candidates {
            match &c.action {
                ConfigAction::CreateIndex { target, kind } => {
                    assert_eq!(target.column.0, 1);
                    assert_eq!(*kind, IndexKind::Hash);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn range_predicates_add_btree_candidates() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::between(smdb_common::ColumnId(0), 1i64, 9i64)],
            None,
            "rng",
        );
        let candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &forecast(vec![q]))
            .unwrap();
        // 4 chunks × {btree, hash}.
        assert_eq!(candidates.len(), 8);
    }

    #[test]
    fn heuristic_cap_limits_candidates() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let f = forecast(vec![point_query(t, 0), point_query(t, 1)]);
        let capped = IndexEnumerator {
            max_candidates: Some(3),
        }
        .enumerate(&engine, &base, &f)
        .unwrap();
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn existing_indexes_not_recandidated() {
        let (engine, t) = setup();
        let mut base = ConfigInstance::default();
        base.indexes
            .insert(ChunkColumnRef::new(t.0, 1, 0), IndexKind::Hash);
        let f = forecast(vec![point_query(t, 1)]);
        let candidates = IndexEnumerator::default()
            .enumerate(&engine, &base, &f)
            .unwrap();
        assert_eq!(candidates.len(), 3);
    }

    #[test]
    fn encoding_enumerator_covers_all_segments() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let f = forecast(vec![point_query(t, 0)]);
        let candidates = EncodingEnumerator.enumerate(&engine, &base, &f).unwrap();
        // 4 chunks × 2 columns × 3 alternative encodings.
        assert_eq!(candidates.len(), 24);
        // Exclusive per segment.
        let groups: std::collections::HashSet<_> =
            candidates.iter().map(|c| c.exclusive_group).collect();
        assert_eq!(groups.len(), 8);
    }

    #[test]
    fn placement_enumerator_offers_other_tiers() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let f = forecast(vec![point_query(t, 0)]);
        let candidates = PlacementEnumerator.enumerate(&engine, &base, &f).unwrap();
        // 4 chunks × 2 non-current tiers.
        assert_eq!(candidates.len(), 8);
    }

    #[test]
    fn buffer_enumerator_spans_range_excluding_current() {
        let (engine, _) = setup();
        let base = ConfigInstance::default(); // 64 MB default
        let candidates = BufferPoolEnumerator {
            min_mb: 0.0,
            max_mb: 256.0,
            step_mb: 64.0,
        }
        .enumerate(&engine, &base, &ForecastSet::default())
        .unwrap();
        // {0, 64, 128, 192, 256} minus current 64 → 4 candidates, one group.
        assert_eq!(candidates.len(), 4);
        assert!(candidates.iter().all(|c| c.exclusive_group == Some(0xB0FF)));
    }
}
