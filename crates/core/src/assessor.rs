//! Candidate assessors (Section II-D(b)).
//!
//! An assessor attaches to every candidate a per-scenario desirability,
//! a confidence, a permanent (memory) cost and a one-time
//! (reconfiguration) cost. The default implementation is what-if based:
//! it evaluates the forecast workload cost with and without the candidate
//! using an exchangeable cost estimator. Candidate assessment is
//! embarrassingly parallel and fans out over scoped threads.

use smdb_common::{Cost, Result};
use smdb_cost::features::ConfigContext;
use smdb_cost::what_if::estimate_action_cost;
use smdb_cost::{sizes, WhatIf};
use smdb_forecast::ForecastSet;
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine};

use crate::candidate::{Assessment, Candidate};

/// Assesses candidates against a forecast.
pub trait Assessor: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Estimated workload cost of each scenario under `config` (ms,
    /// aligned with the scenario order). The tuner uses this to price
    /// whole configurations (combined benefit), not just per-candidate
    /// deltas.
    fn scenario_costs(
        &self,
        engine: &StorageEngine,
        config: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<f64>>;

    /// Assesses all candidates relative to `base`.
    fn assess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
    ) -> Result<Vec<Assessment>>;

    /// Re-assesses a subset of candidates against an updated base
    /// configuration — the paper's "selectors can also request
    /// re-assessments … to reflect changed circumstances or incorporate
    /// interaction between candidates".
    fn reassess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
        subset: &[usize],
    ) -> Result<Vec<Assessment>> {
        let picked: Vec<Candidate> = subset.iter().map(|&i| candidates[i].clone()).collect();
        let mut assessments = self.assess(engine, base, scenarios, &picked)?;
        for (a, &original) in assessments.iter_mut().zip(subset) {
            a.candidate = original;
        }
        Ok(assessments)
    }
}

/// The what-if assessor: desirability = estimated workload cost without
/// candidate − with candidate, per scenario.
pub struct WhatIfAssessor {
    what_if: WhatIf,
    /// Reported assessment confidence (a property of the underlying cost
    /// model: logical models are less trustworthy than calibrated ones).
    pub confidence: f64,
    /// Number of worker threads for candidate fan-out (1 = sequential).
    pub threads: usize,
}

impl WhatIfAssessor {
    /// Creates an assessor over a cost estimator.
    pub fn new(what_if: WhatIf, confidence: f64) -> Self {
        WhatIfAssessor {
            what_if,
            confidence,
            threads: 4,
        }
    }

    /// Assesses one candidate given precomputed per-scenario base costs.
    fn assess_one(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        base_costs: &[f64],
        index: usize,
        candidate: &Candidate,
    ) -> Result<Assessment> {
        let mut hypo = base.clone();
        hypo.apply(&candidate.action);

        let estimator = self.what_if.estimator();
        let ctx = ConfigContext::new(engine, &hypo);
        let mut per_scenario = Vec::with_capacity(scenarios.len());
        let mut probabilities = Vec::with_capacity(scenarios.len());
        for (s, &base_cost) in scenarios.iter().zip(base_costs) {
            let mut cost = Cost::ZERO;
            for wq in s.workload.queries() {
                cost += estimator.query_cost(engine, &ctx, &wq.query, &hypo)? * wq.weight;
            }
            per_scenario.push(base_cost - cost.ms());
            probabilities.push(s.probability);
        }

        let permanent_bytes = estimate_permanent_bytes(engine, base, &candidate.action)?;
        let one_time_cost = estimate_action_cost(engine, base, &candidate.action)?;
        Ok(Assessment {
            candidate: index,
            per_scenario,
            probabilities,
            confidence: self.confidence,
            permanent_bytes,
            one_time_cost,
        })
    }
}

impl Assessor for WhatIfAssessor {
    fn name(&self) -> &str {
        "what_if"
    }

    fn scenario_costs(
        &self,
        engine: &StorageEngine,
        config: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(scenarios.len());
        for s in scenarios.iter() {
            out.push(
                self.what_if
                    .workload_cost(engine, &s.workload, config)?
                    .ms(),
            );
        }
        Ok(out)
    }

    fn assess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
    ) -> Result<Vec<Assessment>> {
        // Base cost per scenario, computed once.
        let base_costs = self.scenario_costs(engine, base, scenarios)?;

        let threads = self.threads.max(1).min(candidates.len().max(1));
        if threads == 1 || candidates.len() < 8 {
            return candidates
                .iter()
                .enumerate()
                .map(|(i, c)| self.assess_one(engine, base, scenarios, &base_costs, i, c))
                .collect();
        }

        // Scoped fan-out; results keep candidate order via indexed slots.
        let mut slots: Vec<Option<Result<Assessment>>> = Vec::new();
        slots.resize_with(candidates.len(), || None);
        let chunk = candidates.len().div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (t, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                let base_costs = &base_costs;
                scope.spawn(move |_| {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let i = t * chunk + off;
                        *slot = Some(self.assess_one(
                            engine,
                            base,
                            scenarios,
                            base_costs,
                            i,
                            &candidates[i],
                        ));
                    }
                });
            }
        })
        .expect("assessment workers must not panic");
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }
}

/// Memory delta of applying an action: estimated footprint after − before.
fn estimate_permanent_bytes(
    engine: &StorageEngine,
    base: &ConfigInstance,
    action: &ConfigAction,
) -> Result<i64> {
    Ok(match action {
        ConfigAction::CreateIndex { target, kind } => {
            let new = sizes::estimate_target_index_bytes(engine, *target, *kind)? as i64;
            let old = match base.index_of(*target) {
                Some(old_kind) => {
                    sizes::estimate_target_index_bytes(engine, *target, old_kind)? as i64
                }
                None => 0,
            };
            new - old
        }
        ConfigAction::DropIndex { target } => match base.index_of(*target) {
            Some(kind) => -(sizes::estimate_target_index_bytes(engine, *target, kind)? as i64),
            None => 0,
        },
        ConfigAction::SetEncoding { target, kind } => {
            let new = sizes::estimate_target_bytes(engine, *target, *kind)? as i64;
            let old =
                sizes::estimate_target_bytes(engine, *target, base.encoding_of(*target))? as i64;
            new - old
        }
        // Placement: the "permanent cost" is hot-tier residency — moving
        // a chunk to the hot tier consumes hot capacity, moving it away
        // frees it (total footprint is unchanged, but the hot tier is the
        // constrained resource).
        ConfigAction::SetPlacement { table, chunk, tier } => {
            let bytes = sizes::estimate_chunk_bytes(engine, base, *table, *chunk)? as i64;
            let was_hot = base.tier_of(*table, *chunk) == smdb_storage::Tier::Hot;
            let is_hot = *tier == smdb_storage::Tier::Hot;
            match (was_hot, is_hot) {
                (false, true) => bytes,
                (true, false) => -bytes,
                _ => 0,
            }
        }
        // The buffer pool reserves its capacity.
        ConfigAction::SetKnob { knob, value } => match knob {
            smdb_storage::KnobKind::BufferPoolMb => {
                ((value - base.knobs.buffer_pool_mb) * 1024.0 * 1024.0) as i64
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ChunkColumnRef, ColumnId, TableId};
    use smdb_cost::LogicalCostModel;
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::{Query, Workload};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        ColumnDef, DataType, EncodingKind, IndexKind, ScanPredicate, Schema, Table,
    };
    use std::sync::Arc;

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..800).map(|i| i % 40).collect())],
            200,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(t: TableId) -> ForecastSet {
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            None,
            "pt",
        );
        ForecastSet {
            scenarios: vec![
                WorkloadScenario {
                    kind: ScenarioKind::Expected,
                    name: "expected".into(),
                    probability: 0.7,
                    workload: Workload::new(vec![smdb_query::WeightedQuery::new(q.clone(), 10.0)]),
                },
                WorkloadScenario {
                    kind: ScenarioKind::WorstCase,
                    name: "worst".into(),
                    probability: 0.3,
                    workload: Workload::new(vec![smdb_query::WeightedQuery::new(q, 30.0)]),
                },
            ],
        }
    }

    fn assessor() -> WhatIfAssessor {
        WhatIfAssessor::new(WhatIf::new(Arc::new(LogicalCostModel::default())), 0.6)
    }

    #[test]
    fn useful_index_gets_positive_desirability() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates = vec![Candidate::new(
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            None,
        )];
        let a = assessor()
            .assess(&engine, &base, &forecast(t), &candidates)
            .unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].per_scenario.len(), 2);
        assert!(a[0].expected_desirability() > 0.0);
        // Worst-case scenario has 3× the weight → 3× the benefit.
        assert!(a[0].per_scenario[1] > a[0].per_scenario[0] * 2.5);
        assert!(a[0].permanent_bytes > 0);
        assert!(a[0].one_time_cost.ms() > 0.0);
        assert_eq!(a[0].confidence, 0.6);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let mut candidates = Vec::new();
        for chunk in 0..4u32 {
            for kind in IndexKind::ALL {
                candidates.push(Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(t.0, 0, chunk),
                        kind,
                    },
                    None,
                ));
            }
        }
        let mut seq = assessor();
        seq.threads = 1;
        let mut par = assessor();
        par.threads = 4;
        let f = forecast(t);
        let a = seq.assess(&engine, &base, &f, &candidates).unwrap();
        let b = par.assess(&engine, &base, &f, &candidates).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.candidate, y.candidate);
            assert_eq!(x.per_scenario, y.per_scenario);
        }
    }

    #[test]
    fn encoding_saves_memory_as_negative_permanent_bytes() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates = vec![Candidate::new(
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: EncodingKind::Dictionary,
            },
            None,
        )];
        let a = assessor()
            .assess(&engine, &base, &forecast(t), &candidates)
            .unwrap();
        assert!(a[0].permanent_bytes < 0, "dict should shrink: {a:?}");
    }

    #[test]
    fn reassess_keeps_original_indices() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates: Vec<Candidate> = (0..4u32)
            .map(|chunk| {
                Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(t.0, 0, chunk),
                        kind: IndexKind::Hash,
                    },
                    None,
                )
            })
            .collect();
        let a = assessor()
            .reassess(&engine, &base, &forecast(t), &candidates, &[2, 3])
            .unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].candidate, 2);
        assert_eq!(a[1].candidate, 3);
    }

    #[test]
    fn drop_index_frees_memory() {
        let (engine, t) = setup();
        let target = ChunkColumnRef::new(t.0, 0, 0);
        let mut base = ConfigInstance::default();
        base.indexes.insert(target, IndexKind::BTree);
        let bytes =
            estimate_permanent_bytes(&engine, &base, &ConfigAction::DropIndex { target }).unwrap();
        assert!(bytes < 0);
    }
}
