//! Candidate assessors (Section II-D(b)).
//!
//! An assessor attaches to every candidate a per-scenario desirability,
//! a confidence, a permanent (memory) cost and a one-time
//! (reconfiguration) cost. The default implementation is what-if based:
//! it evaluates the forecast workload cost with and without the candidate
//! using an exchangeable cost estimator. Candidate assessment is
//! embarrassingly parallel and fans out over the storage scan pool —
//! the workspace's designated thread seam — rather than ad-hoc threads.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, OnceLock};

use smdb_common::{Cost, Result, TableId};
use smdb_cost::features::ConfigContext;
use smdb_cost::footprint::{ActionDelta, QueryFootprint};
use smdb_cost::what_if::estimate_action_cost;
use smdb_cost::{sizes, WhatIf};
use smdb_forecast::ForecastSet;
use smdb_query::Query;
use smdb_storage::parallel::ScanPool;
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine, Tier};

use crate::candidate::{Assessment, Candidate};

/// Assesses candidates against a forecast.
pub trait Assessor: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Estimated workload cost of each scenario under `config` (ms,
    /// aligned with the scenario order). The tuner uses this to price
    /// whole configurations (combined benefit), not just per-candidate
    /// deltas.
    fn scenario_costs(
        &self,
        engine: &StorageEngine,
        config: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<f64>>;

    /// Assesses all candidates relative to `base`.
    fn assess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
    ) -> Result<Vec<Assessment>>;

    /// Re-assesses a subset of candidates against an updated base
    /// configuration — the paper's "selectors can also request
    /// re-assessments … to reflect changed circumstances or incorporate
    /// interaction between candidates".
    fn reassess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
        subset: &[usize],
    ) -> Result<Vec<Assessment>> {
        let picked: Vec<Candidate> = subset.iter().map(|&i| candidates[i].clone()).collect();
        let mut assessments = self.assess(engine, base, scenarios, &picked)?;
        for (a, &original) in assessments.iter_mut().zip(subset) {
            a.candidate = original;
        }
        Ok(assessments)
    }
}

/// The what-if assessor: desirability = estimated workload cost without
/// candidate − with candidate, per scenario.
pub struct WhatIfAssessor {
    what_if: WhatIf,
    /// Reported assessment confidence (a property of the underlying cost
    /// model: logical models are less trustworthy than calibrated ones).
    pub confidence: f64,
    /// Number of worker threads for candidate fan-out (1 = sequential).
    pub threads: usize,
    /// Lazily-built scan pool for the fan-out, sized from `threads` at
    /// first parallel use.
    pool: OnceLock<Arc<ScanPool>>,
}

impl WhatIfAssessor {
    /// Creates an assessor over a cost estimator.
    pub fn new(what_if: WhatIf, confidence: f64) -> Self {
        WhatIfAssessor {
            what_if,
            confidence,
            threads: 4,
            pool: OnceLock::new(),
        }
    }

    /// Assesses one candidate against precomputed per-query base costs.
    ///
    /// Delta-aware: only queries whose footprint intersects the
    /// candidate's [`ActionDelta`] are re-costed; every other query's
    /// cost is bit-identical under the hypothetical configuration (the
    /// estimator reads nothing the action changes), so it contributes
    /// exactly zero to the desirability and is skipped. The hypothetical
    /// [`ConfigContext`] is derived incrementally instead of re-walking
    /// the catalog per candidate.
    fn assess_one(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        base_ctx: &ConfigContext,
        scenarios: &[BaseScenario<'_>],
        nonhot_tables: &BTreeSet<TableId>,
        index: usize,
        candidate: &Candidate,
    ) -> Result<Assessment> {
        let mut hypo = base.clone();
        hypo.apply(&candidate.action);
        let delta = ActionDelta::of(base, &candidate.action);
        let hypo_ctx = base_ctx.apply_action(engine, base, &candidate.action)?;

        let mut per_scenario = Vec::with_capacity(scenarios.len());
        let mut probabilities = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            let mut benefit = 0.0;
            for row in &s.rows {
                if delta.affects(&row.footprint, |t| nonhot_tables.contains(&t)) {
                    let cost = self.what_if.query_cost_fp(
                        engine,
                        &hypo_ctx,
                        &row.footprint,
                        row.query,
                        &hypo,
                    )?;
                    benefit += (row.base_cost.ms() - cost.ms()) * row.weight;
                }
            }
            per_scenario.push(benefit);
            probabilities.push(s.probability);
        }

        let permanent_bytes = estimate_permanent_bytes(engine, base, &candidate.action)?;
        let one_time_cost = estimate_action_cost(engine, base, &candidate.action)?;
        Ok(Assessment {
            candidate: index,
            per_scenario,
            probabilities,
            confidence: self.confidence,
            permanent_bytes,
            one_time_cost,
        })
    }
}

/// One scenario's workload priced under the base configuration.
struct BaseScenario<'a> {
    probability: f64,
    rows: Vec<BaseRow<'a>>,
}

/// One weighted query with its base cost and footprint.
struct BaseRow<'a> {
    query: &'a Query,
    weight: f64,
    base_cost: Cost,
    footprint: QueryFootprint,
}

impl Assessor for WhatIfAssessor {
    fn name(&self) -> &str {
        "what_if"
    }

    fn scenario_costs(
        &self,
        engine: &StorageEngine,
        config: &ConfigInstance,
        scenarios: &ForecastSet,
    ) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(scenarios.len());
        for s in scenarios.iter() {
            out.push(
                self.what_if
                    .workload_cost(engine, &s.workload, config)?
                    .ms(),
            );
        }
        Ok(out)
    }

    fn assess(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        candidates: &[Candidate],
    ) -> Result<Vec<Assessment>> {
        let _span = smdb_obs::span!("assessor", "assess", { candidates: candidates.len() });
        smdb_obs::metrics::counter("assessor.assess_calls").inc();
        smdb_obs::metrics::counter("assessor.candidates_assessed").add(candidates.len() as u64);
        // Per-query base costs, footprints and the base context, computed
        // once and shared (read-only) by every candidate worker.
        let base_ctx = self.what_if.config_context(engine, base);
        let mut scen = Vec::with_capacity(scenarios.len());
        for s in scenarios.iter() {
            let mut rows = Vec::with_capacity(s.workload.queries().len());
            for wq in s.workload.queries() {
                let footprint = QueryFootprint::of(&wq.query);
                let base_cost = self
                    .what_if
                    .query_cost_fp(engine, &base_ctx, &footprint, &wq.query, base)?;
                rows.push(BaseRow {
                    query: &wq.query,
                    weight: wq.weight,
                    base_cost,
                    footprint,
                });
            }
            scen.push(BaseScenario {
                probability: s.probability,
                rows,
            });
        }
        // Tables owning a non-hot chunk under `base`: the blast radius of
        // global (buffer-pressure) deltas.
        let nonhot_tables: BTreeSet<TableId> = base
            .placements
            .iter()
            .filter(|&(_, &tier)| tier != Tier::Hot)
            .map(|(&(t, _), _)| t)
            .collect();

        let threads = self.threads.max(1).min(candidates.len().max(1));
        if threads == 1 || candidates.len() < 8 {
            return candidates
                .iter()
                .enumerate()
                .map(|(i, c)| self.assess_one(engine, base, &base_ctx, &scen, &nonhot_tables, i, c))
                .collect();
        }

        // Fan out one morsel per candidate over the shared scan pool;
        // results keep candidate order via indexed slots. Workers share
        // one Sync cost cache through `self.what_if`; results are
        // deterministic regardless of thread count because cached and
        // freshly computed costs are bit-identical.
        let pool = self.pool.get_or_init(|| ScanPool::new(threads));
        let slots: Vec<Mutex<Option<Result<Assessment>>>> =
            (0..candidates.len()).map(|_| Mutex::new(None)).collect();
        pool.run(candidates.len(), |i| {
            let out = self.assess_one(
                engine,
                base,
                &base_ctx,
                &scen,
                &nonhot_tables,
                i,
                &candidates[i],
            );
            *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
        });
        slots
            .into_iter()
            .map(|slot| match slot.into_inner() {
                Ok(Some(result)) => result,
                // A panicked morsel leaves its slot empty (or poisoned);
                // surface that candidate as an error instead of taking
                // down the whole process.
                _ => Err(smdb_common::Error::invalid(
                    "candidate assessment worker failed",
                )),
            })
            .collect()
    }
}

/// Memory delta of applying an action: estimated footprint after − before.
fn estimate_permanent_bytes(
    engine: &StorageEngine,
    base: &ConfigInstance,
    action: &ConfigAction,
) -> Result<i64> {
    Ok(match action {
        ConfigAction::CreateIndex { target, kind } => {
            let new = sizes::estimate_target_index_bytes(engine, *target, *kind)? as i64;
            let old = match base.index_of(*target) {
                Some(old_kind) => {
                    sizes::estimate_target_index_bytes(engine, *target, old_kind)? as i64
                }
                None => 0,
            };
            new - old
        }
        ConfigAction::DropIndex { target } => match base.index_of(*target) {
            Some(kind) => -(sizes::estimate_target_index_bytes(engine, *target, kind)? as i64),
            None => 0,
        },
        ConfigAction::SetEncoding { target, kind } => {
            let new = sizes::estimate_target_bytes(engine, *target, *kind)? as i64;
            let old =
                sizes::estimate_target_bytes(engine, *target, base.encoding_of(*target))? as i64;
            new - old
        }
        // Placement: the "permanent cost" is hot-tier residency — moving
        // a chunk to the hot tier consumes hot capacity, moving it away
        // frees it (total footprint is unchanged, but the hot tier is the
        // constrained resource).
        ConfigAction::SetPlacement { table, chunk, tier } => {
            let bytes = sizes::estimate_chunk_bytes(engine, base, *table, *chunk)? as i64;
            let was_hot = base.tier_of(*table, *chunk) == smdb_storage::Tier::Hot;
            let is_hot = *tier == smdb_storage::Tier::Hot;
            match (was_hot, is_hot) {
                (false, true) => bytes,
                (true, false) => -bytes,
                _ => 0,
            }
        }
        // The buffer pool reserves its capacity.
        ConfigAction::SetKnob { knob, value } => match knob {
            smdb_storage::KnobKind::BufferPoolMb => {
                ((value - base.knobs.buffer_pool_mb) * 1024.0 * 1024.0) as i64
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ChunkColumnRef, ColumnId, TableId};
    use smdb_cost::LogicalCostModel;
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::{Query, Workload};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{
        ColumnDef, DataType, EncodingKind, IndexKind, ScanPredicate, Schema, Table,
    };
    use std::sync::Arc;

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..800).map(|i| i % 40).collect())],
            200,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(t: TableId) -> ForecastSet {
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            None,
            "pt",
        );
        ForecastSet {
            scenarios: vec![
                WorkloadScenario {
                    kind: ScenarioKind::Expected,
                    name: "expected".into(),
                    probability: 0.7,
                    workload: Workload::new(vec![smdb_query::WeightedQuery::new(q.clone(), 10.0)]),
                },
                WorkloadScenario {
                    kind: ScenarioKind::WorstCase,
                    name: "worst".into(),
                    probability: 0.3,
                    workload: Workload::new(vec![smdb_query::WeightedQuery::new(q, 30.0)]),
                },
            ],
        }
    }

    fn assessor() -> WhatIfAssessor {
        WhatIfAssessor::new(WhatIf::new(Arc::new(LogicalCostModel::default())), 0.6)
    }

    #[test]
    fn useful_index_gets_positive_desirability() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates = vec![Candidate::new(
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: IndexKind::Hash,
            },
            None,
        )];
        let a = assessor()
            .assess(&engine, &base, &forecast(t), &candidates)
            .unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].per_scenario.len(), 2);
        assert!(a[0].expected_desirability() > 0.0);
        // Worst-case scenario has 3× the weight → 3× the benefit.
        assert!(a[0].per_scenario[1] > a[0].per_scenario[0] * 2.5);
        assert!(a[0].permanent_bytes > 0);
        assert!(a[0].one_time_cost.ms() > 0.0);
        assert_eq!(a[0].confidence, 0.6);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let mut candidates = Vec::new();
        for chunk in 0..4u32 {
            for kind in IndexKind::ALL {
                candidates.push(Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(t.0, 0, chunk),
                        kind,
                    },
                    None,
                ));
            }
        }
        let mut seq = assessor();
        seq.threads = 1;
        let mut par = assessor();
        par.threads = 4;
        let f = forecast(t);
        let a = seq.assess(&engine, &base, &f, &candidates).unwrap();
        let b = par.assess(&engine, &base, &f, &candidates).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.candidate, y.candidate);
            assert_eq!(x.per_scenario, y.per_scenario);
        }
    }

    #[test]
    fn encoding_saves_memory_as_negative_permanent_bytes() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates = vec![Candidate::new(
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(t.0, 0, 0),
                kind: EncodingKind::Dictionary,
            },
            None,
        )];
        let a = assessor()
            .assess(&engine, &base, &forecast(t), &candidates)
            .unwrap();
        assert!(a[0].permanent_bytes < 0, "dict should shrink: {a:?}");
    }

    #[test]
    fn reassess_keeps_original_indices() {
        let (engine, t) = setup();
        let base = ConfigInstance::default();
        let candidates: Vec<Candidate> = (0..4u32)
            .map(|chunk| {
                Candidate::new(
                    ConfigAction::CreateIndex {
                        target: ChunkColumnRef::new(t.0, 0, chunk),
                        kind: IndexKind::Hash,
                    },
                    None,
                )
            })
            .collect();
        let a = assessor()
            .reassess(&engine, &base, &forecast(t), &candidates, &[2, 3])
            .unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].candidate, 2);
        assert_eq!(a[1].candidate, 3);
    }

    /// Delta-aware assessment must equal the brute-force definition
    /// (re-cost *every* query under every hypothetical configuration)
    /// bit-for-bit, including across non-hot placements where actions
    /// propagate globally through buffer pressure.
    #[test]
    fn delta_assess_matches_full_recompute() {
        let schema = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
        ])
        .unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![
                ColumnValues::Int((0..800).map(|i| i % 40).collect()),
                ColumnValues::Int((0..800).map(|i| i % 9).collect()),
            ],
            200,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let t = engine.create_table(table).unwrap();
        let schema2 = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table2 = Table::from_columns(
            "u",
            schema2,
            vec![ColumnValues::Int((0..400).map(|i| i % 13).collect())],
            200,
        )
        .unwrap();
        let u = engine.create_table(table2).unwrap();

        // A base with non-hot chunks so buffer pressure is in play.
        let mut base = ConfigInstance::default();
        base.placements
            .insert((t, smdb_common::ChunkId(3)), Tier::Cold);
        base.placements
            .insert((u, smdb_common::ChunkId(1)), Tier::Warm);

        let q = |tid, col: u16, v: i64, name: &str| {
            Query::new(
                tid,
                "t",
                vec![ScanPredicate::eq(ColumnId(col), v)],
                None,
                name,
            )
        };
        let workload = smdb_query::Workload::new(vec![
            smdb_query::WeightedQuery::new(q(t, 0, 7, "q0"), 4.0),
            smdb_query::WeightedQuery::new(q(t, 1, 3, "q1"), 2.0),
            smdb_query::WeightedQuery::new(q(u, 0, 5, "q2"), 7.0),
        ]);
        let scenarios = ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload,
            }],
        };

        let candidates = vec![
            Candidate::new(
                ConfigAction::CreateIndex {
                    target: ChunkColumnRef::new(t.0, 0, 0),
                    kind: IndexKind::Hash,
                },
                None,
            ),
            Candidate::new(
                ConfigAction::SetEncoding {
                    // Non-hot chunk: shifts global buffer pressure.
                    target: ChunkColumnRef::new(t.0, 1, 3),
                    kind: EncodingKind::Dictionary,
                },
                None,
            ),
            Candidate::new(
                ConfigAction::SetPlacement {
                    table: u,
                    chunk: smdb_common::ChunkId(0),
                    tier: Tier::Cold,
                },
                None,
            ),
            Candidate::new(
                ConfigAction::SetKnob {
                    knob: smdb_storage::KnobKind::BufferPoolMb,
                    value: 48.0,
                },
                None,
            ),
        ];

        let mut delta = assessor();
        delta.threads = 1;
        let got = delta
            .assess(&engine, &base, &scenarios, &candidates)
            .unwrap();

        // Brute force with an uncached estimator: re-cost *every* query
        // under each hypothetical, accumulating w·(base − hypo) in
        // workload order (the same expression the delta path evaluates
        // over the affected subset — unaffected terms are exactly +0.0).
        let plain = WhatIf::uncached(Arc::new(LogicalCostModel::default()));
        let base_ctx = ConfigContext::new(&engine, &base);
        for (i, c) in candidates.iter().enumerate() {
            let mut hypo = base.clone();
            hypo.apply(&c.action);
            let hypo_ctx = ConfigContext::new(&engine, &hypo);
            for (s_idx, s) in scenarios.iter().enumerate() {
                let mut want = 0.0;
                for wq in s.workload.queries() {
                    let b = plain
                        .query_cost(&engine, &base_ctx, &wq.query, &base)
                        .unwrap();
                    let h = plain
                        .query_cost(&engine, &hypo_ctx, &wq.query, &hypo)
                        .unwrap();
                    want += (b.ms() - h.ms()) * wq.weight;
                }
                assert_eq!(
                    got[i].per_scenario[s_idx], want,
                    "candidate {i} scenario {s_idx}"
                );
            }
        }
    }

    #[test]
    fn drop_index_frees_memory() {
        let (engine, t) = setup();
        let target = ChunkColumnRef::new(t.0, 0, 0);
        let mut base = ConfigInstance::default();
        base.indexes.insert(target, IndexKind::BTree);
        let bytes =
            estimate_permanent_bytes(&engine, &base, &ConfigAction::DropIndex { target }).unwrap();
        assert!(bytes < 0);
    }
}
