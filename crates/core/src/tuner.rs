//! The per-feature tuner: enumerate → assess → select (Section II-D).
//!
//! A tuner "takes workload forecasts and cost estimations as input and
//! delivers configurations for features as output". The pipeline is
//! assembled from exchangeable components; `propose` is purely
//! hypothetical (what-if) — applying the proposal is the executor's job.

use smdb_common::{Cost, Result};
use smdb_forecast::ForecastSet;
use smdb_storage::{ConfigAction, ConfigInstance, StorageEngine};

use crate::assessor::Assessor;
use crate::candidate::SelectionInput;
use crate::constraints::ConstraintSet;
use crate::enumerator::Enumerator;
use crate::feature::FeatureKind;
use crate::selectors::Selector;

/// A per-feature tuning pipeline.
pub struct Tuner {
    pub feature: FeatureKind,
    enumerator: Box<dyn Enumerator>,
    assessor: Box<dyn Assessor>,
    selector: Box<dyn Selector>,
    /// Weight of reconfiguration costs in the acceptance test: a proposal
    /// is accepted only when `benefit · horizon ≥ weight · reconfiguration
    /// cost`. Zero disables the test (every improving proposal is taken) —
    /// the configuration-thrash experiment (E10) contrasts the two.
    pub reconfiguration_weight: f64,
    /// How many forecast horizons the benefit is assumed to persist.
    pub benefit_horizon: f64,
    /// When true the tuner *re-selects* this feature's configuration
    /// from scratch each run instead of only adding to it: candidates
    /// are enumerated against the base configuration with this feature's
    /// entries stripped, and the action diff naturally drops entries
    /// (e.g. stale indexes) that no longer pay off. This is how classic
    /// index advisors (AutoAdmin, DB2 Advisor) behave.
    pub reselect: bool,
}

/// The tuner's output: a hypothetical configuration plus its predicted
/// economics.
#[derive(Debug, Clone)]
pub struct TuningProposal {
    pub feature: FeatureKind,
    /// The proposed configuration (equals the base when not accepted).
    pub target: ConfigInstance,
    /// Actions from the base to the target (empty when not accepted).
    pub actions: Vec<ConfigAction>,
    /// Expected workload-cost reduction per forecast horizon.
    pub predicted_benefit: Cost,
    /// Estimated one-time reconfiguration cost.
    pub reconfiguration_cost: Cost,
    /// Enumerated candidate count (runtime driver, per the paper).
    pub candidates_enumerated: usize,
    /// Chosen candidate count.
    pub chosen: usize,
    /// Whether the reconfiguration-cost test passed.
    pub accepted: bool,
}

impl Tuner {
    /// Assembles a tuner from components.
    pub fn new(
        feature: FeatureKind,
        enumerator: Box<dyn Enumerator>,
        assessor: Box<dyn Assessor>,
        selector: Box<dyn Selector>,
    ) -> Self {
        Tuner {
            feature,
            enumerator,
            assessor,
            selector,
            reconfiguration_weight: 1.0,
            benefit_horizon: 10.0,
            reselect: false,
        }
    }

    /// Strips this tuner's feature from a configuration (reselect mode).
    fn strip_feature(&self, base: &ConfigInstance) -> ConfigInstance {
        let mut stripped = base.clone();
        match self.feature {
            FeatureKind::Indexing => stripped.indexes.clear(),
            FeatureKind::Compression => stripped.encodings.clear(),
            FeatureKind::Placement => stripped.placements.clear(),
            FeatureKind::BufferPool => {
                stripped.knobs.buffer_pool_mb = smdb_storage::Knobs::default().buffer_pool_mb;
            }
        }
        stripped
    }

    /// Component names, for experiment tables.
    pub fn component_names(&self) -> (String, String, String) {
        (
            self.enumerator.name().to_string(),
            self.assessor.name().to_string(),
            self.selector.name().to_string(),
        )
    }

    /// Replaces the selector (selectors are exchangeable per the paper).
    pub fn set_selector(&mut self, selector: Box<dyn Selector>) {
        self.selector = selector;
    }

    /// The memory budget the selector must respect for this feature.
    fn memory_budget(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        constraints: &ConstraintSet,
    ) -> Result<Option<i64>> {
        match self.feature {
            FeatureKind::Indexing => {
                let data_bytes = engine.memory_report().data_bytes as i64;
                let Some(budget) = constraints.effective_index_budget(data_bytes) else {
                    return Ok(None);
                };
                // Budget remaining after the indexes already configured.
                let mut used = 0i64;
                for (&target, &kind) in &base.indexes {
                    used +=
                        smdb_cost::sizes::estimate_target_index_bytes(engine, target, kind)? as i64;
                }
                Ok(Some((budget - used).max(0)))
            }
            FeatureKind::Placement => {
                let Some(capacity) = constraints.hot_tier_bytes else {
                    return Ok(None);
                };
                let used = smdb_cost::sizes::estimate_hot_bytes(engine, base)? as i64;
                Ok(Some((capacity - used).max(0)))
            }
            // Compression frees memory; the buffer pool is bounded by its
            // enumerator's range.
            _ => Ok(None),
        }
    }

    /// Runs the pipeline and returns a proposal, applying the
    /// reconfiguration-cost acceptance test.
    pub fn propose(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        constraints: &ConstraintSet,
    ) -> Result<TuningProposal> {
        self.propose_internal(engine, base, scenarios, constraints, true)
    }

    /// Pipeline core; `gated = false` bypasses the reconfiguration test
    /// (used by the dependence analysis, which wants raw optima).
    pub(crate) fn propose_internal(
        &self,
        engine: &StorageEngine,
        base: &ConfigInstance,
        scenarios: &ForecastSet,
        constraints: &ConstraintSet,
        gated: bool,
    ) -> Result<TuningProposal> {
        // In reselect mode the pipeline runs against the base with this
        // feature stripped, so existing entries must re-earn their place.
        let enum_base = if self.reselect {
            self.strip_feature(base)
        } else {
            base.clone()
        };
        let candidates = self.enumerator.enumerate(engine, &enum_base, scenarios)?;
        if candidates.is_empty() {
            return Ok(self.rejected(base, 0));
        }
        let assessments = self
            .assessor
            .assess(engine, &enum_base, scenarios, &candidates)?;
        // Costed once and reused below for the combined economics (when
        // not reselecting, `enum_base` *is* the base configuration).
        let enum_base_costs = self
            .assessor
            .scenario_costs(engine, &enum_base, scenarios)?;
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: self.memory_budget(engine, &enum_base, constraints)?,
            scenario_base_costs: Some(enum_base_costs.clone()),
        };
        let chosen = self.selector.select(&input)?;
        debug_assert!(input.is_feasible(&chosen), "selector violated constraints");

        let mut target = enum_base.clone();
        for &i in &chosen {
            target.apply(&candidates[i].action);
        }
        let actions = base.diff(&target);
        if actions.is_empty() {
            // Already at (or re-confirmed as) the selected configuration.
            return Ok(self.rejected(base, candidates.len()));
        }

        // Combined economics: whole-configuration what-if instead of the
        // interaction-blind sum of per-candidate desirabilities.
        let base_costs = if self.reselect {
            self.assessor.scenario_costs(engine, base, scenarios)?
        } else {
            enum_base_costs
        };
        let target_costs = self.assessor.scenario_costs(engine, &target, scenarios)?;
        let predicted_benefit = Cost(
            scenarios
                .iter()
                .zip(base_costs.iter().zip(&target_costs))
                .map(|(s, (b, t))| s.probability * (b - t))
                .sum(),
        );
        let reconfiguration_cost =
            smdb_cost::what_if::estimate_reconfiguration(engine, base, &actions)?;

        // Reconfiguration-cost acceptance (Section II-D(b)): benefits
        // must outweigh the cost of getting there.
        let accepted = !gated
            || predicted_benefit.ms() * self.benefit_horizon
                >= self.reconfiguration_weight * reconfiguration_cost.ms();
        if !accepted {
            return Ok(TuningProposal {
                feature: self.feature,
                target: base.clone(),
                actions: Vec::new(),
                predicted_benefit,
                reconfiguration_cost,
                candidates_enumerated: candidates.len(),
                chosen: chosen.len(),
                accepted: false,
            });
        }
        Ok(TuningProposal {
            feature: self.feature,
            target,
            actions,
            predicted_benefit,
            reconfiguration_cost,
            candidates_enumerated: candidates.len(),
            chosen: chosen.len(),
            accepted: true,
        })
    }

    fn rejected(&self, base: &ConfigInstance, enumerated: usize) -> TuningProposal {
        TuningProposal {
            feature: self.feature,
            target: base.clone(),
            actions: Vec::new(),
            predicted_benefit: Cost::ZERO,
            reconfiguration_cost: Cost::ZERO,
            candidates_enumerated: enumerated,
            chosen: 0,
            accepted: false,
        }
    }
}

/// Builds the standard tuner for a feature with the default component
/// choices (what-if assessor over the given estimator, greedy selector).
pub fn standard_tuner(feature: FeatureKind, what_if: smdb_cost::WhatIf) -> Tuner {
    use crate::assessor::WhatIfAssessor;
    use crate::enumerator::{
        BufferPoolEnumerator, EncodingEnumerator, IndexEnumerator, PlacementEnumerator,
    };
    use crate::selectors::GreedySelector;

    let enumerator: Box<dyn Enumerator> = match feature {
        FeatureKind::Indexing => Box::new(IndexEnumerator::default()),
        FeatureKind::Compression => Box::new(EncodingEnumerator),
        FeatureKind::Placement => Box::new(PlacementEnumerator),
        FeatureKind::BufferPool => Box::new(BufferPoolEnumerator::default()),
    };
    let mut tuner = Tuner::new(
        feature,
        enumerator,
        Box::new(WhatIfAssessor::new(what_if, 0.8)),
        Box::new(GreedySelector),
    );
    // Index advisors classically re-select the whole index set per run,
    // which also retires indexes the workload no longer justifies.
    tuner.reselect = feature == FeatureKind::Indexing;
    tuner
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::{ColumnId, TableId};
    use smdb_cost::{LogicalCostModel, WhatIf};
    use smdb_forecast::{ScenarioKind, WorkloadScenario};
    use smdb_query::{Query, Workload};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, Table};
    use std::sync::Arc;

    fn setup() -> (StorageEngine, TableId) {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..2000).map(|i| i % 100).collect())],
            500,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        let id = engine.create_table(table).unwrap();
        (engine, id)
    }

    fn forecast(t: TableId, weight: f64) -> ForecastSet {
        let q = Query::new(
            t,
            "t",
            vec![ScanPredicate::eq(ColumnId(0), 7i64)],
            None,
            "pt",
        );
        ForecastSet {
            scenarios: vec![WorkloadScenario {
                kind: ScenarioKind::Expected,
                name: "expected".into(),
                probability: 1.0,
                workload: Workload::new(vec![smdb_query::WeightedQuery::new(q, weight)]),
            }],
        }
    }

    fn what_if() -> WhatIf {
        WhatIf::new(Arc::new(LogicalCostModel::default()))
    }

    #[test]
    fn index_tuner_proposes_useful_indexes() {
        let (engine, t) = setup();
        let tuner = standard_tuner(FeatureKind::Indexing, what_if());
        let proposal = tuner
            .propose(
                &engine,
                &ConfigInstance::default(),
                &forecast(t, 100.0),
                &ConstraintSet::none(),
            )
            .unwrap();
        assert!(proposal.accepted);
        assert!(!proposal.actions.is_empty());
        assert!(proposal.predicted_benefit.ms() > 0.0);
        assert!(proposal.target.indexes.len() == proposal.chosen);
    }

    #[test]
    fn reconfiguration_weight_blocks_marginal_changes() {
        let (engine, t) = setup();
        let mut tuner = standard_tuner(FeatureKind::Indexing, what_if());
        // Tiny workload: index benefit exists but is marginal.
        tuner.benefit_horizon = 1.0;
        tuner.reconfiguration_weight = 1e6;
        let proposal = tuner
            .propose(
                &engine,
                &ConfigInstance::default(),
                &forecast(t, 0.01),
                &ConstraintSet::none(),
            )
            .unwrap();
        assert!(!proposal.accepted);
        assert!(proposal.actions.is_empty());
        assert_eq!(proposal.target, ConfigInstance::default());
    }

    #[test]
    fn memory_budget_limits_selection() {
        let (engine, t) = setup();
        let tuner = standard_tuner(FeatureKind::Indexing, what_if());
        let unconstrained = tuner
            .propose(
                &engine,
                &ConfigInstance::default(),
                &forecast(t, 100.0),
                &ConstraintSet::none(),
            )
            .unwrap();
        let tight = ConstraintSet {
            index_memory_bytes: Some(
                smdb_cost::sizes::estimate_index_bytes(500, 100, smdb_storage::IndexKind::Hash)
                    as i64
                    + 10,
            ),
            ..ConstraintSet::default()
        };
        let constrained = tuner
            .propose(
                &engine,
                &ConfigInstance::default(),
                &forecast(t, 100.0),
                &tight,
            )
            .unwrap();
        assert!(constrained.chosen < unconstrained.chosen);
        assert!(constrained.chosen >= 1);
    }

    fn trained_what_if(engine: &StorageEngine, t: TableId) -> WhatIf {
        // A calibrated model (trained on live executions) is needed for
        // tier/buffer-aware decisions — the logical model is blind there.
        let model = Arc::new(smdb_cost::CalibratedCostModel::new());
        let config = engine.current_config();
        for v in 0..100 {
            let q = Query::new(
                t,
                "t",
                vec![ScanPredicate::eq(ColumnId(0), v)],
                None,
                "train",
            );
            let out = engine.scan(t, q.predicates(), None).unwrap();
            model.observe(engine, &q, &config, out.sim_cost).unwrap();
        }
        model.refit().unwrap();
        WhatIf::new(model)
    }

    #[test]
    fn buffer_pool_tuner_changes_knob_only() {
        let (engine, t) = setup();
        let tuner = standard_tuner(FeatureKind::BufferPool, trained_what_if(&engine, t));
        let mut base = ConfigInstance::default();
        // Make the knob matter: everything on the cold tier, no buffer.
        for chunk in 0..4 {
            base.placements
                .insert((t, smdb_common::ChunkId(chunk)), smdb_storage::Tier::Cold);
        }
        base.knobs.buffer_pool_mb = 0.0;
        let proposal = tuner
            .propose(&engine, &base, &forecast(t, 100.0), &ConstraintSet::none())
            .unwrap();
        assert!(proposal.accepted, "{proposal:?}");
        assert_eq!(proposal.actions.len(), 1);
        assert!(matches!(proposal.actions[0], ConfigAction::SetKnob { .. }));
        assert!(proposal.target.knobs.buffer_pool_mb > 0.0);
    }

    #[test]
    fn compression_tuner_improves_scan_workload() {
        let (engine, t) = setup();
        let tuner = standard_tuner(FeatureKind::Compression, what_if());
        // The logical model is encoding-blind, so use the calibrated
        // feature-based path via a trained model? Here: use what-if with
        // the calibrated model untrained would bootstrap. Instead verify
        // the pipeline runs and produces a (possibly empty) proposal.
        let proposal = tuner
            .propose(
                &engine,
                &ConfigInstance::default(),
                &forecast(t, 100.0),
                &ConstraintSet::none(),
            )
            .unwrap();
        // Logical model sees no encoding benefit → no accepted changes.
        assert_eq!(proposal.actions.len(), 0);
        assert!(proposal.candidates_enumerated > 0);
    }
}
