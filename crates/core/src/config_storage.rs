//! Configuration-instance storage — the feedback loop.
//!
//! "When the configuration is adjusted, former configuration instances
//! are stored. This storing is central to establish a feedback loop for
//! past decisions by enabling the assessment of the impact of past tuning
//! decisions." (Section II-A(b))

use parking_lot::Mutex;
use smdb_common::json::Json;
use smdb_common::{Cost, LogicalTime, Result};
use smdb_storage::{ConfigAction, ConfigInstance, ConfigSnapshot};

use crate::feature::FeatureKind;

/// One stored (applied) configuration instance with its tuning context.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredInstance {
    pub applied_at: LogicalTime,
    /// The feature whose tuning produced this instance (None for
    /// multi-feature runs).
    pub feature: Option<FeatureKind>,
    /// The configuration after application.
    pub config: ConfigInstance,
    /// The actions that realised it.
    pub actions: Vec<ConfigAction>,
    /// What the tuner predicted the workload would cost afterwards.
    pub predicted_cost: Cost,
    /// Measured reconfiguration cost.
    pub reconfiguration_cost: Cost,
    /// Mean observed response time before the change.
    pub observed_before: Cost,
    /// Mean observed response time after the change (filled by the
    /// feedback pass once enough post-change queries ran).
    pub observed_after: Option<Cost>,
}

/// Assessment of one past decision, produced by the feedback loop.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionFeedback {
    pub applied_at: LogicalTime,
    pub feature: Option<FeatureKind>,
    /// Observed mean-response improvement (before − after); negative
    /// means the decision hurt.
    pub observed_improvement: Cost,
}

/// One recorded rollback: a reconfiguration failed mid-application and
/// the system was restored to the last good stored instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackRecord {
    pub at: LogicalTime,
    /// The actions that were abandoned (failed or still queued).
    pub abandoned_actions: Vec<ConfigAction>,
    /// The configuration the system was restored to.
    pub restored_config: ConfigInstance,
    /// Human-readable cause.
    pub cause: String,
}

/// Thread-safe storage of applied configuration instances.
#[derive(Debug, Default)]
pub struct ConfigStorage {
    instances: Mutex<Vec<StoredInstance>>,
    rollbacks: Mutex<Vec<RollbackRecord>>,
}

impl ConfigStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        ConfigStorage::default()
    }

    /// Stores a newly applied instance.
    pub fn store(&self, instance: StoredInstance) {
        self.instances.lock().push(instance);
    }

    /// Number of stored instances.
    pub fn len(&self) -> usize {
        self.instances.lock().len()
    }

    /// Whether no instance has been stored.
    pub fn is_empty(&self) -> bool {
        self.instances.lock().is_empty()
    }

    /// Fills `observed_after` of the most recent instance that still
    /// lacks it (called once post-change KPIs are stable).
    pub fn complete_latest(&self, observed_after: Cost) -> bool {
        let mut instances = self.instances.lock();
        for inst in instances.iter_mut().rev() {
            if inst.observed_after.is_none() {
                inst.observed_after = Some(observed_after);
                return true;
            }
        }
        false
    }

    /// A clone of all stored instances (most recent last).
    pub fn snapshot(&self) -> Vec<StoredInstance> {
        self.instances.lock().clone()
    }

    /// Feedback on every decision whose after-measurement exists.
    pub fn feedback(&self) -> Vec<DecisionFeedback> {
        self.instances
            .lock()
            .iter()
            .filter_map(|inst| {
                inst.observed_after.map(|after| DecisionFeedback {
                    applied_at: inst.applied_at,
                    feature: inst.feature,
                    observed_improvement: inst.observed_before - after,
                })
            })
            .collect()
    }

    /// The configuration in effect after the latest stored instance.
    pub fn latest_config(&self) -> Option<ConfigInstance> {
        self.instances.lock().last().map(|i| i.config.clone())
    }

    /// The last configuration known good — the latest *fully applied*
    /// stored instance. Identical to [`ConfigStorage::latest_config`];
    /// the alias names the rollback target.
    pub fn last_good_config(&self) -> Option<ConfigInstance> {
        self.latest_config()
    }

    /// Records that a failed reconfiguration was rolled back.
    pub fn record_rollback(&self, record: RollbackRecord) {
        self.rollbacks.lock().push(record);
    }

    /// Number of recorded rollbacks.
    pub fn rollback_count(&self) -> usize {
        self.rollbacks.lock().len()
    }

    /// A clone of all recorded rollbacks (most recent last).
    pub fn rollbacks(&self) -> Vec<RollbackRecord> {
        self.rollbacks.lock().clone()
    }

    /// Exports the whole decision history as JSON — the durable audit
    /// trail of the feedback loop (what was applied when, what it was
    /// predicted to do, and what it actually did).
    pub fn export_json(&self) -> Result<String> {
        let instances = self.instances.lock();
        let rows: Json = instances
            .iter()
            .map(|i| {
                Json::obj([
                    ("applied_at", Json::from(i.applied_at.raw())),
                    (
                        "feature",
                        Json::from(i.feature.map(|f| f.label().to_string())),
                    ),
                    ("config", snapshot_json(&ConfigSnapshot::from(&i.config))),
                    ("actions", i.actions.iter().map(|a| a.to_string()).collect()),
                    ("predicted_cost_ms", Json::from(i.predicted_cost.ms())),
                    (
                        "reconfiguration_cost_ms",
                        Json::from(i.reconfiguration_cost.ms()),
                    ),
                    ("observed_before_ms", Json::from(i.observed_before.ms())),
                    (
                        "observed_after_ms",
                        Json::from(i.observed_after.map(|c| c.ms())),
                    ),
                ])
            })
            .collect();
        Ok(rows.to_string_pretty())
    }
}

/// Flattens a [`ConfigSnapshot`] into JSON: map keys become explicit
/// object fields (`{table, column, chunk, kind}`), which JSON can
/// represent and downstream tooling can diff.
fn snapshot_json(snap: &ConfigSnapshot) -> Json {
    Json::obj([
        (
            "indexes",
            snap.indexes
                .iter()
                .map(|(target, kind)| {
                    Json::obj([
                        ("table", Json::from(u64::from(target.table.0))),
                        ("column", Json::from(u64::from(target.column.0))),
                        ("chunk", Json::from(u64::from(target.chunk.0))),
                        ("kind", Json::from(format!("{kind:?}"))),
                    ])
                })
                .collect(),
        ),
        (
            "encodings",
            snap.encodings
                .iter()
                .map(|(target, kind)| {
                    Json::obj([
                        ("table", Json::from(u64::from(target.table.0))),
                        ("column", Json::from(u64::from(target.column.0))),
                        ("chunk", Json::from(u64::from(target.chunk.0))),
                        ("kind", Json::from(format!("{kind:?}"))),
                    ])
                })
                .collect(),
        ),
        (
            "placements",
            snap.placements
                .iter()
                .map(|(table, chunk, tier)| {
                    Json::obj([
                        ("table", Json::from(u64::from(table.0))),
                        ("chunk", Json::from(u64::from(chunk.0))),
                        ("tier", Json::from(format!("{tier:?}"))),
                    ])
                })
                .collect(),
        ),
        ("buffer_pool_mb", Json::from(snap.buffer_pool_mb)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(at: u64, before: f64) -> StoredInstance {
        StoredInstance {
            applied_at: LogicalTime(at),
            feature: Some(FeatureKind::Indexing),
            config: ConfigInstance::default(),
            actions: vec![],
            predicted_cost: Cost(10.0),
            reconfiguration_cost: Cost(1.0),
            observed_before: Cost(before),
            observed_after: None,
        }
    }

    #[test]
    fn store_and_feedback_loop() {
        let storage = ConfigStorage::new();
        assert!(storage.is_empty());
        storage.store(instance(1, 20.0));
        assert!(storage.complete_latest(Cost(12.0)));
        storage.store(instance(5, 12.0));
        // Second instance not yet measured → one feedback entry.
        let fb = storage.feedback();
        assert_eq!(fb.len(), 1);
        assert_eq!(fb[0].observed_improvement, Cost(8.0));
        assert!(storage.complete_latest(Cost(15.0)));
        let fb = storage.feedback();
        assert_eq!(fb.len(), 2);
        // The second decision made things worse: negative improvement.
        assert!(fb[1].observed_improvement.ms() < 0.0);
        // Nothing left to complete.
        assert!(!storage.complete_latest(Cost(1.0)));
    }

    #[test]
    fn export_json_roundtrips_structured_fields() {
        let storage = ConfigStorage::new();
        let mut inst = instance(3, 9.0);
        inst.config.indexes.insert(
            smdb_common::ChunkColumnRef::new(0, 1, 2),
            smdb_storage::IndexKind::Hash,
        );
        inst.actions = vec![ConfigAction::DropIndex {
            target: smdb_common::ChunkColumnRef::new(0, 0, 0),
        }];
        storage.store(inst);
        storage.complete_latest(Cost(4.5));
        let json = storage.export_json().unwrap();
        let parsed = smdb_common::json::parse(&json).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
        let row = parsed.at(0).unwrap();
        assert_eq!(row.get("applied_at").and_then(Json::as_u64), Some(3));
        assert_eq!(row.get("feature").and_then(Json::as_str), Some("indexing"));
        assert_eq!(
            row.get("observed_after_ms").and_then(Json::as_f64),
            Some(4.5)
        );
        let indexes = row.get("config").and_then(|c| c.get("indexes")).unwrap();
        assert_eq!(indexes.as_array().unwrap().len(), 1);
        assert_eq!(
            indexes
                .at(0)
                .and_then(|i| i.get("kind"))
                .and_then(Json::as_str),
            Some("Hash")
        );
        let action = row.get("actions").and_then(|a| a.at(0)).unwrap();
        assert!(action.as_str().unwrap().contains("DROP INDEX"));
    }

    #[test]
    fn rollback_records_accumulate() {
        let storage = ConfigStorage::new();
        assert_eq!(storage.rollback_count(), 0);
        assert!(storage.last_good_config().is_none());
        storage.store(instance(1, 5.0));
        storage.record_rollback(RollbackRecord {
            at: LogicalTime(7),
            abandoned_actions: vec![ConfigAction::DropIndex {
                target: smdb_common::ChunkColumnRef::new(0, 0, 0),
            }],
            restored_config: ConfigInstance::default(),
            cause: "injected".to_string(),
        });
        assert_eq!(storage.rollback_count(), 1);
        let records = storage.rollbacks();
        assert_eq!(records[0].at, LogicalTime(7));
        assert_eq!(records[0].abandoned_actions.len(), 1);
        assert_eq!(records[0].cause, "injected");
        // Rollbacks do not count as stored instances.
        assert_eq!(storage.len(), 1);
        assert!(storage.last_good_config().is_some());
    }

    #[test]
    fn latest_config_follows_stores() {
        let storage = ConfigStorage::new();
        assert!(storage.latest_config().is_none());
        let mut inst = instance(1, 5.0);
        inst.config.knobs.buffer_pool_mb = 512.0;
        storage.store(inst);
        assert_eq!(storage.latest_config().unwrap().knobs.buffer_pool_mb, 512.0);
        assert_eq!(storage.len(), 1);
        assert_eq!(storage.snapshot().len(), 1);
    }
}
