//! Plugin-style deployment (Section II-B, "Implementation Strategies").
//!
//! The paper weighs integrating self-management *inside the database
//! core* (tight coupling) against running it as a *standalone
//! application* (interface overhead), and picks a third way: Hyrise's
//! plugin infrastructure — "direct access to database core methods
//! without implementation or performance overhead … while the database
//! system remains independent".
//!
//! This module mirrors that deployment shape: a [`SelfManagementPlugin`]
//! is loaded into a [`PluginHost`] at runtime, receives the database
//! handle on load, gets ticked by the host's maintenance cycle, and can
//! be unloaded at any time leaving the database untouched. The default
//! plugin wraps a [`Driver`]; alternative plugins (e.g. monitoring-only)
//! implement the same trait.

use std::sync::Arc;

use smdb_common::Result;
use smdb_query::{Database, Query};

use crate::driver::{Driver, TuningRunReport};

/// A dynamically loadable self-management component.
///
/// Plugins are developed "identical to the development of the database
/// core, but plugin code is not compiled with the database system
/// itself" — here: they only see the public [`Database`] surface.
pub trait SelfManagementPlugin: Send + Sync {
    /// Plugin name (for host listings).
    fn name(&self) -> &str;

    /// Called once when the plugin is loaded; receives the database
    /// handle the plugin is allowed to manage.
    fn on_load(&mut self, db: Arc<Database>) -> Result<()>;

    /// Called by the host's maintenance cycle (e.g. once per bucket).
    fn on_tick(&mut self) -> Result<()>;

    /// Called when the plugin is unloaded; must leave the database in a
    /// consistent state.
    fn on_unload(&mut self) -> Result<()>;
}

/// Loads and drives self-management plugins against one database.
pub struct PluginHost {
    db: Arc<Database>,
    plugins: Vec<Box<dyn SelfManagementPlugin>>,
}

impl PluginHost {
    /// Creates a host for a database.
    pub fn new(db: Arc<Database>) -> Self {
        PluginHost {
            db,
            plugins: Vec::new(),
        }
    }

    /// Loads a plugin (calls its `on_load`).
    pub fn load(&mut self, mut plugin: Box<dyn SelfManagementPlugin>) -> Result<()> {
        plugin.on_load(self.db.clone())?;
        self.plugins.push(plugin);
        Ok(())
    }

    /// Unloads a plugin by name; returns whether one was found.
    pub fn unload(&mut self, name: &str) -> Result<bool> {
        if let Some(pos) = self.plugins.iter().position(|p| p.name() == name) {
            let mut plugin = self.plugins.remove(pos);
            plugin.on_unload()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Names of loaded plugins.
    pub fn loaded(&self) -> Vec<&str> {
        self.plugins.iter().map(|p| p.name()).collect()
    }

    /// Ticks every loaded plugin (one maintenance cycle).
    pub fn tick(&mut self) -> Result<()> {
        for plugin in &mut self.plugins {
            plugin.on_tick()?;
        }
        Ok(())
    }
}

/// The default plugin: wraps a [`Driver`] and lets the organizer decide
/// on every tick whether tuning is justified.
pub struct SelfDrivingPlugin {
    build: Option<Box<dyn FnOnce(Arc<Database>) -> Driver + Send + Sync>>,
    driver: Option<Driver>,
    /// Reports of tuning runs triggered by ticks.
    pub tuning_runs: Vec<TuningRunReport>,
}

impl SelfDrivingPlugin {
    /// Creates the plugin from a driver factory (the driver needs the
    /// database handle, which only arrives at load time).
    pub fn new(build: impl FnOnce(Arc<Database>) -> Driver + Send + Sync + 'static) -> Self {
        SelfDrivingPlugin {
            build: Some(Box::new(build)),
            driver: None,
            tuning_runs: Vec::new(),
        }
    }

    /// Runs a bucket of queries through the managed driver (applications
    /// would normally talk to the database directly; this helper exists
    /// for hosts that route traffic through the plugin).
    pub fn run_bucket(&self, queries: &[Query]) -> Result<()> {
        let driver = self
            .driver
            .as_ref()
            .ok_or_else(|| smdb_common::Error::invalid("plugin not loaded"))?;
        driver.run_bucket(queries)?;
        Ok(())
    }

    /// The wrapped driver, when loaded.
    pub fn driver(&self) -> Option<&Driver> {
        self.driver.as_ref()
    }
}

impl SelfManagementPlugin for SelfDrivingPlugin {
    fn name(&self) -> &str {
        "self_driving"
    }

    fn on_load(&mut self, db: Arc<Database>) -> Result<()> {
        let build = self
            .build
            .take()
            .ok_or_else(|| smdb_common::Error::invalid("plugin already loaded once"))?;
        self.driver = Some(build(db));
        Ok(())
    }

    fn on_tick(&mut self) -> Result<()> {
        let Some(driver) = &self.driver else {
            return Ok(());
        };
        if let Some(report) = driver.maybe_tune()? {
            self.tuning_runs.push(report);
        }
        Ok(())
    }

    fn on_unload(&mut self) -> Result<()> {
        // Dropping the driver detaches all self-management state; the
        // database (and its tuned configuration) remains as-is, exactly
        // like unloading a Hyrise plugin.
        self.driver = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;
    use smdb_common::{ColumnId, TableId};
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, ScanPredicate, Schema, StorageEngine, Table};

    fn database() -> Arc<Database> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).unwrap();
        let table = Table::from_columns(
            "t",
            schema,
            vec![ColumnValues::Int((0..1000).map(|i| i % 50).collect())],
            250,
        )
        .unwrap();
        let mut engine = StorageEngine::default();
        engine.create_table(table).unwrap();
        Database::new(engine)
    }

    fn queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| {
                Query::new(
                    TableId(0),
                    "t",
                    vec![ScanPredicate::eq(ColumnId(0), (i % 50) as i64)],
                    None,
                    "pt",
                )
            })
            .collect()
    }

    #[test]
    fn plugin_lifecycle() {
        let db = database();
        let mut host = PluginHost::new(db.clone());
        assert!(host.loaded().is_empty());
        host.load(Box::new(SelfDrivingPlugin::new(|db| {
            Driver::builder(db)
                .features(vec![FeatureKind::Indexing])
                .build()
        })))
        .unwrap();
        assert_eq!(host.loaded(), vec!["self_driving"]);
        host.tick().unwrap();
        assert!(host.unload("self_driving").unwrap());
        assert!(!host.unload("self_driving").unwrap());
        assert!(host.loaded().is_empty());
    }

    #[test]
    fn unloading_leaves_tuned_configuration_in_place() {
        let db = database();
        let mut host = PluginHost::new(db.clone());
        let plugin = SelfDrivingPlugin::new(|db| {
            Driver::builder(db)
                .features(vec![FeatureKind::Indexing])
                .build()
        });
        host.load(Box::new(plugin)).unwrap();

        // Route traffic + force a tuning through the database directly:
        // simulate by constructing a driver the same way and tuning.
        // Simpler: drive ticks after traffic so the organizer fires.
        for _ in 0..3 {
            for q in queries(40) {
                db.run_query(&q).unwrap();
            }
            db.advance_time();
        }
        // Apply an index directly to verify unload does not revert config.
        db.apply_config(&[smdb_storage::ConfigAction::CreateIndex {
            target: smdb_common::ChunkColumnRef::new(0, 0, 0),
            kind: smdb_storage::IndexKind::Hash,
        }])
        .unwrap();
        assert!(host.unload("self_driving").unwrap());
        // The database keeps its configuration after unload.
        assert_eq!(db.engine().current_config().indexes.len(), 1);
    }

    #[test]
    fn double_load_rejected() {
        let db = database();
        let mut plugin = SelfDrivingPlugin::new(|db| Driver::builder(db).build());
        plugin.on_load(db.clone()).unwrap();
        assert!(plugin.on_load(db).is_err());
    }
}
