//! Candidates, assessments and selection inputs — the data flowing
//! through the tuning pipeline (Section II-D).

use smdb_common::Cost;
use smdb_storage::ConfigAction;

/// A tuning candidate: one configuration action the tuner may take.
///
/// "Candidates can be of various forms to represent different types,
/// i.e., physical design features or knobs" — here every candidate
/// carries the [`ConfigAction`] that would realise it.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The action realising this candidate.
    pub action: ConfigAction,
    /// Candidates sharing an `exclusive_group` are mutually exclusive
    /// alternatives (e.g. hash vs B-tree index on the same segment, or
    /// the discretised values of one knob); a selector may pick at most
    /// one per group.
    pub exclusive_group: Option<u64>,
    /// Human-readable label for logs and experiment tables.
    pub label: String,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(action: ConfigAction, exclusive_group: Option<u64>) -> Self {
        let label = action.to_string();
        Candidate {
            action,
            exclusive_group,
            label,
        }
    }
}

/// The assessor's verdict on one candidate (Section II-D(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct Assessment {
    /// Index of the assessed candidate in the candidate list.
    pub candidate: usize,
    /// Desirability per forecast scenario: the estimated workload-cost
    /// reduction (ms, possibly negative) of applying this candidate alone.
    pub per_scenario: Vec<f64>,
    /// Scenario probabilities aligned with `per_scenario`.
    pub probabilities: Vec<f64>,
    /// Certainty of the assessment in `[0, 1]`.
    pub confidence: f64,
    /// Permanent cost: memory delta in bytes (negative = frees memory).
    pub permanent_bytes: i64,
    /// One-time reconfiguration cost of applying the candidate.
    pub one_time_cost: Cost,
}

impl Assessment {
    /// Probability-weighted expected desirability.
    pub fn expected_desirability(&self) -> f64 {
        self.per_scenario
            .iter()
            .zip(&self.probabilities)
            .map(|(d, p)| d * p)
            .sum()
    }

    /// Worst-case (minimum) desirability across scenarios.
    pub fn worst_desirability(&self) -> f64 {
        self.per_scenario
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Probability-weighted standard deviation of desirability.
    pub fn desirability_std(&self) -> f64 {
        let mean = self.expected_desirability();
        let var: f64 = self
            .per_scenario
            .iter()
            .zip(&self.probabilities)
            .map(|(d, p)| p * (d - mean).powi(2))
            .sum();
        var.max(0.0).sqrt()
    }

    /// Memory the candidate *consumes* (clamped at zero: freeing memory
    /// never violates a budget).
    pub fn budget_weight(&self) -> f64 {
        self.permanent_bytes.max(0) as f64
    }
}

/// Everything a selector sees (Section II-D(c)).
#[derive(Debug)]
pub struct SelectionInput<'a> {
    pub candidates: &'a [Candidate],
    pub assessments: &'a [Assessment],
    /// Memory budget for the selection's permanent costs, if any.
    pub memory_budget_bytes: Option<i64>,
    /// Estimated workload cost per scenario under the base configuration
    /// (aligned with each assessment's `per_scenario`). Lets set-level
    /// selectors reason about worst-case *cost*, not just per-candidate
    /// benefit. `None` when the caller did not price the base.
    pub scenario_base_costs: Option<Vec<f64>>,
}

impl SelectionInput<'_> {
    /// Verifies that `chosen` (indices into `candidates`) respects the
    /// budget and exclusivity groups. Used by tests and as a debug
    /// assertion after selection.
    pub fn is_feasible(&self, chosen: &[usize]) -> bool {
        let mut groups = std::collections::HashSet::new();
        let mut bytes = 0.0f64;
        for &i in chosen {
            if i >= self.candidates.len() {
                return false;
            }
            if let Some(g) = self.candidates[i].exclusive_group {
                if !groups.insert(g) {
                    return false;
                }
            }
            bytes += self.assessments[i].budget_weight();
        }
        match self.memory_budget_bytes {
            Some(budget) => bytes <= budget as f64 + 1e-6,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_common::ChunkColumnRef;
    use smdb_storage::IndexKind;

    fn assessment(candidate: usize, per_scenario: Vec<f64>, bytes: i64) -> Assessment {
        let n = per_scenario.len();
        Assessment {
            candidate,
            per_scenario,
            probabilities: vec![1.0 / n as f64; n],
            confidence: 1.0,
            permanent_bytes: bytes,
            one_time_cost: Cost(1.0),
        }
    }

    fn candidate(group: Option<u64>) -> Candidate {
        Candidate::new(
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(0, 0, 0),
                kind: IndexKind::Hash,
            },
            group,
        )
    }

    #[test]
    fn statistics_of_assessment() {
        let a = assessment(0, vec![10.0, 2.0, 6.0], 100);
        assert!((a.expected_desirability() - 6.0).abs() < 1e-9);
        assert_eq!(a.worst_desirability(), 2.0);
        assert!(a.desirability_std() > 0.0);
        assert_eq!(a.budget_weight(), 100.0);
        // Freed memory never counts against the budget.
        assert_eq!(assessment(0, vec![1.0], -50).budget_weight(), 0.0);
    }

    #[test]
    fn feasibility_checks_budget_and_groups() {
        let candidates = vec![candidate(Some(1)), candidate(Some(1)), candidate(None)];
        let assessments = vec![
            assessment(0, vec![5.0], 60),
            assessment(1, vec![4.0], 60),
            assessment(2, vec![3.0], 60),
        ];
        let input = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: Some(130),
            scenario_base_costs: None,
        };
        assert!(input.is_feasible(&[0, 2]));
        assert!(!input.is_feasible(&[0, 1])); // same group
        assert!(!input.is_feasible(&[0, 1, 2])); // group + budget
        assert!(!input.is_feasible(&[9])); // out of range
        let unbounded = SelectionInput {
            candidates: &candidates,
            assessments: &assessments,
            memory_budget_bytes: None,
            scenario_base_costs: None,
        };
        assert!(unbounded.is_feasible(&[0, 2]));
    }
}
