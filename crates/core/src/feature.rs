//! Tunable features.
//!
//! "There is one tuner instance per feature" (Section II-D). The four
//! features below are the ones the paper names as its running examples:
//! index selection, compression schemes, data placement, and a knob
//! (the buffer pool size).

/// A tunable feature of the database configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// Per-chunk secondary index selection (physical design, discrete).
    Indexing,
    /// Per-chunk encoding/compression selection (physical design, discrete).
    Compression,
    /// Per-chunk tier placement (physical design, discrete).
    Placement,
    /// Buffer pool size (knob, continuous range discretised per the
    /// paper's "smallest available intervals").
    BufferPool,
}

impl FeatureKind {
    /// All features, in their conventional display order.
    pub const ALL: [FeatureKind; 4] = [
        FeatureKind::Indexing,
        FeatureKind::Compression,
        FeatureKind::Placement,
        FeatureKind::BufferPool,
    ];

    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            FeatureKind::Indexing => "indexing",
            FeatureKind::Compression => "compression",
            FeatureKind::Placement => "placement",
            FeatureKind::BufferPool => "buffer_pool",
        }
    }

    /// Whether the feature is part of the physical database design (vs a
    /// knob), per the paper's categorisation of configurable entities.
    pub fn is_physical_design(self) -> bool {
        !matches!(self, FeatureKind::BufferPool)
    }
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            FeatureKind::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels.len(), FeatureKind::ALL.len());
    }

    #[test]
    fn categorisation() {
        assert!(FeatureKind::Indexing.is_physical_design());
        assert!(!FeatureKind::BufferPool.is_physical_design());
    }
}
