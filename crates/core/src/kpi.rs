//! Runtime KPI collection (Section II-A(e)).
//!
//! "Runtime KPIs … are necessary for determining the impact of adjusted
//! configurations … can disclose when the configuration should be
//! adjusted … and help to identify phases of low resource utilization
//! that can be used to run resource-intensive tunings."
//!
//! DBMS KPIs here: query response times (simulated cost). System KPIs:
//! memory usage and utilization (busy time per bucket capacity).

use std::collections::VecDeque;

use parking_lot::Mutex;
use smdb_common::Cost;

const LATENCY_WINDOW: usize = 4096;
const BUCKET_WINDOW: usize = 256;

#[derive(Debug, Default)]
struct Inner {
    latencies: VecDeque<f64>,
    utilization: VecDeque<f64>,
    memory: VecDeque<usize>,
    /// Queries served per closed bucket (throughput history).
    bucket_queries: VecDeque<u64>,
    queries_total: u64,
    /// Queries recorded since the last bucket close.
    open_bucket_queries: u64,
    /// Busy ms accumulated since the last bucket close.
    open_bucket_busy: f64,
    /// Set by [`KpiCollector::reset_latencies`]: the utilization window
    /// predates the reconfiguration that cleared the latency window, so
    /// it must not be reported as current until a new bucket closes.
    utilization_stale: bool,
}

/// What one bucket close observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketClose {
    /// Busy time the bucket spent executing queries.
    pub busy: Cost,
    /// Busy time over bucket capacity.
    pub utilization: f64,
    /// Queries served in the bucket.
    pub queries: u64,
}

/// Thread-safe runtime KPI collector.
#[derive(Debug)]
pub struct KpiCollector {
    inner: Mutex<Inner>,
    /// Work capacity of one bucket, in ms of query runtime. Utilization
    /// of a bucket = busy ms / capacity.
    pub bucket_capacity: Cost,
    /// Utilization below which the system counts as idle enough for
    /// resource-intensive tunings.
    pub low_utilization_threshold: f64,
}

impl Default for KpiCollector {
    fn default() -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity: Cost(1000.0),
            low_utilization_threshold: 0.3,
        }
    }
}

impl KpiCollector {
    /// Creates a collector with the given bucket capacity.
    pub fn new(bucket_capacity: Cost, low_utilization_threshold: f64) -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity,
            low_utilization_threshold,
        }
    }

    /// Records one query's response time.
    pub fn record_query(&self, latency: Cost) {
        let mut inner = self.inner.lock();
        if inner.latencies.len() == LATENCY_WINDOW {
            inner.latencies.pop_front();
        }
        inner.latencies.push_back(latency.ms());
        inner.queries_total += 1;
        inner.open_bucket_queries += 1;
        inner.open_bucket_busy += latency.ms();
    }

    /// Records a memory usage sample.
    pub fn record_memory(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        if inner.memory.len() == BUCKET_WINDOW {
            inner.memory.pop_front();
        }
        inner.memory.push_back(bytes);
    }

    /// Closes a time bucket that spent `busy` ms executing queries.
    pub fn end_bucket(&self, busy: Cost) -> BucketClose {
        let utilization = (busy.ms() / self.bucket_capacity.ms().max(1e-9)).max(0.0);
        let mut inner = self.inner.lock();
        if inner.utilization.len() == BUCKET_WINDOW {
            inner.utilization.pop_front();
        }
        inner.utilization.push_back(utilization);
        let queries = inner.open_bucket_queries;
        if inner.bucket_queries.len() == BUCKET_WINDOW {
            inner.bucket_queries.pop_front();
        }
        inner.bucket_queries.push_back(queries);
        inner.open_bucket_queries = 0;
        inner.open_bucket_busy = 0.0;
        // A fresh bucket supersedes any pre-reset utilization.
        inner.utilization_stale = false;
        BucketClose {
            busy,
            utilization,
            queries,
        }
    }

    /// Closes a time bucket using the busy time accumulated by
    /// [`KpiCollector::record_query`] since the previous close — the
    /// serving-runtime path, where no single caller owns the bucket cost.
    pub fn end_bucket_accumulated(&self) -> BucketClose {
        let busy = Cost(self.inner.lock().open_bucket_busy);
        self.end_bucket(busy)
    }

    /// Mean response time over the rolling latency window.
    pub fn mean_response(&self) -> Cost {
        let inner = self.inner.lock();
        if inner.latencies.is_empty() {
            return Cost::ZERO;
        }
        Cost(inner.latencies.iter().sum::<f64>() / inner.latencies.len() as f64)
    }

    /// 95th-percentile response time over the rolling window.
    pub fn p95_response(&self) -> Cost {
        self.percentile_response(0.95)
    }

    /// 99th-percentile response time over the rolling window.
    pub fn p99_response(&self) -> Cost {
        self.percentile_response(0.99)
    }

    fn percentile_response(&self, p: f64) -> Cost {
        let inner = self.inner.lock();
        if inner.latencies.is_empty() {
            return Cost::ZERO;
        }
        let mut v: Vec<f64> = inner.latencies.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 * p).ceil() as usize).min(v.len()) - 1;
        Cost(v[idx])
    }

    /// Most recent bucket utilization. `None` before the first bucket
    /// closes, and `None` again after [`KpiCollector::reset_latencies`]
    /// until a new bucket closes: a reset marks a reconfiguration, and a
    /// pre-reconfiguration utilization must not steer the Organizer.
    pub fn current_utilization(&self) -> Option<f64> {
        let inner = self.inner.lock();
        if inner.utilization_stale {
            return None;
        }
        inner.utilization.back().copied()
    }

    /// Queries served in the most recently closed bucket (`None` before
    /// the first bucket closes).
    pub fn last_bucket_throughput(&self) -> Option<u64> {
        self.inner.lock().bucket_queries.back().copied()
    }

    /// Per-bucket query counts over the rolling bucket window, oldest
    /// first.
    pub fn bucket_throughputs(&self) -> Vec<u64> {
        self.inner.lock().bucket_queries.iter().copied().collect()
    }

    /// Whether the system is idle enough for expensive tunings. Before
    /// any bucket closes the system counts as idle (startup window).
    pub fn is_low_utilization(&self) -> bool {
        match self.current_utilization() {
            None => true,
            Some(u) => u < self.low_utilization_threshold,
        }
    }

    /// Latest memory sample.
    pub fn current_memory(&self) -> Option<usize> {
        self.inner.lock().memory.back().copied()
    }

    /// Total queries observed.
    pub fn queries_total(&self) -> u64 {
        self.inner.lock().queries_total
    }

    /// Clears the latency window (used after reconfigurations so the
    /// feedback loop compares before/after cleanly). Also marks the
    /// utilization window stale: until the next bucket closes,
    /// [`KpiCollector::current_utilization`] returns `None` instead of a
    /// pre-reconfiguration figure.
    pub fn reset_latencies(&self) {
        let mut inner = self.inner.lock();
        inner.latencies.clear();
        inner.utilization_stale = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_statistics() {
        let k = KpiCollector::default();
        for i in 1..=100 {
            k.record_query(Cost(i as f64));
        }
        assert!((k.mean_response().ms() - 50.5).abs() < 1e-9);
        assert_eq!(k.p95_response().ms(), 95.0);
        assert_eq!(k.queries_total(), 100);
        k.reset_latencies();
        assert_eq!(k.mean_response(), Cost::ZERO);
        assert_eq!(k.queries_total(), 100);
    }

    #[test]
    fn utilization_tracks_buckets() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        assert!(k.is_low_utilization(), "startup counts as idle");
        k.end_bucket(Cost(90.0));
        assert_eq!(k.current_utilization(), Some(0.9));
        assert!(!k.is_low_utilization());
        k.end_bucket(Cost(10.0));
        assert!(k.is_low_utilization());
    }

    #[test]
    fn memory_samples() {
        let k = KpiCollector::default();
        assert_eq!(k.current_memory(), None);
        k.record_memory(1000);
        k.record_memory(2000);
        assert_eq!(k.current_memory(), Some(2000));
    }

    #[test]
    fn p99_and_bucket_throughput() {
        let k = KpiCollector::new(Cost(1000.0), 0.3);
        for i in 1..=100 {
            k.record_query(Cost(i as f64));
        }
        assert_eq!(k.p99_response().ms(), 99.0);
        assert_eq!(k.last_bucket_throughput(), None, "no bucket closed yet");
        let close = k.end_bucket_accumulated();
        assert_eq!(close.queries, 100);
        assert!((close.busy.ms() - 5050.0).abs() < 1e-9);
        assert!((close.utilization - 5.05).abs() < 1e-9);
        assert_eq!(k.last_bucket_throughput(), Some(100));
        // The next bucket starts from zero.
        k.record_query(Cost(2.0));
        let close = k.end_bucket_accumulated();
        assert_eq!(close.queries, 1);
        assert_eq!(k.bucket_throughputs(), vec![100, 1]);
    }

    #[test]
    fn reset_between_buckets_stales_utilization() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        k.record_query(Cost(90.0));
        k.end_bucket_accumulated();
        assert_eq!(k.current_utilization(), Some(0.9));
        // A reconfiguration resets the latency window mid-bucket: the
        // 0.9 figure predates the change and must not leak out.
        k.reset_latencies();
        assert_eq!(k.current_utilization(), None);
        assert!(k.is_low_utilization(), "unknown counts as startup-idle");
        // The next close refreshes the signal.
        k.record_query(Cost(10.0));
        k.end_bucket_accumulated();
        assert_eq!(k.current_utilization(), Some(0.1));
    }

    #[test]
    fn windows_are_bounded() {
        let k = KpiCollector::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            k.record_query(Cost(i as f64));
        }
        let inner_len = k.inner.lock().latencies.len();
        assert_eq!(inner_len, LATENCY_WINDOW);
    }
}
