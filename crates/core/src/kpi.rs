//! Runtime KPI collection (Section II-A(e)).
//!
//! "Runtime KPIs … are necessary for determining the impact of adjusted
//! configurations … can disclose when the configuration should be
//! adjusted … and help to identify phases of low resource utilization
//! that can be used to run resource-intensive tunings."
//!
//! DBMS KPIs here: query response times (simulated cost). System KPIs:
//! memory usage and utilization (busy time per bucket capacity).
//!
//! Determinism: worker threads push latencies in scheduling order, so
//! the raw arrival sequence differs run to run. The collector therefore
//! keeps the latency window *bucket-aligned*: each closed bucket's
//! samples are sorted at close (`f64::total_cmp`), eviction drops whole
//! oldest buckets, and means/percentiles are computed over a sorted
//! view — every statistic read at a bucket boundary is a pure function
//! of the bucket's sample *multiset*, independent of worker count and
//! interleaving. That is what lets the flight-recorder trail serve as a
//! byte-identical oracle across same-seed runs.

use std::collections::VecDeque;

use parking_lot::Mutex;
use smdb_common::Cost;

const LATENCY_WINDOW: usize = 4096;
const BUCKET_WINDOW: usize = 256;

#[derive(Debug, Default)]
struct Inner {
    /// Closed latency buckets, oldest first; each bucket is sorted at
    /// close so every derived statistic is arrival-order-independent.
    closed: VecDeque<Vec<f64>>,
    /// Total samples across `closed`.
    closed_len: usize,
    /// Latencies recorded since the last bucket close (arrival order;
    /// sorted on demand).
    open: Vec<f64>,
    utilization: VecDeque<f64>,
    memory: VecDeque<usize>,
    /// Queries served per closed bucket (throughput history).
    bucket_queries: VecDeque<u64>,
    queries_total: u64,
    /// Queries recorded since the last bucket close.
    open_bucket_queries: u64,
    /// Scan-pool morsels dispatched since the last bucket close (0 when
    /// every scan ran inline).
    open_bucket_morsels: u64,
    /// Set by [`KpiCollector::reset_latencies`]: the utilization and
    /// throughput figures predate the reconfiguration that cleared the
    /// latency window, so they must not be reported as current until a
    /// new bucket closes.
    utilization_stale: bool,
}

impl Inner {
    /// All windowed latencies (closed buckets + open bucket), sorted.
    fn sorted_window(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.closed_len + self.open.len());
        for bucket in &self.closed {
            v.extend_from_slice(bucket);
        }
        v.extend_from_slice(&self.open);
        v.sort_by(f64::total_cmp);
        v
    }
}

/// What one bucket close observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketClose {
    /// Busy time the bucket spent executing queries.
    pub busy: Cost,
    /// Busy time over bucket capacity.
    pub utilization: f64,
    /// Queries served in the bucket.
    pub queries: u64,
    /// Scan-pool morsels dispatched in the bucket (0 = all inline).
    pub morsels: u64,
}

/// A point-in-time copy of every KPI a tuning decision reads, taken
/// under one lock. Decisions made from a snapshot see one consistent
/// bucket boundary instead of a live window that worker threads keep
/// mutating — the serving runtime hands a snapshot to the tuning thread
/// with each tick.
#[derive(Debug, Clone, PartialEq)]
pub struct KpiSnapshot {
    /// Mean response over the latency window.
    pub mean_response: Cost,
    /// 95th-percentile response over the latency window.
    pub p95_response: Cost,
    /// 99th-percentile response over the latency window.
    pub p99_response: Cost,
    /// Most recent bucket utilization (`None` before the first close or
    /// while stale after a reset).
    pub utilization: Option<f64>,
    /// Latest memory sample.
    pub memory: Option<usize>,
    /// Queries served in the most recently closed bucket (`None` before
    /// the first close or while stale after a reset).
    pub last_bucket_throughput: Option<u64>,
    /// Total queries observed.
    pub queries_total: u64,
    /// The collector's low-utilization threshold, carried along so the
    /// executor can gate on the snapshot alone.
    pub low_utilization_threshold: f64,
}

impl KpiSnapshot {
    /// Whether the system is idle enough for expensive reconfigurations.
    /// Unknown utilization counts as idle (startup window).
    pub fn is_low_utilization(&self) -> bool {
        match self.utilization {
            None => true,
            Some(u) => u < self.low_utilization_threshold,
        }
    }
}

/// Thread-safe runtime KPI collector.
#[derive(Debug)]
pub struct KpiCollector {
    inner: Mutex<Inner>,
    /// Work capacity of one bucket, in ms of query runtime. Utilization
    /// of a bucket = busy ms / capacity.
    pub bucket_capacity: Cost,
    /// Utilization below which the system counts as idle enough for
    /// resource-intensive tunings.
    pub low_utilization_threshold: f64,
}

impl Default for KpiCollector {
    fn default() -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity: Cost(1000.0),
            low_utilization_threshold: 0.3,
        }
    }
}

impl KpiCollector {
    /// Creates a collector with the given bucket capacity.
    pub fn new(bucket_capacity: Cost, low_utilization_threshold: f64) -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity,
            low_utilization_threshold,
        }
    }

    /// Records one query's response time.
    pub fn record_query(&self, latency: Cost) {
        let mut inner = self.inner.lock();
        inner.open.push(latency.ms());
        inner.queries_total += 1;
        inner.open_bucket_queries += 1;
    }

    /// Records morsels dispatched to the scan pool on behalf of queries
    /// in the open bucket. Separate from [`KpiCollector::record_query`]
    /// because a query knows its morsel count only after execution, and
    /// inline scans contribute none.
    pub fn record_morsels(&self, morsels: u64) {
        if morsels == 0 {
            return;
        }
        self.inner.lock().open_bucket_morsels += morsels;
    }

    /// Records a memory usage sample.
    pub fn record_memory(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        if inner.memory.len() == BUCKET_WINDOW {
            inner.memory.pop_front();
        }
        inner.memory.push_back(bytes);
    }

    /// Closes a time bucket that spent `busy` ms executing queries.
    pub fn end_bucket(&self, busy: Cost) -> BucketClose {
        let utilization = (busy.ms() / self.bucket_capacity.ms().max(1e-9)).max(0.0);
        let mut inner = self.inner.lock();
        // Seal the open latency bucket, sorted so downstream sums and
        // percentiles are independent of worker push order.
        let mut bucket = std::mem::take(&mut inner.open);
        bucket.sort_by(f64::total_cmp);
        inner.closed_len += bucket.len();
        inner.closed.push_back(bucket);
        // Evict whole oldest buckets past the window, always keeping the
        // newest one (a single oversized bucket stays intact).
        while inner.closed_len > LATENCY_WINDOW && inner.closed.len() > 1 {
            if let Some(old) = inner.closed.pop_front() {
                inner.closed_len -= old.len();
            }
        }
        if inner.utilization.len() == BUCKET_WINDOW {
            inner.utilization.pop_front();
        }
        inner.utilization.push_back(utilization);
        let queries = inner.open_bucket_queries;
        if inner.bucket_queries.len() == BUCKET_WINDOW {
            inner.bucket_queries.pop_front();
        }
        inner.bucket_queries.push_back(queries);
        inner.open_bucket_queries = 0;
        let morsels = inner.open_bucket_morsels;
        inner.open_bucket_morsels = 0;
        // A fresh bucket supersedes any pre-reset staleness.
        inner.utilization_stale = false;
        BucketClose {
            busy,
            utilization,
            queries,
            morsels,
        }
    }

    /// Closes a time bucket using the busy time accumulated by
    /// [`KpiCollector::record_query`] since the previous close — the
    /// serving-runtime path, where no single caller owns the bucket cost.
    /// The busy sum is taken over the *sorted* samples, so it is exact
    /// and identical regardless of worker count.
    pub fn end_bucket_accumulated(&self) -> BucketClose {
        let busy = {
            let inner = self.inner.lock();
            let mut v = inner.open.clone();
            v.sort_by(f64::total_cmp);
            Cost(v.iter().sum())
        };
        self.end_bucket(busy)
    }

    /// Mean response time over the rolling latency window.
    pub fn mean_response(&self) -> Cost {
        let window = self.inner.lock().sorted_window();
        if window.is_empty() {
            return Cost::ZERO;
        }
        Cost(window.iter().sum::<f64>() / window.len() as f64)
    }

    /// 95th-percentile response time over the rolling window.
    pub fn p95_response(&self) -> Cost {
        self.percentile_response(0.95)
    }

    /// 99th-percentile response time over the rolling window.
    pub fn p99_response(&self) -> Cost {
        self.percentile_response(0.99)
    }

    /// The `ceil(n·p)`-th smallest response time over the rolling window
    /// (`Cost::ZERO` when empty) — the rank rule `smdb_obs` histogram
    /// quantiles mirror.
    pub fn percentile_response(&self, p: f64) -> Cost {
        let window = self.inner.lock().sorted_window();
        Cost(percentile_of_sorted(&window, p))
    }

    /// Most recent bucket utilization. `None` before the first bucket
    /// closes, and `None` again after [`KpiCollector::reset_latencies`]
    /// until a new bucket closes: a reset marks a reconfiguration, and a
    /// pre-reconfiguration utilization must not steer the Organizer.
    pub fn current_utilization(&self) -> Option<f64> {
        let inner = self.inner.lock();
        if inner.utilization_stale {
            return None;
        }
        inner.utilization.back().copied()
    }

    /// Queries served in the most recently closed bucket. `None` before
    /// the first bucket closes, and `None` again after
    /// [`KpiCollector::reset_latencies`] until a new bucket closes — a
    /// post-reset reading would describe the pre-reconfiguration bucket.
    pub fn last_bucket_throughput(&self) -> Option<u64> {
        let inner = self.inner.lock();
        if inner.utilization_stale {
            return None;
        }
        inner.bucket_queries.back().copied()
    }

    /// Per-bucket query counts over the rolling bucket window, oldest
    /// first (history accessor; unaffected by staleness).
    pub fn bucket_throughputs(&self) -> Vec<u64> {
        self.inner.lock().bucket_queries.iter().copied().collect()
    }

    /// Whether the system is idle enough for expensive tunings. Before
    /// any bucket closes the system counts as idle (startup window).
    pub fn is_low_utilization(&self) -> bool {
        match self.current_utilization() {
            None => true,
            Some(u) => u < self.low_utilization_threshold,
        }
    }

    /// Latest memory sample.
    pub fn current_memory(&self) -> Option<usize> {
        self.inner.lock().memory.back().copied()
    }

    /// Total queries observed.
    pub fn queries_total(&self) -> u64 {
        self.inner.lock().queries_total
    }

    /// Takes a consistent [`KpiSnapshot`] under one lock.
    pub fn snapshot(&self) -> KpiSnapshot {
        let inner = self.inner.lock();
        let window = inner.sorted_window();
        let mean_response = if window.is_empty() {
            Cost::ZERO
        } else {
            Cost(window.iter().sum::<f64>() / window.len() as f64)
        };
        let (utilization, last_bucket_throughput) = if inner.utilization_stale {
            (None, None)
        } else {
            (
                inner.utilization.back().copied(),
                inner.bucket_queries.back().copied(),
            )
        };
        KpiSnapshot {
            mean_response,
            p95_response: Cost(percentile_of_sorted(&window, 0.95)),
            p99_response: Cost(percentile_of_sorted(&window, 0.99)),
            utilization,
            memory: inner.memory.back().copied(),
            last_bucket_throughput,
            queries_total: inner.queries_total,
            low_utilization_threshold: self.low_utilization_threshold,
        }
    }

    /// The collector's windows as a serializable value. Taken at a bucket
    /// boundary (the only place the durability layer calls it) the open
    /// bucket is empty, so the state is a pure function of the closed
    /// sample multisets — arrival-order-independent like every other
    /// boundary statistic.
    pub fn export_state(&self) -> KpiState {
        let inner = self.inner.lock();
        KpiState {
            closed: inner.closed.iter().cloned().collect(),
            utilization: inner.utilization.iter().copied().collect(),
            memory: inner.memory.iter().copied().collect(),
            bucket_queries: inner.bucket_queries.iter().copied().collect(),
            queries_total: inner.queries_total,
            utilization_stale: inner.utilization_stale,
        }
    }

    /// Reinstates exported windows (recovery; any open-bucket samples are
    /// discarded, matching the bucket-boundary export).
    pub fn restore_state(&self, state: KpiState) {
        let mut inner = self.inner.lock();
        inner.closed_len = state.closed.iter().map(Vec::len).sum();
        inner.closed = state.closed.into();
        inner.open.clear();
        inner.utilization = state.utilization.into();
        inner.memory = state.memory.into();
        inner.bucket_queries = state.bucket_queries.into();
        inner.queries_total = state.queries_total;
        inner.open_bucket_queries = 0;
        inner.open_bucket_morsels = 0;
        inner.utilization_stale = state.utilization_stale;
    }

    /// Clears the latency window (used after reconfigurations so the
    /// feedback loop compares before/after cleanly). Also marks the
    /// utilization and throughput figures stale: until the next bucket
    /// closes, [`KpiCollector::current_utilization`] and
    /// [`KpiCollector::last_bucket_throughput`] return `None` instead of
    /// pre-reconfiguration values.
    pub fn reset_latencies(&self) {
        let mut inner = self.inner.lock();
        inner.closed.clear();
        inner.closed_len = 0;
        inner.open.clear();
        inner.utilization_stale = true;
    }
}

/// A [`KpiCollector`]'s windows flattened for serialization (taken and
/// restored at bucket boundaries, where the open bucket is empty).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KpiState {
    /// Closed latency buckets, oldest first, each sorted.
    pub closed: Vec<Vec<f64>>,
    /// Per-bucket utilization history, oldest first.
    pub utilization: Vec<f64>,
    /// Memory samples, oldest first.
    pub memory: Vec<usize>,
    /// Queries served per closed bucket, oldest first.
    pub bucket_queries: Vec<u64>,
    /// Total queries observed.
    pub queries_total: u64,
    /// Whether a reset left the utilization figures stale.
    pub utilization_stale: bool,
}

/// The `ceil(n·p)`-th smallest element of a sorted slice (0.0 if empty)
/// — the rank rule `smdb_obs::metrics::Histogram::quantile` mirrors.
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_statistics() {
        let k = KpiCollector::default();
        for i in 1..=100 {
            k.record_query(Cost(i as f64));
        }
        assert!((k.mean_response().ms() - 50.5).abs() < 1e-9);
        assert_eq!(k.p95_response().ms(), 95.0);
        assert_eq!(k.queries_total(), 100);
        k.reset_latencies();
        assert_eq!(k.mean_response(), Cost::ZERO);
        assert_eq!(k.queries_total(), 100);
    }

    #[test]
    fn utilization_tracks_buckets() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        assert!(k.is_low_utilization(), "startup counts as idle");
        k.end_bucket(Cost(90.0));
        assert_eq!(k.current_utilization(), Some(0.9));
        assert!(!k.is_low_utilization());
        k.end_bucket(Cost(10.0));
        assert!(k.is_low_utilization());
    }

    #[test]
    fn memory_samples() {
        let k = KpiCollector::default();
        assert_eq!(k.current_memory(), None);
        k.record_memory(1000);
        k.record_memory(2000);
        assert_eq!(k.current_memory(), Some(2000));
    }

    #[test]
    fn p99_and_bucket_throughput() {
        let k = KpiCollector::new(Cost(1000.0), 0.3);
        for i in 1..=100 {
            k.record_query(Cost(i as f64));
        }
        assert_eq!(k.p99_response().ms(), 99.0);
        assert_eq!(k.last_bucket_throughput(), None, "no bucket closed yet");
        let close = k.end_bucket_accumulated();
        assert_eq!(close.queries, 100);
        assert!((close.busy.ms() - 5050.0).abs() < 1e-9);
        assert!((close.utilization - 5.05).abs() < 1e-9);
        assert_eq!(k.last_bucket_throughput(), Some(100));
        // The next bucket starts from zero.
        k.record_query(Cost(2.0));
        let close = k.end_bucket_accumulated();
        assert_eq!(close.queries, 1);
        assert_eq!(k.bucket_throughputs(), vec![100, 1]);
    }

    #[test]
    fn morsels_are_sealed_per_bucket() {
        let k = KpiCollector::default();
        k.record_query(Cost(1.0));
        k.record_morsels(6);
        k.record_morsels(0); // inline scan contributes nothing
        k.record_morsels(2);
        let close = k.end_bucket_accumulated();
        assert_eq!(close.morsels, 8);
        // The next bucket starts from zero again.
        k.record_query(Cost(1.0));
        assert_eq!(k.end_bucket_accumulated().morsels, 0);
    }

    #[test]
    fn reset_between_buckets_stales_utilization() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        k.record_query(Cost(90.0));
        k.end_bucket_accumulated();
        assert_eq!(k.current_utilization(), Some(0.9));
        // A reconfiguration resets the latency window mid-bucket: the
        // 0.9 figure predates the change and must not leak out.
        k.reset_latencies();
        assert_eq!(k.current_utilization(), None);
        assert!(k.is_low_utilization(), "unknown counts as startup-idle");
        // The next close refreshes the signal.
        k.record_query(Cost(10.0));
        k.end_bucket_accumulated();
        assert_eq!(k.current_utilization(), Some(0.1));
    }

    /// Regression for the post-reset accessor contract: a reset marks
    /// everything derived from the pre-reconfiguration bucket stale, so
    /// percentile accessors return a defined zero and the throughput
    /// accessor returns `None` — never whatever the last bucket held.
    #[test]
    fn reset_yields_defined_zero_and_none_until_next_close() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        for _ in 0..10 {
            k.record_query(Cost(5.0));
        }
        k.end_bucket_accumulated();
        assert_eq!(k.last_bucket_throughput(), Some(10));
        assert!(k.p99_response().ms() > 0.0);

        k.reset_latencies();
        assert_eq!(k.p99_response(), Cost::ZERO);
        assert_eq!(k.p95_response(), Cost::ZERO);
        assert_eq!(k.mean_response(), Cost::ZERO);
        assert_eq!(k.last_bucket_throughput(), None);
        assert_eq!(k.current_utilization(), None);
        let snap = k.snapshot();
        assert_eq!(snap.p99_response, Cost::ZERO);
        assert_eq!(snap.last_bucket_throughput, None);
        assert_eq!(snap.utilization, None);

        // The next close refreshes both.
        k.record_query(Cost(2.0));
        k.end_bucket_accumulated();
        assert_eq!(k.last_bucket_throughput(), Some(1));
        assert_eq!(k.p99_response(), Cost(2.0));
    }

    #[test]
    fn snapshot_is_consistent_and_gates_like_the_collector() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        for i in 1..=20 {
            k.record_query(Cost(i as f64));
        }
        k.record_memory(4096);
        k.end_bucket_accumulated();
        let snap = k.snapshot();
        assert_eq!(snap.mean_response, k.mean_response());
        assert_eq!(snap.p95_response, k.p95_response());
        assert_eq!(snap.p99_response, k.p99_response());
        assert_eq!(snap.utilization, k.current_utilization());
        assert_eq!(snap.memory, Some(4096));
        assert_eq!(snap.last_bucket_throughput, Some(20));
        assert_eq!(snap.queries_total, 20);
        assert_eq!(snap.is_low_utilization(), k.is_low_utilization());
        // A snapshot is a copy: later traffic does not change it.
        k.record_query(Cost(1000.0));
        assert_eq!(snap.queries_total, 20);
    }

    #[test]
    fn statistics_are_push_order_independent() {
        let asc = KpiCollector::default();
        let desc = KpiCollector::default();
        for i in 1..=100 {
            asc.record_query(Cost(i as f64));
            desc.record_query(Cost((101 - i) as f64));
        }
        let a = asc.end_bucket_accumulated();
        let b = desc.end_bucket_accumulated();
        assert_eq!(a.busy, b.busy, "sorted sum is exact");
        assert_eq!(asc.snapshot(), desc.snapshot());
    }

    #[test]
    fn windows_are_bounded() {
        let k = KpiCollector::default();
        // 8 closed buckets of 1024 samples: eviction keeps whole buckets
        // and the total within the window.
        for bucket in 0..8 {
            for i in 0..1024 {
                k.record_query(Cost((bucket * 1024 + i) as f64));
            }
            k.end_bucket_accumulated();
        }
        let inner = k.inner.lock();
        assert!(inner.closed_len <= LATENCY_WINDOW);
        assert_eq!(inner.closed_len, 4096, "4 whole buckets retained");
        drop(inner);
        // The retained window is the most recent samples: its minimum is
        // the first sample of bucket 4.
        let p_min = k.percentile_response(0.0);
        assert_eq!(p_min.ms(), (4 * 1024) as f64);
    }

    #[test]
    fn export_restore_roundtrips_at_bucket_boundary() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        for i in 1..=50 {
            k.record_query(Cost(i as f64));
        }
        k.record_memory(2048);
        k.end_bucket_accumulated();
        let state = k.export_state();
        let restored = KpiCollector::new(Cost(100.0), 0.3);
        restored.restore_state(state.clone());
        assert_eq!(restored.snapshot(), k.snapshot());
        assert_eq!(restored.export_state(), state);
        // Staleness survives the round trip.
        k.reset_latencies();
        let stale = KpiCollector::new(Cost(100.0), 0.3);
        stale.restore_state(k.export_state());
        assert_eq!(stale.current_utilization(), None);
    }

    #[test]
    fn one_oversized_bucket_is_kept_intact() {
        let k = KpiCollector::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            k.record_query(Cost(i as f64));
        }
        k.end_bucket_accumulated();
        assert_eq!(k.inner.lock().closed_len, LATENCY_WINDOW + 10);
        // A following small bucket evicts the oversized one whole.
        k.record_query(Cost(1.0));
        k.end_bucket_accumulated();
        assert_eq!(k.inner.lock().closed_len, 1);
    }
}
