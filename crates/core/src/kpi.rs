//! Runtime KPI collection (Section II-A(e)).
//!
//! "Runtime KPIs … are necessary for determining the impact of adjusted
//! configurations … can disclose when the configuration should be
//! adjusted … and help to identify phases of low resource utilization
//! that can be used to run resource-intensive tunings."
//!
//! DBMS KPIs here: query response times (simulated cost). System KPIs:
//! memory usage and utilization (busy time per bucket capacity).

use std::collections::VecDeque;

use parking_lot::Mutex;
use smdb_common::Cost;

const LATENCY_WINDOW: usize = 4096;
const BUCKET_WINDOW: usize = 256;

#[derive(Debug, Default)]
struct Inner {
    latencies: VecDeque<f64>,
    utilization: VecDeque<f64>,
    memory: VecDeque<usize>,
    queries_total: u64,
}

/// Thread-safe runtime KPI collector.
#[derive(Debug)]
pub struct KpiCollector {
    inner: Mutex<Inner>,
    /// Work capacity of one bucket, in ms of query runtime. Utilization
    /// of a bucket = busy ms / capacity.
    pub bucket_capacity: Cost,
    /// Utilization below which the system counts as idle enough for
    /// resource-intensive tunings.
    pub low_utilization_threshold: f64,
}

impl Default for KpiCollector {
    fn default() -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity: Cost(1000.0),
            low_utilization_threshold: 0.3,
        }
    }
}

impl KpiCollector {
    /// Creates a collector with the given bucket capacity.
    pub fn new(bucket_capacity: Cost, low_utilization_threshold: f64) -> Self {
        KpiCollector {
            inner: Mutex::new(Inner::default()),
            bucket_capacity,
            low_utilization_threshold,
        }
    }

    /// Records one query's response time.
    pub fn record_query(&self, latency: Cost) {
        let mut inner = self.inner.lock();
        if inner.latencies.len() == LATENCY_WINDOW {
            inner.latencies.pop_front();
        }
        inner.latencies.push_back(latency.ms());
        inner.queries_total += 1;
    }

    /// Records a memory usage sample.
    pub fn record_memory(&self, bytes: usize) {
        let mut inner = self.inner.lock();
        if inner.memory.len() == BUCKET_WINDOW {
            inner.memory.pop_front();
        }
        inner.memory.push_back(bytes);
    }

    /// Closes a time bucket that spent `busy` ms executing queries.
    pub fn end_bucket(&self, busy: Cost) {
        let utilization = (busy.ms() / self.bucket_capacity.ms().max(1e-9)).max(0.0);
        let mut inner = self.inner.lock();
        if inner.utilization.len() == BUCKET_WINDOW {
            inner.utilization.pop_front();
        }
        inner.utilization.push_back(utilization);
    }

    /// Mean response time over the rolling latency window.
    pub fn mean_response(&self) -> Cost {
        let inner = self.inner.lock();
        if inner.latencies.is_empty() {
            return Cost::ZERO;
        }
        Cost(inner.latencies.iter().sum::<f64>() / inner.latencies.len() as f64)
    }

    /// 95th-percentile response time over the rolling window.
    pub fn p95_response(&self) -> Cost {
        let inner = self.inner.lock();
        if inner.latencies.is_empty() {
            return Cost::ZERO;
        }
        let mut v: Vec<f64> = inner.latencies.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 * 0.95).ceil() as usize).min(v.len()) - 1;
        Cost(v[idx])
    }

    /// Most recent bucket utilization (`None` before the first bucket).
    pub fn current_utilization(&self) -> Option<f64> {
        self.inner.lock().utilization.back().copied()
    }

    /// Whether the system is idle enough for expensive tunings. Before
    /// any bucket closes the system counts as idle (startup window).
    pub fn is_low_utilization(&self) -> bool {
        match self.current_utilization() {
            None => true,
            Some(u) => u < self.low_utilization_threshold,
        }
    }

    /// Latest memory sample.
    pub fn current_memory(&self) -> Option<usize> {
        self.inner.lock().memory.back().copied()
    }

    /// Total queries observed.
    pub fn queries_total(&self) -> u64 {
        self.inner.lock().queries_total
    }

    /// Clears the latency window (used after reconfigurations so the
    /// feedback loop compares before/after cleanly).
    pub fn reset_latencies(&self) {
        self.inner.lock().latencies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_statistics() {
        let k = KpiCollector::default();
        for i in 1..=100 {
            k.record_query(Cost(i as f64));
        }
        assert!((k.mean_response().ms() - 50.5).abs() < 1e-9);
        assert_eq!(k.p95_response().ms(), 95.0);
        assert_eq!(k.queries_total(), 100);
        k.reset_latencies();
        assert_eq!(k.mean_response(), Cost::ZERO);
        assert_eq!(k.queries_total(), 100);
    }

    #[test]
    fn utilization_tracks_buckets() {
        let k = KpiCollector::new(Cost(100.0), 0.3);
        assert!(k.is_low_utilization(), "startup counts as idle");
        k.end_bucket(Cost(90.0));
        assert_eq!(k.current_utilization(), Some(0.9));
        assert!(!k.is_low_utilization());
        k.end_bucket(Cost(10.0));
        assert!(k.is_low_utilization());
    }

    #[test]
    fn memory_samples() {
        let k = KpiCollector::default();
        assert_eq!(k.current_memory(), None);
        k.record_memory(1000);
        k.record_memory(2000);
        assert_eq!(k.current_memory(), Some(2000));
    }

    #[test]
    fn windows_are_bounded() {
        let k = KpiCollector::default();
        for i in 0..(LATENCY_WINDOW + 10) {
            k.record_query(Cost(i as f64));
        }
        let inner_len = k.inner.lock().latencies.len();
        assert_eq!(inner_len, LATENCY_WINDOW);
    }
}
