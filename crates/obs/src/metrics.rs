//! A process-global metrics registry.
//!
//! Counters and gauges are lock-free handles; histograms are log-linear
//! (power-of-two exponent ranges split into [`SUB_BUCKETS`] linear
//! sub-buckets) and merge by index-wise count addition, which makes the
//! merge exactly associative and commutative. Quantiles use the same
//! rank rule as `KpiCollector::percentile_response` (`ceil(n·p)`-th
//! smallest) and return the containing bucket's upper bound, so they
//! agree with the exact percentile to within one sub-bucket width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use smdb_common::json::Json;

/// Linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: usize = 32;
/// Values below `2^MIN_EXP` land in the underflow bucket 0.
const MIN_EXP: i32 = -32;
/// Values at or above `2^(MAX_EXP+1)` clamp into the last range.
const MAX_EXP: i32 = 63;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (f64 bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 before the first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A mergeable log-linear histogram over non-negative samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Sparse bucket index → count. Index 0 is the underflow bucket
    /// (zeros, negatives, sub-`2^MIN_EXP` values); index `i ≥ 1` covers
    /// `(lower, upper]` with `upper = 2^e · (1 + (sub+1)/K)` for
    /// `e = MIN_EXP + (i−1)/K`, `sub = (i−1) mod K`, `K = SUB_BUCKETS`.
    counts: BTreeMap<u32, u64>,
    total: u64,
}

fn bucket_of(value: f64) -> u32 {
    if !(value.is_finite() && value > 0.0) {
        return 0;
    }
    // IEEE exponent extraction is exact for normals; subnormals report
    // a tiny exponent and clamp into the underflow range like any value
    // below 2^MIN_EXP.
    let raw_exp = ((value.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    let exp = raw_exp.clamp(MIN_EXP, MAX_EXP);
    let scale = 2.0f64.powi(exp);
    // value/scale ∈ [1, 2) whenever exp was not clamped; clamp the
    // fraction so out-of-range values saturate at the range edges.
    let frac = (value / scale - 1.0).clamp(0.0, 1.0 - f64::EPSILON);
    let sub = (frac * SUB_BUCKETS as f64) as u32;
    (exp - MIN_EXP) as u32 * SUB_BUCKETS as u32 + sub + 1
}

fn bucket_upper_bound(index: u32) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let exp = MIN_EXP + ((index - 1) as usize / SUB_BUCKETS) as i32;
    let sub = (index - 1) as usize % SUB_BUCKETS;
    2.0f64.powi(exp) * (1.0 + (sub + 1) as f64 / SUB_BUCKETS as f64)
}

impl Histogram {
    /// Width of the bucket `value` falls into — the quantile error bound.
    pub fn bucket_width(value: f64) -> f64 {
        let index = bucket_of(value);
        if index == 0 {
            return 0.0;
        }
        let exp = MIN_EXP + ((index - 1) as usize / SUB_BUCKETS) as i32;
        2.0f64.powi(exp) / SUB_BUCKETS as f64
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        *self.counts.entry(bucket_of(value)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one (index-wise addition —
    /// exactly associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (&index, &count) in &other.counts {
            *self.counts.entry(index).or_insert(0) += count;
        }
        self.total += other.total;
    }

    /// Upper bound of the bucket holding the `ceil(n·p)`-th smallest
    /// sample — the same rank `KpiCollector` uses, so the two agree to
    /// within one bucket width. `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((self.total as f64 * p).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&index, &count) in &self.counts {
            seen += count;
            if seen >= rank {
                return Some(bucket_upper_bound(index));
            }
        }
        None
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile (see [`Histogram::quantile`]).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Mutex<Histogram>>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Gets or creates the named counter. The registry is process-global:
/// parallel tests sharing a name share the counter.
pub fn counter(name: &str) -> Arc<Counter> {
    Arc::clone(
        registry()
            .counters
            .lock()
            .entry(name.to_string())
            .or_default(),
    )
}

/// Gets or creates the named gauge.
pub fn gauge(name: &str) -> Arc<Gauge> {
    Arc::clone(
        registry()
            .gauges
            .lock()
            .entry(name.to_string())
            .or_default(),
    )
}

/// Gets or creates the named histogram.
pub fn histogram(name: &str) -> Arc<Mutex<Histogram>> {
    Arc::clone(
        registry()
            .histograms
            .lock()
            .entry(name.to_string())
            .or_default(),
    )
}

/// Records one sample into the named histogram.
pub fn observe(name: &str, value: f64) {
    histogram(name).lock().record(value);
}

/// A sorted JSON snapshot of every registered metric.
pub fn snapshot_json() -> Json {
    let mut counters = Vec::new();
    for (name, c) in registry().counters.lock().iter() {
        counters.push((name.clone(), Json::Num(c.get() as f64)));
    }
    let mut gauges = Vec::new();
    for (name, g) in registry().gauges.lock().iter() {
        gauges.push((name.clone(), Json::Num(g.get())));
    }
    let mut histograms = Vec::new();
    for (name, h) in registry().histograms.lock().iter() {
        let h = h.lock();
        histograms.push((
            name.clone(),
            Json::obj(vec![
                ("total", Json::Num(h.total() as f64)),
                ("p50", Json::Num(h.p50().unwrap_or(0.0))),
                ("p95", Json::Num(h.p95().unwrap_or(0.0))),
                ("p99", Json::Num(h.p99().unwrap_or(0.0))),
            ]),
        ));
    }
    Json::obj(vec![
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let c = counter("test.metrics.counter");
        c.inc();
        c.add(4);
        assert_eq!(counter("test.metrics.counter").get(), 5);
        let g = gauge("test.metrics.gauge");
        g.set(2.5);
        assert_eq!(gauge("test.metrics.gauge").get(), 2.5);
    }

    #[test]
    fn histogram_quantiles_bound_exact_percentiles() {
        let mut h = Histogram::default();
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &s in &samples {
            h.record(s);
        }
        // Exact p95 over 1..=100 with the ceil-rank rule is 95.0.
        let p95 = h.p95().expect("non-empty");
        assert!(p95 >= 95.0, "upper bound is never below the sample");
        assert!(
            p95 - 95.0 <= Histogram::bucket_width(95.0),
            "p95 {p95} more than one bucket above 95"
        );
    }

    #[test]
    fn zero_and_negative_samples_fall_in_the_underflow_bucket() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        assert_eq!(h.total(), 3);
        assert_eq!(h.p99(), Some(0.0));
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 1..=10 {
            a.record(i as f64);
            b.record((i * 100) as f64);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total(), 20);
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(merged, other_way, "merge is commutative");
    }

    #[test]
    fn snapshot_is_valid_json() {
        counter("test.metrics.snapshot").inc();
        observe("test.metrics.hist", 42.0);
        let text = snapshot_json().to_string_compact();
        let parsed = smdb_common::json::parse(&text).expect("snapshot parses");
        assert!(parsed.get("counters").is_some());
    }
}
