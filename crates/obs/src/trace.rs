//! A lightweight tracing facade.
//!
//! [`crate::span!`] opens a span that closes when its guard drops; the
//! installed [`Subscriber`] (if any) is notified with a [`SpanRecord`]
//! carrying start/end stamps from the process-wide monotonic event
//! counter (`smdb_common::time::now`) — never wall time, so traces are
//! replay-deterministic.
//!
//! When no subscriber is installed the facade is zero-cost: `span!`
//! performs a single relaxed atomic load and allocates nothing (field
//! expressions are not even evaluated). Spans nest per thread: a span
//! opened while another is live on the same thread records it as its
//! parent, which is how the runtime's per-bucket span trees form.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use smdb_common::time;

/// A finished span, as delivered to the installed subscriber.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// The span live on the same thread when this one opened.
    pub parent: Option<u64>,
    /// Subsystem label (e.g. `"core"`, `"runtime"`, `"lp"`).
    pub target: &'static str,
    /// Operation label (e.g. `"maybe_tune"`).
    pub name: &'static str,
    /// Monotonic event stamp at open.
    pub start: u64,
    /// Monotonic event stamp at close.
    pub end: u64,
    /// Key/value fields captured at open.
    pub fields: Vec<(&'static str, f64)>,
}

/// Receives spans as they close. Implementations must tolerate calls
/// from any thread.
pub trait Subscriber: Send + Sync {
    /// Called once per span, at close.
    fn on_close(&self, span: &SpanRecord);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static SUBSCRIBER: Mutex<Option<Arc<dyn Subscriber>>> = Mutex::new(None);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Whether a subscriber is installed. The `span!` macro checks this
/// before evaluating field expressions — the disabled fast path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs the process-wide subscriber, replacing any previous one.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    *SUBSCRIBER.lock() = Some(subscriber);
    // Readers that observe `true` then take the SUBSCRIBER lock, which
    // fully synchronises — SeqCst would add nothing here.
    // ordering: Release publishes the subscriber write above.
    ENABLED.store(true, Ordering::Release);
}

/// Removes the process-wide subscriber; `span!` returns to zero-cost.
pub fn uninstall() {
    // A racing span that still loads `true` falls through to the
    // SUBSCRIBER lock and sees `None` there.
    // ordering: Release pairs with the Acquire-free fast path going dark.
    ENABLED.store(false, Ordering::Release);
    *SUBSCRIBER.lock() = None;
}

/// RAII guard for an open span. Hold it for the instrumented scope
/// (`let _span = span!(...)`) — binding to `_` drops it immediately.
#[must_use = "a span closes when its guard drops; bind it with `let _span = ...`"]
pub struct Span(Option<SpanRecord>);

impl Span {
    /// Opens a span. Called by the `span!` macro; prefer the macro.
    pub fn enter(
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, f64)>,
    ) -> Span {
        if !enabled() {
            return Span(None);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span(Some(SpanRecord {
            id,
            parent,
            target,
            name,
            start: time::now(),
            end: 0,
            fields,
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut record) = self.0.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        record.end = time::now();
        let subscriber = SUBSCRIBER.lock().clone();
        if let Some(subscriber) = subscriber {
            subscriber.on_close(&record);
        }
    }
}

/// Opens a span that closes when the returned guard drops.
///
/// ```
/// let _span = smdb_obs::span!("core", "maybe_tune");
/// let _with_fields = smdb_obs::span!("runtime", "serve_bucket", { bucket: 3, queries: 160 });
/// ```
///
/// Field values are coerced with `as f64` and are only evaluated when a
/// subscriber is installed.
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr) => {
        $crate::trace::Span::enter($target, $name, ::std::vec::Vec::new())
    };
    ($target:expr, $name:expr, { $($key:ident : $value:expr),* $(,)? }) => {
        $crate::trace::Span::enter(
            $target,
            $name,
            if $crate::trace::enabled() {
                ::std::vec![$((stringify!($key), ($value) as f64)),*]
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

/// A subscriber that counts closed spans per `(target, name)` — what
/// the soak binary installs to report span counts.
#[derive(Debug, Default)]
pub struct CountingSubscriber {
    counts: Mutex<BTreeMap<(&'static str, &'static str), u64>>,
}

impl CountingSubscriber {
    /// A fresh counting subscriber, ready for [`install`].
    pub fn new() -> Arc<CountingSubscriber> {
        Arc::new(CountingSubscriber::default())
    }

    /// Closed spans for one `(target, name)` pair.
    pub fn count(&self, target: &str, name: &str) -> u64 {
        self.counts
            .lock()
            .iter()
            .filter(|((t, n), _)| *t == target && *n == name)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Total closed spans.
    pub fn total(&self) -> u64 {
        self.counts.lock().values().sum()
    }

    /// Per-`(target, name)` counts, sorted.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counts
            .lock()
            .iter()
            .map(|((t, n), c)| (format!("{t}.{n}"), *c))
            .collect()
    }
}

impl Subscriber for CountingSubscriber {
    fn on_close(&self, span: &SpanRecord) {
        *self
            .counts
            .lock()
            .entry((span.target, span.name))
            .or_insert(0) += 1;
    }
}

/// A subscriber that keeps every closed span — test support for
/// asserting on span trees.
#[derive(Debug, Default)]
pub struct CollectingSubscriber {
    spans: Mutex<Vec<SpanRecord>>,
}

impl CollectingSubscriber {
    /// A fresh collecting subscriber, ready for [`install`].
    pub fn new() -> Arc<CollectingSubscriber> {
        Arc::new(CollectingSubscriber::default())
    }

    /// All spans closed so far, in close order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_close(&self, span: &SpanRecord) {
        self.spans.lock().push(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The subscriber slot is process-global, so every test that installs
    // one serializes here (cargo runs tests in parallel threads).
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing_and_skip_fields() {
        let _guard = TEST_GUARD.lock();
        uninstall();
        let mut evaluated = false;
        {
            let _span = crate::span!("test", "noop", {
                value: {
                    evaluated = true;
                    1.0
                }
            });
        }
        assert!(!evaluated, "fields must not be evaluated when disabled");
    }

    #[test]
    fn spans_nest_and_report_to_the_subscriber() {
        let _guard = TEST_GUARD.lock();
        let collector = CollectingSubscriber::new();
        install(collector.clone());
        {
            let _outer = crate::span!("test", "outer");
            let _inner = crate::span!("test", "inner", { depth: 2 });
        }
        uninstall();
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first and names the outer as its parent.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some(spans[1].id));
        assert_eq!(spans[0].fields, vec![("depth", 2.0)]);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
        assert!(spans[0].start < spans[0].end);
    }

    #[test]
    fn counting_subscriber_tallies_per_name() {
        let _guard = TEST_GUARD.lock();
        let counter = CountingSubscriber::new();
        install(counter.clone());
        for _ in 0..3 {
            let _span = crate::span!("test", "tick");
        }
        {
            let _span = crate::span!("test", "other");
        }
        uninstall();
        assert_eq!(counter.count("test", "tick"), 3);
        assert_eq!(counter.count("test", "other"), 1);
        assert_eq!(counter.total(), 4);
    }
}
