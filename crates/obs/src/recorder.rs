//! The flight recorder: a bounded ring buffer of decision events.
//!
//! Every tuning decision the driver makes — trigger fired, candidate
//! assessed, ILP order chosen, actions queued/applied/rolled back — is
//! appended as a [`TrailEvent`]. The buffer keeps the most recent
//! `capacity` events (older ones are dropped and counted), exports as
//! JSON via `smdb_common::json`, and dumps itself to stderr
//! automatically when a rollback is recorded or (via [`PanicDump`])
//! when a test fails.
//!
//! Event `at` stamps are *logical* bucket times, not the monotonic span
//! counter: logical time is seeded-RNG-deterministic, so same-seed runs
//! produce byte-identical trails — the trail is a correctness oracle.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use smdb_common::json::Json;

/// One decision event on the trail.
#[derive(Debug, Clone, PartialEq)]
pub enum TrailEvent {
    /// A KPI bucket closed (serving progress; not a decision).
    BucketClosed {
        at: u64,
        queries: u64,
        busy_ms: f64,
        utilization: f64,
        /// Scan-pool morsels dispatched during the bucket (0 = every
        /// scan ran inline).
        morsels: u64,
    },
    /// The organizer fired a tuning trigger.
    TuningTriggered { at: u64, trigger: String },
    /// One feature's tuner ran: how many candidates it enumerated, the
    /// predicted benefit of its pick, whether the proposal was accepted,
    /// and the what-if cache traffic the assessment generated.
    CandidateAssessed {
        at: u64,
        feature: String,
        candidates: usize,
        predicted_benefit_ms: f64,
        accepted: bool,
        cache_hits: u64,
        cache_misses: u64,
    },
    /// The ordering ILP chose a permutation, with its `d_{A,B}` inputs.
    IlpOrderChosen {
        at: u64,
        order: Vec<String>,
        objective: f64,
        dependence: Vec<Vec<f64>>,
    },
    /// A tuning's actions were queued for a low-utilization window.
    ActionsQueued { at: u64, actions: usize },
    /// A tuning's actions were applied immediately.
    ActionsApplied {
        at: u64,
        applied: usize,
        reconfiguration_cost_ms: f64,
    },
    /// A budgeted drain slice applied part of the queue.
    SliceApplied {
        at: u64,
        applied: usize,
        remaining: usize,
    },
    /// A budgeted drain slice was deferred (still not a good time).
    SliceDeferred { at: u64, deferred: usize },
    /// A completed reconfiguration was stored as a config instance.
    InstanceStored {
        at: u64,
        instance: String,
        actions: usize,
    },
    /// A failed apply rolled the engine back, naming the restored
    /// config instance.
    ActionRolledBack {
        at: u64,
        restored: String,
        undo_actions: usize,
        abandoned_actions: usize,
        cause: String,
    },
    /// The global Organizer re-split one shared memory budget across
    /// shards (constraint enforcement per paper §II, sharded): the total
    /// budget, the index bytes actually configured across all shards
    /// when the split was taken, and the per-shard shares in shard
    /// order.
    BudgetRebalanced {
        at: u64,
        budget_bytes: u64,
        used_bytes: u64,
        shares: Vec<u64>,
    },
    /// A durability snapshot of the full serving state was taken
    /// (smdb-trail/v2.1): the bucket it covers, how many WAL records it
    /// supersedes, and the stored blob size.
    SnapshotTaken {
        at: u64,
        bucket: u64,
        wal_records: u64,
        bytes: u64,
    },
    /// The driver recovered from durable state (smdb-trail/v2.1): the
    /// bucket serving resumes after, WAL records replayed over the
    /// snapshot, and records dropped to reach the last valid prefix.
    Recovered {
        at: u64,
        bucket: u64,
        replayed_records: u64,
        dropped_records: u64,
    },
}

impl TrailEvent {
    /// The event's kind tag as it appears in the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            TrailEvent::BucketClosed { .. } => "bucket_closed",
            TrailEvent::TuningTriggered { .. } => "tuning_triggered",
            TrailEvent::CandidateAssessed { .. } => "candidate_assessed",
            TrailEvent::IlpOrderChosen { .. } => "ilp_order_chosen",
            TrailEvent::ActionsQueued { .. } => "actions_queued",
            TrailEvent::ActionsApplied { .. } => "actions_applied",
            TrailEvent::SliceApplied { .. } => "slice_applied",
            TrailEvent::SliceDeferred { .. } => "slice_deferred",
            TrailEvent::InstanceStored { .. } => "instance_stored",
            TrailEvent::ActionRolledBack { .. } => "action_rolled_back",
            TrailEvent::BudgetRebalanced { .. } => "budget_rebalanced",
            TrailEvent::SnapshotTaken { .. } => "snapshot_taken",
            TrailEvent::Recovered { .. } => "recovered",
        }
    }

    /// Whether this is a durability event, introduced by smdb-trail/v2.1
    /// (earlier trail documents keep their original schema tags).
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            TrailEvent::SnapshotTaken { .. } | TrailEvent::Recovered { .. }
        )
    }

    /// Whether this is a tuning-thread *decision* (everything except
    /// serving progress). The decision subsequence is invariant across
    /// worker counts; bucket closes are too, but tests filter on this to
    /// state the invariant the issue cares about.
    pub fn is_decision(&self) -> bool {
        !matches!(self, TrailEvent::BucketClosed { .. })
    }

    fn json_fields(&self) -> Vec<(&'static str, Json)> {
        fn num(n: usize) -> Json {
            Json::Num(n as f64)
        }
        match self {
            TrailEvent::BucketClosed {
                at,
                queries,
                busy_ms,
                utilization,
                morsels,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("queries", Json::Num(*queries as f64)),
                ("busy_ms", Json::Num(*busy_ms)),
                ("utilization", Json::Num(*utilization)),
                ("morsels", Json::Num(*morsels as f64)),
            ],
            TrailEvent::TuningTriggered { at, trigger } => vec![
                ("at", Json::Num(*at as f64)),
                ("trigger", Json::Str(trigger.clone())),
            ],
            TrailEvent::CandidateAssessed {
                at,
                feature,
                candidates,
                predicted_benefit_ms,
                accepted,
                cache_hits,
                cache_misses,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("feature", Json::Str(feature.clone())),
                ("candidates", num(*candidates)),
                ("predicted_benefit_ms", Json::Num(*predicted_benefit_ms)),
                ("accepted", Json::Bool(*accepted)),
                ("cache_hits", Json::Num(*cache_hits as f64)),
                ("cache_misses", Json::Num(*cache_misses as f64)),
            ],
            TrailEvent::IlpOrderChosen {
                at,
                order,
                objective,
                dependence,
            } => vec![
                ("at", Json::Num(*at as f64)),
                (
                    "order",
                    Json::Arr(order.iter().map(|f| Json::Str(f.clone())).collect()),
                ),
                ("objective", Json::Num(*objective)),
                (
                    "dependence",
                    Json::Arr(
                        dependence
                            .iter()
                            .map(|row| Json::Arr(row.iter().map(|&d| Json::Num(d)).collect()))
                            .collect(),
                    ),
                ),
            ],
            TrailEvent::ActionsQueued { at, actions } => {
                vec![("at", Json::Num(*at as f64)), ("actions", num(*actions))]
            }
            TrailEvent::ActionsApplied {
                at,
                applied,
                reconfiguration_cost_ms,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("applied", num(*applied)),
                (
                    "reconfiguration_cost_ms",
                    Json::Num(*reconfiguration_cost_ms),
                ),
            ],
            TrailEvent::SliceApplied {
                at,
                applied,
                remaining,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("applied", num(*applied)),
                ("remaining", num(*remaining)),
            ],
            TrailEvent::SliceDeferred { at, deferred } => {
                vec![("at", Json::Num(*at as f64)), ("deferred", num(*deferred))]
            }
            TrailEvent::InstanceStored {
                at,
                instance,
                actions,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("instance", Json::Str(instance.clone())),
                ("actions", num(*actions)),
            ],
            TrailEvent::ActionRolledBack {
                at,
                restored,
                undo_actions,
                abandoned_actions,
                cause,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("restored", Json::Str(restored.clone())),
                ("undo_actions", num(*undo_actions)),
                ("abandoned_actions", num(*abandoned_actions)),
                ("cause", Json::Str(cause.clone())),
            ],
            TrailEvent::BudgetRebalanced {
                at,
                budget_bytes,
                used_bytes,
                shares,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("budget_bytes", Json::Num(*budget_bytes as f64)),
                ("used_bytes", Json::Num(*used_bytes as f64)),
                (
                    "shares",
                    Json::Arr(shares.iter().map(|&s| Json::Num(s as f64)).collect()),
                ),
            ],
            TrailEvent::SnapshotTaken {
                at,
                bucket,
                wal_records,
                bytes,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("bucket", Json::Num(*bucket as f64)),
                ("wal_records", Json::Num(*wal_records as f64)),
                ("bytes", Json::Num(*bytes as f64)),
            ],
            TrailEvent::Recovered {
                at,
                bucket,
                replayed_records,
                dropped_records,
            } => vec![
                ("at", Json::Num(*at as f64)),
                ("bucket", Json::Num(*bucket as f64)),
                ("replayed_records", Json::Num(*replayed_records as f64)),
                ("dropped_records", Json::Num(*dropped_records as f64)),
            ],
        }
    }

    /// The event as a JSON object (with its sequence number).
    pub fn to_json(&self, seq: u64) -> Json {
        self.to_json_tagged(seq, None)
    }

    /// The event as a JSON object, optionally stamped with the shard it
    /// came from (smdb-trail/v2; `None` keeps the v1 shape).
    pub fn to_json_tagged(&self, seq: u64, shard: Option<u64>) -> Json {
        let mut fields = vec![
            ("seq", Json::Num(seq as f64)),
            ("event", Json::Str(self.kind().to_string())),
        ];
        if let Some(shard) = shard {
            fields.push(("shard", Json::Num(shard as f64)));
        }
        fields.extend(self.json_fields());
        Json::obj(fields)
    }

    /// The event's logical bucket time.
    pub fn at(&self) -> u64 {
        match self {
            TrailEvent::BucketClosed { at, .. }
            | TrailEvent::TuningTriggered { at, .. }
            | TrailEvent::CandidateAssessed { at, .. }
            | TrailEvent::IlpOrderChosen { at, .. }
            | TrailEvent::ActionsQueued { at, .. }
            | TrailEvent::ActionsApplied { at, .. }
            | TrailEvent::SliceApplied { at, .. }
            | TrailEvent::SliceDeferred { at, .. }
            | TrailEvent::InstanceStored { at, .. }
            | TrailEvent::ActionRolledBack { at, .. }
            | TrailEvent::BudgetRebalanced { at, .. }
            | TrailEvent::SnapshotTaken { at, .. }
            | TrailEvent::Recovered { at, .. } => *at,
        }
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    events: VecDeque<(u64, TrailEvent)>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring buffer of the most recent decision events.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
    /// Shard this recorder belongs to. `Some` stamps every exported
    /// event with a `shard` field and tags the trail smdb-trail/v2;
    /// `None` keeps the original (v1) export byte-identical.
    shard: Option<u64>,
    /// Dump to stderr when a rollback is recorded (on by default; tests
    /// asserting on stderr-free output can switch it off).
    auto_dump: std::sync::atomic::AtomicBool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(512)
    }
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner::default()),
            capacity: capacity.max(1),
            shard: None,
            auto_dump: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// A recorder for one shard's driver: every exported event carries
    /// `"shard": shard` and the trail is tagged smdb-trail/v2.
    pub fn with_shard(capacity: usize, shard: u64) -> FlightRecorder {
        let mut rec = FlightRecorder::new(capacity);
        rec.shard = Some(shard);
        rec
    }

    /// The shard this recorder is stamped with, if any.
    pub fn shard(&self) -> Option<u64> {
        self.shard
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enables/disables the automatic stderr dump on rollback events.
    pub fn set_auto_dump(&self, enabled: bool) {
        self.auto_dump
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Appends an event, evicting the oldest when full.
    pub fn record(&self, event: TrailEvent) {
        let is_rollback = matches!(event, TrailEvent::ActionRolledBack { .. });
        {
            let mut inner = self.inner.lock();
            let seq = inner.next_seq;
            inner.next_seq += 1;
            inner.events.push_back((seq, event));
            while inner.events.len() > self.capacity {
                inner.events.pop_front();
                inner.dropped += 1;
            }
        }
        if is_rollback && self.auto_dump.load(std::sync::atomic::Ordering::Relaxed) {
            self.dump_to_stderr("rollback");
        }
    }

    /// Events currently retained, oldest first, with sequence numbers.
    pub fn events(&self) -> Vec<(u64, TrailEvent)> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring bound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// The whole trail as JSON. Shard-stamped recorders export
    /// smdb-trail/v2 (a top-level `schema` tag plus per-event `shard`);
    /// plain recorders keep the original v1 shape. Trails containing
    /// durability events (snapshot_taken / recovered) are tagged
    /// smdb-trail/v2.1, which introduces those kinds — so pre-existing
    /// v1/v2 documents stay byte-identical.
    pub fn to_json(&self) -> Json {
        let inner = self.inner.lock();
        let mut fields = Vec::new();
        let has_recovery = inner.events.iter().any(|(_, e)| e.is_recovery());
        if has_recovery {
            fields.push(("schema", Json::Str("smdb-trail/v2.1".to_string())));
        } else if self.shard.is_some() {
            fields.push(("schema", Json::Str("smdb-trail/v2".to_string())));
        }
        fields.push(("capacity", Json::Num(self.capacity as f64)));
        fields.push(("dropped", Json::Num(inner.dropped as f64)));
        fields.push((
            "events",
            Json::Arr(
                inner
                    .events
                    .iter()
                    .map(|(seq, e)| e.to_json_tagged(*seq, self.shard))
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }

    /// Merges several recorders' trails into one smdb-trail/v2 document:
    /// events interleave by (logical time, recorder order, local seq),
    /// are re-sequenced 0.., and keep each source recorder's shard stamp
    /// (events from unstamped recorders — the global Organizer — carry
    /// no `shard` field). Capacity and dropped counts sum.
    pub fn merged_json(recorders: &[&FlightRecorder]) -> Json {
        let mut all: Vec<(u64, u64, usize, TrailEvent, Option<u64>)> = Vec::new();
        let mut capacity = 0usize;
        let mut dropped = 0u64;
        for (order, rec) in recorders.iter().enumerate() {
            capacity += rec.capacity;
            dropped += rec.dropped();
            for (seq, event) in rec.events() {
                all.push((event.at(), seq, order, event, rec.shard));
            }
        }
        all.sort_by_key(|(at, seq, order, _, _)| (*at, *order, *seq));
        let schema = if all.iter().any(|(_, _, _, e, _)| e.is_recovery()) {
            "smdb-trail/v2.1"
        } else {
            "smdb-trail/v2"
        };
        Json::obj(vec![
            ("schema", Json::Str(schema.to_string())),
            ("capacity", Json::Num(capacity as f64)),
            ("dropped", Json::Num(dropped as f64)),
            (
                "events",
                Json::Arr(
                    all.iter()
                        .enumerate()
                        .map(|(seq, (_, _, _, event, shard))| {
                            event.to_json_tagged(seq as u64, *shard)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the trail to stderr, labelled with `why`.
    pub fn dump_to_stderr(&self, why: &str) {
        eprintln!(
            "[flight-recorder dump: {why}]\n{}",
            self.to_json().to_string_compact()
        );
    }
}

/// Drop guard that dumps the trail when the current thread is panicking
/// — put one at the top of a test to get the decision trail on failure.
pub struct PanicDump {
    recorder: Arc<FlightRecorder>,
}

impl PanicDump {
    /// Guards `recorder` for the current scope.
    pub fn new(recorder: Arc<FlightRecorder>) -> PanicDump {
        PanicDump { recorder }
    }
}

impl Drop for PanicDump {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.recorder.dump_to_stderr("test failure");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(at: u64) -> TrailEvent {
        TrailEvent::BucketClosed {
            at,
            queries: 10,
            busy_ms: 1.5,
            utilization: 0.1,
            morsels: 4,
        }
    }

    #[test]
    fn ring_bounds_and_keeps_the_most_recent() {
        let rec = FlightRecorder::new(3);
        for at in 0..10 {
            rec.record(closed(at));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 7);
        let events = rec.events();
        // Sequence numbers keep counting across evictions.
        assert_eq!(events[0].0, 7);
        assert_eq!(events[2].0, 9);
        assert!(matches!(
            events[2].1,
            TrailEvent::BucketClosed { at: 9, .. }
        ));
    }

    #[test]
    fn shard_stamp_and_schema_tag() {
        let plain = FlightRecorder::new(4);
        plain.record(closed(0));
        let v1 = plain.to_json();
        assert!(v1.get("schema").is_none(), "v1 trails carry no schema tag");
        assert!(v1.get("events").and_then(Json::as_array).unwrap()[0]
            .get("shard")
            .is_none());

        let sharded = FlightRecorder::with_shard(4, 3);
        sharded.record(closed(0));
        let v2 = sharded.to_json();
        assert_eq!(
            v2.get("schema").and_then(Json::as_str),
            Some("smdb-trail/v2")
        );
        assert_eq!(
            v2.get("events").and_then(Json::as_array).unwrap()[0]
                .get("shard")
                .and_then(Json::as_u64),
            Some(3)
        );
    }

    #[test]
    fn merged_trail_interleaves_by_time_and_reseqs() {
        let global = FlightRecorder::new(8);
        let s0 = FlightRecorder::with_shard(8, 0);
        let s1 = FlightRecorder::with_shard(8, 1);
        s0.record(closed(0));
        s1.record(closed(0));
        global.record(TrailEvent::BudgetRebalanced {
            at: 1,
            budget_bytes: 1000,
            used_bytes: 400,
            shares: vec![600, 400],
        });
        s1.record(closed(2));
        let merged = FlightRecorder::merged_json(&[&global, &s0, &s1]);
        assert_eq!(
            merged.get("schema").and_then(Json::as_str),
            Some("smdb-trail/v2")
        );
        let events = merged.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 4);
        // Re-sequenced 0.. and ordered by (at, recorder order).
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.get("seq").and_then(Json::as_u64), Some(i as u64));
        }
        assert_eq!(events[0].get("shard").and_then(Json::as_u64), Some(0));
        assert_eq!(events[1].get("shard").and_then(Json::as_u64), Some(1));
        assert_eq!(
            events[2].get("event").and_then(Json::as_str),
            Some("budget_rebalanced")
        );
        assert!(events[2].get("shard").is_none(), "global events unstamped");
        assert_eq!(
            events[2]
                .get("shares")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(2)
        );
        assert_eq!(events[3].get("shard").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn recovery_events_bump_schema_to_v2_1() {
        let rec = FlightRecorder::new(8);
        rec.record(closed(0));
        assert!(rec.to_json().get("schema").is_none());
        rec.record(TrailEvent::SnapshotTaken {
            at: 1,
            bucket: 0,
            wal_records: 3,
            bytes: 128,
        });
        assert_eq!(
            rec.to_json().get("schema").and_then(Json::as_str),
            Some("smdb-trail/v2.1")
        );
        rec.record(TrailEvent::Recovered {
            at: 2,
            bucket: 1,
            replayed_records: 2,
            dropped_records: 1,
        });
        let events = rec.to_json();
        let events = events.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(
            events[2].get("event").and_then(Json::as_str),
            Some("recovered")
        );
        assert_eq!(
            events[2].get("dropped_records").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn json_export_round_trips() {
        let rec = FlightRecorder::new(8);
        rec.set_auto_dump(false);
        rec.record(closed(0));
        rec.record(TrailEvent::ActionRolledBack {
            at: 4,
            restored: "baseline".into(),
            undo_actions: 2,
            abandoned_actions: 3,
            cause: "injected".into(),
        });
        let text = rec.to_json().to_string_pretty();
        let parsed = smdb_common::json::parse(&text).expect("trail parses");
        let events = parsed.get("events").and_then(Json::as_array).expect("arr");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("event").and_then(Json::as_str),
            Some("action_rolled_back")
        );
        assert_eq!(
            events[1].get("restored").and_then(Json::as_str),
            Some("baseline")
        );
        assert_eq!(events[0].get("seq").and_then(Json::as_u64), Some(0));
        assert_eq!(events[1].get("seq").and_then(Json::as_u64), Some(1));
    }
}
