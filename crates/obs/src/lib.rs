//! # smdb-obs — decision-trail observability
//!
//! The paper's Organizer is defined by what it *observes*; this crate
//! makes the reproduction's decisions observable in three layers, all
//! std-only and deterministic:
//!
//! * [`trace`] — a `span!` facade with monotonic (never wall-clock)
//!   stamps, zero-cost when no [`trace::Subscriber`] is installed;
//! * [`metrics`] — a process-global registry of counters, gauges and
//!   mergeable log-linear histograms whose quantile rule matches
//!   `KpiCollector`'s percentiles;
//! * [`recorder`] — the bounded [`recorder::FlightRecorder`] ring of
//!   [`recorder::TrailEvent`]s. Event order is seeded-RNG-deterministic,
//!   so same-seed runs export byte-identical JSON trails and tests use
//!   the trail as a correctness oracle.

pub mod metrics;
pub mod recorder;
pub mod trace;

pub use recorder::{FlightRecorder, PanicDump, TrailEvent};
pub use trace::{CollectingSubscriber, CountingSubscriber, SpanRecord, Subscriber};
