//! # smdb-shard — sharded multi-tenant engine
//!
//! Horizontal sharding of the self-managing engine, making tuning
//! decisions *local* while constraint enforcement stays *global* —
//! the Organizer split the paper draws in §II, applied across shards:
//!
//! * [`partition`] — chunk-granular hash/range assignment of one
//!   logical table into N shard tables. Shards own whole chunks in
//!   ascending global order, which is what lets sharded execution
//!   reproduce the unsharded combine tree bit-for-bit.
//! * [`sharded::ShardedDatabase`] — N per-shard [`smdb_query::Database`]
//!   instances behind one query surface: tenant-equality queries route
//!   to a single shard; everything else scatter-gathers
//!   [`smdb_storage::ChunkPartial`]s and merges once in global chunk
//!   order, so results (rows, float aggregates, groups, total simulated
//!   cost) are bit-identical across shard counts — the digest
//!   invariant. Only `sim_latency`/`morsels` are shard-dependent,
//!   exactly the freedom the morsel-scan contract already grants.
//! * [`route::TenantRouter`] — an immutable (hence lock-free) per-shard
//!   tenant-range summary; routing is conservative and falls back to
//!   scatter whenever a single shard cannot be proven sufficient.
//! * [`budget::BudgetArbiter`] — the global Organizer role: one index
//!   memory budget re-split across per-shard drivers every bucket,
//!   proportional to shard work, recorded as `budget_rebalanced` trail
//!   events; per-shard tuners enforce their share at proposal time.
//! * [`tenant`] — the multi-tenant soak fixture: thousands of seeded
//!   tenants, tenant-sorted rows (range partitioning ⇒ tenant
//!   locality), Zipf-skewed traffic with the hot ranks spread across
//!   shards by a seeded permutation.

pub mod budget;
pub mod partition;
pub mod route;
pub mod sharded;
pub mod tenant;

pub use budget::{BudgetArbiter, RebalanceOutcome};
pub use partition::{assign_chunks, chunk_count, Assignment, ShardSpec};
pub use route::{TenantRange, TenantRouter};
pub use sharded::{ShardedDatabase, SHARD_TABLE};
pub use tenant::{build_sharded, MultiTenantConfig, TenantQuery, TenantStream};
