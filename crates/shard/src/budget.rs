//! Global budget arbitration across per-shard drivers.
//!
//! Each shard runs its own Driver (local KPI window, local tuner), but
//! the index memory budget is a *global* constraint — exactly the
//! Organizer's job in the paper (§II: "the organizer ... enforces
//! constraints"). The [`BudgetArbiter`] is that global Organizer role:
//! at every bucket boundary it re-splits one total budget into
//! per-shard shares (proportional to each shard's recent work, with a
//! floor so idle shards can still hold an index) and retargets each
//! shard driver's `index_memory_bytes` constraint. Shard tuners enforce
//! their share at proposal time, so the sum of configured index bytes
//! can never exceed the total — which the arbiter verifies each time it
//! runs and records in the trail as a `budget_rebalanced` event.

use std::sync::Arc;

use smdb_core::Driver;
use smdb_obs::{FlightRecorder, TrailEvent};

/// Outcome of one budget re-split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Per-shard index-memory shares, shard order; sums to ≤ the total.
    pub shares: Vec<u64>,
    /// Index bytes actually configured across all shards at the split.
    pub used_bytes: u64,
    /// Whether `used_bytes` respected the total budget.
    pub within_budget: bool,
}

/// The global Organizer role: one index-memory budget split across
/// shard drivers.
#[derive(Debug, Clone, Copy)]
pub struct BudgetArbiter {
    total_bytes: u64,
    floor_bytes: u64,
}

impl BudgetArbiter {
    /// An arbiter for `total_bytes` of index memory; every shard is
    /// guaranteed at least `floor_bytes` (clamped so floors never
    /// oversubscribe the total).
    pub fn new(total_bytes: u64, floor_bytes: u64) -> BudgetArbiter {
        BudgetArbiter {
            total_bytes,
            floor_bytes,
        }
    }

    /// The total budget being arbitrated.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Splits the budget over `drivers` proportionally to `busy_ms`
    /// (last-bucket work per shard; equal split when all idle), sets
    /// each driver's index-memory constraint to its share, and records
    /// the decision on `recorder`. Shares are deterministic: floors
    /// first (never below the shard's already-configured index bytes),
    /// then largest-remainder on the proportional split.
    pub fn rebalance(
        &self,
        at: u64,
        drivers: &[Arc<Driver>],
        busy_ms: &[f64],
        recorder: &FlightRecorder,
    ) -> RebalanceOutcome {
        let n = drivers.len();
        if n == 0 {
            return RebalanceOutcome {
                shares: Vec::new(),
                used_bytes: 0,
                within_budget: true,
            };
        }
        let floor = self.floor_bytes.min(self.total_bytes / n as u64);
        // A share never shrinks below what its shard already holds: the
        // per-shard tuner caps *new* proposals against its constraint
        // but keeps existing indexes, so a share below configured bytes
        // would oversubscribe the fleet at the next tuning pass. With
        // shares ≥ configured, `Σ configured ≤ total` is inductive —
        // each tuner can only grow to its share, and shares sum to the
        // total.
        let configured: Vec<u64> = drivers
            .iter()
            .map(|d| d.database().engine().memory_report().index_bytes as u64)
            .collect();
        let base: Vec<u64> = configured.iter().map(|&c| c.max(floor)).collect();
        let assigned_base: u64 = base.iter().sum();
        let distributable = self.total_bytes.saturating_sub(assigned_base);
        let total_busy: f64 = busy_ms.iter().take(n).filter(|b| b.is_finite()).sum();
        let mut shares: Vec<u64> = (0..n)
            .map(|s| {
                let weight = if total_busy > 0.0 {
                    busy_ms.get(s).copied().unwrap_or(0.0).max(0.0) / total_busy
                } else {
                    1.0 / n as f64
                };
                base[s] + (distributable as f64 * weight).floor() as u64
            })
            .collect();
        // Largest-remainder leftovers go to the busiest shards first
        // (ties broken by shard index — deterministic).
        let assigned: u64 = shares.iter().sum();
        let mut leftover = self.total_bytes.saturating_sub(assigned);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ba = busy_ms.get(a).copied().unwrap_or(0.0);
            let bb = busy_ms.get(b).copied().unwrap_or(0.0);
            bb.total_cmp(&ba).then(a.cmp(&b))
        });
        for &s in order.iter().cycle().take(n * 2) {
            if leftover == 0 {
                break;
            }
            shares[s] += 1;
            leftover -= 1;
        }
        for (driver, &share) in drivers.iter().zip(&shares) {
            driver.set_index_memory_budget(Some(share as i64));
        }
        let used_bytes: u64 = configured.iter().sum();
        let within_budget = used_bytes <= self.total_bytes;
        recorder.record(TrailEvent::BudgetRebalanced {
            at,
            budget_bytes: self.total_bytes,
            used_bytes,
            shares: shares.clone(),
        });
        RebalanceOutcome {
            shares,
            used_bytes,
            within_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_query::Database;
    use smdb_storage::value::ColumnValues;
    use smdb_storage::{ColumnDef, DataType, Schema, StorageEngine, Table};

    fn driver() -> Arc<Driver> {
        let schema = Schema::new(vec![ColumnDef::new("k", DataType::Int)]).expect("schema");
        let table =
            Table::from_columns("t", schema, vec![ColumnValues::Int((0..100).collect())], 50)
                .expect("table");
        let mut engine = StorageEngine::default();
        engine.create_table(table).expect("create");
        Arc::new(Driver::builder(Database::new(engine)).build())
    }

    #[test]
    fn shares_cover_the_budget_and_set_constraints() {
        let drivers = vec![driver(), driver(), driver()];
        let recorder = FlightRecorder::new(8);
        let arbiter = BudgetArbiter::new(10_000, 1_000);
        let outcome = arbiter.rebalance(3, &drivers, &[30.0, 10.0, 0.0], &recorder);
        assert_eq!(outcome.shares.len(), 3);
        assert_eq!(outcome.shares.iter().sum::<u64>(), 10_000, "fully assigned");
        assert!(outcome.shares.iter().all(|&s| s >= 1_000), "floors hold");
        assert!(outcome.shares[0] > outcome.shares[1], "busy gets more");
        assert!(outcome.within_budget, "nothing configured yet");
        for (d, &share) in drivers.iter().zip(&outcome.shares) {
            assert_eq!(d.constraints().index_memory_bytes, Some(share as i64));
        }
        let events = recorder.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].1,
            TrailEvent::BudgetRebalanced {
                at: 3,
                budget_bytes: 10_000,
                ..
            }
        ));
    }

    #[test]
    fn idle_shards_split_evenly_and_floor_clamps() {
        let drivers = vec![driver(), driver()];
        let recorder = FlightRecorder::new(8);
        // Floor larger than total/n clamps to total/n.
        let outcome = BudgetArbiter::new(100, 90).rebalance(0, &drivers, &[0.0, 0.0], &recorder);
        assert_eq!(outcome.shares.iter().sum::<u64>(), 100);
        assert_eq!(outcome.shares[0], outcome.shares[1], "even when idle");
    }
}
