//! The multi-tenant fixture and its Zipfian query stream.
//!
//! Thousands of seeded tenants share one logical table, clustered by a
//! sorted `tenant` column so range partitioning gives tenant locality
//! (most tenant queries route to one shard) while chunk min/max pruning
//! keeps per-query work small. Traffic is Zipf-skewed over tenants —
//! the noisy-neighbor shape — with tenant *rank* mapped through a
//! seeded permutation so the hot tenants land on different shards
//! rather than all on shard 0.

use rand::rngs::StdRng;
use rand::RngExt;
use smdb_common::rng::{derive_seed, seeded_rng};
use smdb_common::{ColumnId, Result};
use smdb_query::Query;
use smdb_storage::value::ColumnValues;
use smdb_storage::{Aggregate, AggregateOp, ColumnDef, DataType, ScanPredicate, Schema};
use smdb_workload::Zipf;

use crate::partition::ShardSpec;
use crate::sharded::{ShardedDatabase, SHARD_TABLE};

/// Sorted tenant id — the clustering and routing column.
pub const TENANT_COL: ColumnId = ColumnId(0);
/// Point-lookup key within a tenant.
pub const K_COL: ColumnId = ColumnId(1);
/// Float measure the queries aggregate.
pub const V_COL: ColumnId = ColumnId(2);
/// Low-cardinality group key.
pub const GRP_COL: ColumnId = ColumnId(3);
/// Distinct values of the `k` column.
pub const K_CARDINALITY: i64 = 97;
/// Distinct values of the `grp` column.
pub const GRP_CARDINALITY: i64 = 8;

/// Multi-tenant fixture and traffic parameters.
#[derive(Debug, Clone)]
pub struct MultiTenantConfig {
    /// Seeded tenants (the paper's "millions of users", scaled down).
    pub tenants: usize,
    /// Rows per tenant, contiguous because the tenant column is sorted.
    pub rows_per_tenant: usize,
    /// Chunk granularity of the logical table (and every shard table).
    pub chunk_rows: usize,
    /// Zipf skew exponent over tenant ranks (higher = hotter heads).
    pub zipf_s: f64,
    /// Per-mille of queries with no tenant predicate (forced scatter).
    pub scatter_per_mille: u32,
    /// Seed all tenant permutation and traffic derives from.
    pub seed: u64,
}

impl Default for MultiTenantConfig {
    fn default() -> Self {
        MultiTenantConfig {
            tenants: 1200,
            rows_per_tenant: 40,
            chunk_rows: 1000,
            zipf_s: 1.1,
            scatter_per_mille: 30,
            seed: 42,
        }
    }
}

/// The fixture schema: `tenant, k, v, grp`.
pub fn mt_schema() -> Result<Schema> {
    Schema::new(vec![
        ColumnDef::new("tenant", DataType::Int),
        ColumnDef::new("k", DataType::Int),
        ColumnDef::new("v", DataType::Float),
        ColumnDef::new("grp", DataType::Int),
    ])
}

/// The fixture data, tenant-sorted: `tenants × rows_per_tenant` rows.
pub fn mt_columns(tenants: usize, rows_per_tenant: usize) -> Vec<ColumnValues> {
    let rows = tenants * rows_per_tenant;
    vec![
        ColumnValues::Int((0..rows).map(|i| (i / rows_per_tenant) as i64).collect()),
        ColumnValues::Int((0..rows).map(|i| (i as i64 * 31) % K_CARDINALITY).collect()),
        ColumnValues::Float((0..rows).map(|i| ((i % 997) as f64) * 0.5).collect()),
        ColumnValues::Int((0..rows).map(|i| i as i64 % GRP_CARDINALITY).collect()),
    ]
}

/// Builds the sharded multi-tenant database for `spec`.
pub fn build_sharded(cfg: &MultiTenantConfig, spec: &ShardSpec) -> Result<ShardedDatabase> {
    ShardedDatabase::build(
        "mt_events",
        mt_schema()?,
        mt_columns(cfg.tenants, cfg.rows_per_tenant),
        cfg.chunk_rows,
        spec,
        Some(TENANT_COL),
    )
}

/// One generated query: the query plus the tenant it targets (`None`
/// for the global, scatter-bound templates).
#[derive(Debug, Clone)]
pub struct TenantQuery {
    pub query: Query,
    pub tenant: Option<i64>,
}

/// Seeded Zipfian traffic generator over tenants.
#[derive(Debug)]
pub struct TenantStream {
    zipf: Zipf,
    /// Rank → tenant id, a seeded shuffle: hot ranks spread over shards.
    perm: Vec<i64>,
    rng: StdRng,
    scatter_per_mille: u32,
}

impl TenantStream {
    /// A stream for `cfg`, deterministic in `cfg.seed`.
    pub fn new(cfg: &MultiTenantConfig) -> TenantStream {
        let mut rng = seeded_rng(derive_seed(cfg.seed, 0x7E2A));
        let mut perm: Vec<i64> = (0..cfg.tenants as i64).collect();
        // Fisher–Yates with the seeded rng.
        for i in (1..perm.len()).rev() {
            let j = rng.random_range(0..i + 1);
            perm.swap(i, j);
        }
        TenantStream {
            zipf: Zipf::new(cfg.tenants.max(1), cfg.zipf_s),
            perm,
            rng,
            scatter_per_mille: cfg.scatter_per_mille,
        }
    }

    /// The tenant of Zipf rank `rank` under the seeded permutation.
    pub fn tenant_of_rank(&self, rank: usize) -> i64 {
        self.perm[rank % self.perm.len().max(1)]
    }

    /// Draws the next query: mostly tenant point sums, some per-tenant
    /// group-bys, and `scatter_per_mille` global group-bys with no
    /// tenant predicate.
    pub fn next_query(&mut self) -> TenantQuery {
        let roll = self.rng.random_range(0..1000u32);
        let k = self.rng.random_range(0..K_CARDINALITY);
        if roll < self.scatter_per_mille {
            return TenantQuery {
                query: Query::new(
                    SHARD_TABLE,
                    "mt_events",
                    vec![ScanPredicate::eq(K_COL, k)],
                    Some(Aggregate::new(AggregateOp::Sum, V_COL)),
                    "mt_global",
                )
                .with_group_by(GRP_COL),
                tenant: None,
            };
        }
        let rank = self.zipf.sample(&mut self.rng);
        let tenant = self.tenant_of_rank(rank);
        if roll % 10 == 9 {
            TenantQuery {
                query: Query::new(
                    SHARD_TABLE,
                    "mt_events",
                    vec![ScanPredicate::eq(TENANT_COL, tenant)],
                    Some(Aggregate::new(AggregateOp::Sum, V_COL)),
                    "mt_grouped",
                )
                .with_group_by(GRP_COL),
                tenant: Some(tenant),
            }
        } else {
            TenantQuery {
                query: Query::new(
                    SHARD_TABLE,
                    "mt_events",
                    vec![
                        ScanPredicate::eq(TENANT_COL, tenant),
                        ScanPredicate::eq(K_COL, k),
                    ],
                    Some(Aggregate::new(AggregateOp::Sum, V_COL)),
                    "mt_point",
                ),
                tenant: Some(tenant),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic_and_skewed() {
        let cfg = MultiTenantConfig {
            tenants: 100,
            ..MultiTenantConfig::default()
        };
        let mut a = TenantStream::new(&cfg);
        let mut b = TenantStream::new(&cfg);
        let mut counts = vec![0u32; cfg.tenants];
        let mut scatters = 0u32;
        for _ in 0..2000 {
            let qa = a.next_query();
            let qb = b.next_query();
            assert_eq!(
                qa.query.instance_fingerprint(),
                qb.query.instance_fingerprint(),
                "same seed, same stream"
            );
            match qa.tenant {
                Some(t) => counts[t as usize] += 1,
                None => scatters += 1,
            }
        }
        assert!(scatters > 0, "some global queries scatter");
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|x, y| y.cmp(x));
        assert!(
            sorted[0] > sorted[sorted.len() / 2] * 3,
            "Zipf head far hotter than the median: {sorted:?}"
        );
    }

    #[test]
    fn fixture_routes_and_answers_on_every_shard_count() {
        let cfg = MultiTenantConfig {
            tenants: 60,
            rows_per_tenant: 10,
            chunk_rows: 100,
            ..MultiTenantConfig::default()
        };
        let mut stream = TenantStream::new(&cfg);
        let dbs: Vec<ShardedDatabase> = [1, 2, 4]
            .iter()
            .map(|&n| build_sharded(&cfg, &ShardSpec::range(n)).expect("builds"))
            .collect();
        for _ in 0..200 {
            let tq = stream.next_query();
            let outs: Vec<_> = dbs
                .iter()
                .map(|db| db.run_query(&tq.query).expect("answers").output)
                .collect();
            for out in &outs[1..] {
                assert_eq!(out.rows_matched, outs[0].rows_matched);
                assert_eq!(out.agg_value, outs[0].agg_value);
                assert_eq!(out.groups, outs[0].groups);
            }
        }
    }
}
