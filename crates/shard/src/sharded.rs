//! The sharded database: N per-shard engines behind one query surface.
//!
//! Every shard is a full [`Database`] (its own `StorageEngine`, plan
//! cache, scan-dispatch counters and logical clock), holding the whole
//! chunks of the logical table its [`crate::partition`] assignment gave
//! it. Queries take one of two paths:
//!
//! * **routed** — a tenant-equality query whose tenant lives on exactly
//!   one shard runs on that shard's `Database` unchanged (plan cache,
//!   counters, parallel-scan dispatch all included);
//! * **scatter-gather** — everything else fans `scan_partials` out over
//!   the candidate shards, tags each [`ChunkPartial`] with its *global*
//!   chunk index, sorts, and merges once in global chunk order.
//!
//! Because shards hold whole chunks and the gather merge replays the
//! unsharded chunk order, a full scatter produces a [`ScanOutput`] that
//! is bit-identical to the unsharded scan — rows, float aggregates,
//! groups and total simulated cost — for *any* shard count. Only the
//! latency model (`sim_latency`, `morsels`) is shard-dependent, exactly
//! the freedom the PR 5 morsel contract already grants.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use smdb_common::{ColumnId, Error, Result, TableId};
use smdb_query::{Database, Query, QueryRunResult};
use smdb_storage::value::ColumnValues;
use smdb_storage::{ChunkPartial, PredicateOp, Schema, StorageEngine, Table};

use crate::partition::{assign_chunks, chunk_count, shard_columns, ShardSpec};
use crate::route::TenantRouter;

/// The logical table id every shard's local table carries. Each shard
/// engine holds exactly one table, created first, so local and logical
/// ids coincide and query fingerprints are shard-count-invariant.
pub const SHARD_TABLE: TableId = TableId(0);

/// A horizontally sharded database with tenant routing.
pub struct ShardedDatabase {
    shards: Vec<Arc<Database>>,
    /// Ascending global chunk indices per shard (see `partition`).
    chunk_map: Vec<Vec<usize>>,
    router: TenantRouter,
    tenant_column: Option<ColumnId>,
    routed_queries: AtomicU64,
    scatter_queries: AtomicU64,
}

impl ShardedDatabase {
    /// Partitions one logical table into `spec.shards` shard engines.
    /// `tenant_column` (an `Int` column) enables single-shard routing of
    /// tenant-equality queries.
    pub fn build(
        name: &str,
        schema: Schema,
        columns: Vec<ColumnValues>,
        chunk_rows: usize,
        spec: &ShardSpec,
        tenant_column: Option<ColumnId>,
    ) -> Result<ShardedDatabase> {
        let rows = columns.first().map_or(0, ColumnValues::len);
        let chunk_map = assign_chunks(chunk_count(rows, chunk_rows), spec)?;
        let mut shards = Vec::with_capacity(spec.shards);
        let mut shard_tenants: Vec<Vec<i64>> = Vec::with_capacity(spec.shards);
        for chunk_ids in &chunk_map {
            let local = shard_columns(&columns, chunk_rows, chunk_ids);
            if let Some(ColumnId(t)) = tenant_column {
                match local.get(t as usize) {
                    Some(ColumnValues::Int(v)) => shard_tenants.push(v.clone()),
                    _ => return Err(Error::invalid("tenant column must be an Int column")),
                }
            } else {
                shard_tenants.push(Vec::new());
            }
            let mut engine = StorageEngine::default();
            engine.create_table(Table::from_columns(
                name,
                schema.clone(),
                local,
                chunk_rows,
            )?)?;
            shards.push(Database::new(engine));
        }
        let router = TenantRouter::from_shard_tenants(shard_tenants.iter().map(Vec::as_slice));
        Ok(ShardedDatabase {
            shards,
            chunk_map,
            router,
            tenant_column,
            routed_queries: AtomicU64::new(0),
            scatter_queries: AtomicU64::new(0),
        })
    }

    /// The per-shard databases, shard order.
    pub fn shards(&self) -> &[Arc<Database>] {
        &self.shards
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tenant router.
    pub fn router(&self) -> &TenantRouter {
        &self.router
    }

    /// Global chunk indices owned by each shard.
    pub fn chunk_map(&self) -> &[Vec<usize>] {
        &self.chunk_map
    }

    /// Queries answered by a single routed shard / by scatter-gather.
    pub fn routing_counts(&self) -> (u64, u64) {
        (
            // ordering: relaxed statistics read, see run_query.
            self.routed_queries.load(Ordering::Relaxed),
            // ordering: relaxed statistics read, see run_query.
            self.scatter_queries.load(Ordering::Relaxed),
        )
    }

    /// The tenant a query pins with an equality predicate on the tenant
    /// column, if any.
    pub fn pinned_tenant(&self, query: &Query) -> Option<i64> {
        let tenant_col = self.tenant_column?;
        query
            .predicates()
            .iter()
            .find(|p| p.column == tenant_col && p.op == PredicateOp::Eq)
            .and_then(|p| p.value.as_i64())
    }

    /// The shard a routed execution of `query` would use: the unique
    /// shard whose tenant range holds the pinned tenant. `None` means
    /// the query scatters.
    pub fn route(&self, query: &Query) -> Option<usize> {
        self.router
            .unique_shard_for_tenant(self.pinned_tenant(query)?)
    }

    /// Executes a query: routed to one shard when the router proves a
    /// single shard suffices, scatter-gathered in global chunk order
    /// otherwise.
    pub fn run_query(&self, query: &Query) -> Result<QueryRunResult> {
        if let Some(shard) = self.route(query) {
            // ordering: relaxed statistics add, see routing_counts.
            self.routed_queries.fetch_add(1, Ordering::Relaxed);
            return self.shards[shard].run_query(query);
        }
        // ordering: relaxed statistics add, see routing_counts.
        self.scatter_queries.fetch_add(1, Ordering::Relaxed);
        self.scatter_gather(query)
    }

    /// Candidate shards for a scatter of `query`: all shards holding
    /// chunks, narrowed to the tenant's shards when a tenant is pinned
    /// (rows for that tenant exist nowhere else; elided chunks would
    /// contribute aggregate-neutral empty partials).
    fn scatter_candidates(&self, query: &Query) -> Vec<usize> {
        match self.pinned_tenant(query) {
            Some(tenant) => self.router.shards_for_tenant(tenant),
            None => (0..self.shards.len())
                .filter(|&s| !self.chunk_map[s].is_empty())
                .collect(),
        }
    }

    fn scatter_gather(&self, query: &Query) -> Result<QueryRunResult> {
        let start = Instant::now();
        let candidates = self.scatter_candidates(query);
        // Fan out: per-shard partial scans, each partial tagged with its
        // global chunk index so the gather can replay the unsharded
        // merge order exactly (float addition is non-associative — the
        // combine tree must match, not just the operand set).
        let mut tagged: Vec<(usize, ChunkPartial)> = Vec::new();
        for &s in &candidates {
            let shard = &self.shards[s];
            let pool = shard.scan_pool();
            let engine = shard.engine();
            let partials = engine.scan_partials(
                query.table(),
                query.predicates(),
                query.aggregate(),
                query.group_by(),
                pool.as_deref()
                    .map(|p| (p, shard.morsel_chunks()))
                    .filter(|(p, _)| p.threads() > 1),
            )?;
            let mut shard_cost = smdb_common::Cost::ZERO;
            for (partial, &global) in partials.into_iter().zip(&self.chunk_map[s]) {
                shard_cost += partial.cost();
                tagged.push((global, partial));
            }
            drop(engine);
            // Each shard's plan cache sees the work *it* did — the
            // shard-local signal its driver tunes on.
            shard.record_execution(query, shard_cost);
        }
        tagged.sort_by_key(|(global, _)| *global);
        let merge_on = candidates.first().copied().unwrap_or(0);
        let engine = self
            .shards
            .get(merge_on)
            .ok_or_else(|| Error::invalid("sharded database has no shards"))?
            .engine();
        let output = engine.merge_scan_partials(
            tagged.into_iter().map(|(_, p)| p).collect(),
            query.aggregate(),
            query.group_by(),
        );
        Ok(QueryRunResult {
            output,
            wall_ns: start.elapsed().as_nanos() as u64,
        })
    }
}

impl std::fmt::Debug for ShardedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDatabase")
            .field("shards", &self.shards.len())
            .field("tenant_column", &self.tenant_column)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Assignment;
    use smdb_storage::{
        Aggregate, AggregateOp, ColumnDef, DataType, ScanPool, ScanPredicate, Schema,
    };

    const TENANTS: usize = 40;
    const ROWS_PER_TENANT: usize = 25;

    fn fixture_columns() -> Vec<ColumnValues> {
        let rows = TENANTS * ROWS_PER_TENANT;
        vec![
            ColumnValues::Int((0..rows).map(|i| (i / ROWS_PER_TENANT) as i64).collect()),
            ColumnValues::Int((0..rows).map(|i| (i % 17) as i64).collect()),
            ColumnValues::Float((0..rows).map(|i| ((i % 997) as f64) * 0.5).collect()),
            ColumnValues::Int((0..rows).map(|i| (i % 8) as i64).collect()),
        ]
    }

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("tenant", DataType::Int),
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
            ColumnDef::new("grp", DataType::Int),
        ])
        .expect("schema builds")
    }

    fn unsharded() -> Arc<Database> {
        let mut engine = StorageEngine::default();
        engine
            .create_table(
                Table::from_columns("mt", schema(), fixture_columns(), 100).expect("table"),
            )
            .expect("create");
        Database::new(engine)
    }

    fn sharded(spec: ShardSpec) -> ShardedDatabase {
        ShardedDatabase::build(
            "mt",
            schema(),
            fixture_columns(),
            100,
            &spec,
            Some(ColumnId(0)),
        )
        .expect("builds")
    }

    fn tenant_sum(t: i64, k: i64) -> Query {
        Query::new(
            TableId(0),
            "mt",
            vec![
                ScanPredicate::eq(ColumnId(0), t),
                ScanPredicate::eq(ColumnId(1), k),
            ],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(2))),
            "pt",
        )
    }

    fn global_grouped(k: i64) -> Query {
        Query::new(
            TableId(0),
            "mt",
            vec![ScanPredicate::eq(ColumnId(1), k)],
            Some(Aggregate::new(AggregateOp::Sum, ColumnId(2))),
            "global",
        )
        .with_group_by(ColumnId(3))
    }

    #[test]
    fn scatter_is_bit_identical_to_unsharded_scan() {
        let base = unsharded();
        for spec in [ShardSpec::range(1), ShardSpec::range(3), ShardSpec::hash(4)] {
            let db = sharded(spec);
            for k in 0..17 {
                let q = global_grouped(k);
                let want = base.run_query(&q).expect("unsharded").output;
                let got = db.run_query(&q).expect("sharded").output;
                assert_eq!(got.rows_matched, want.rows_matched, "{spec:?}");
                assert_eq!(got.agg_value, want.agg_value, "{spec:?} bitwise agg");
                assert_eq!(got.groups, want.groups, "{spec:?} bitwise groups");
                assert_eq!(got.sim_cost, want.sim_cost, "{spec:?} full-cover cost");
            }
        }
    }

    #[test]
    fn routed_tenant_queries_match_unsharded_results() {
        let base = unsharded();
        let db = sharded(ShardSpec {
            shards: 4,
            assignment: Assignment::RangeChunks,
        });
        let mut routed_seen = 0;
        for t in 0..TENANTS as i64 {
            let q = tenant_sum(t, 3);
            let want = base.run_query(&q).expect("unsharded").output;
            let got = db.run_query(&q).expect("sharded").output;
            assert_eq!(got.rows_matched, want.rows_matched, "tenant {t}");
            assert_eq!(got.agg_value, want.agg_value, "tenant {t}");
            if db.route(&q).is_some() {
                routed_seen += 1;
            }
        }
        let (routed, scattered) = db.routing_counts();
        assert_eq!(routed as usize + scattered as usize, TENANTS);
        assert_eq!(routed, routed_seen);
        assert!(routed > 0, "range partitioning routes most tenants");
    }

    #[test]
    fn hash_partitioning_scatters_tenant_queries() {
        let db = sharded(ShardSpec::hash(4));
        let q = tenant_sum(7, 3);
        assert_eq!(db.route(&q), None, "overlapping ranges cannot route");
        db.run_query(&q).expect("still answers correctly");
        let (routed, scattered) = db.routing_counts();
        assert_eq!((routed, scattered), (0, 1));
    }

    #[test]
    fn scatter_works_with_per_shard_scan_pools() {
        let base = unsharded();
        let db = sharded(ShardSpec::range(3));
        for shard in db.shards() {
            shard.set_scan_pool(Some(ScanPool::new(2)), 1);
        }
        let q = global_grouped(5);
        let want = base.run_query(&q).expect("unsharded").output;
        let got = db.run_query(&q).expect("sharded").output;
        assert_eq!(got.agg_value, want.agg_value);
        assert_eq!(got.groups, want.groups);
        assert_eq!(got.rows_matched, want.rows_matched);
    }

    #[test]
    fn scatter_records_per_shard_plan_cache_entries() {
        let db = sharded(ShardSpec::range(3));
        db.run_query(&global_grouped(2)).expect("runs");
        for shard in db.shards() {
            assert_eq!(shard.plan_cache().len(), 1, "every shard saw the scan");
        }
        let q = tenant_sum(0, 1);
        db.run_query(&q).expect("runs");
        assert_eq!(db.shards()[0].plan_cache().len(), 2, "routed shard records");
        assert_eq!(db.shards()[2].plan_cache().len(), 1, "other shards do not");
    }
}
