//! Tenant routing.
//!
//! The router is an *immutable* per-shard summary (tenant min/max per
//! shard) built once at partitioning time and shared behind `Arc` — no
//! lock on the serving path, so routing is lock-free by construction
//! (the L6/L9 lint pass covers this crate; an immutable map cannot
//! deadlock or race).
//!
//! Routing is conservative: a tenant-equality query may be answered by
//! a single shard only when that shard is the *only* one whose tenant
//! range could contain the tenant. Under range partitioning with a
//! sorted tenant column that is the common case (a tenant straddling a
//! shard boundary yields two shards); under hash partitioning every
//! shard's range overlaps and the query scatters.

/// Inclusive tenant bounds of one shard (`None` = shard holds no rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRange {
    pub min: i64,
    pub max: i64,
}

/// Immutable tenant → shards routing summary.
#[derive(Debug, Clone)]
pub struct TenantRouter {
    ranges: Vec<Option<TenantRange>>,
}

impl TenantRouter {
    /// Builds the router from each shard's tenant-column values (an
    /// empty shard gets no range and never routes).
    pub fn from_shard_tenants<'a>(shards: impl IntoIterator<Item = &'a [i64]>) -> TenantRouter {
        let ranges = shards
            .into_iter()
            .map(|tenants| {
                let min = *tenants.iter().min()?;
                let max = *tenants.iter().max()?;
                Some(TenantRange { min, max })
            })
            .collect();
        TenantRouter { ranges }
    }

    /// Builds the router from per-shard inclusive bounds.
    pub fn from_ranges(ranges: Vec<Option<TenantRange>>) -> TenantRouter {
        TenantRouter { ranges }
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// The shards whose tenant range could contain `tenant`, ascending.
    pub fn shards_for_tenant(&self, tenant: i64) -> Vec<usize> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some_and(|r| r.min <= tenant && tenant <= r.max))
            .map(|(s, _)| s)
            .collect()
    }

    /// The single shard holding `tenant`, when routing is unambiguous.
    pub fn unique_shard_for_tenant(&self, tenant: i64) -> Option<usize> {
        let shards = self.shards_for_tenant(tenant);
        match shards.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> TenantRouter {
        TenantRouter::from_ranges(vec![
            Some(TenantRange { min: 0, max: 9 }),
            Some(TenantRange { min: 9, max: 20 }),
            None,
            Some(TenantRange { min: 21, max: 30 }),
        ])
    }

    #[test]
    fn unique_and_overlapping_routes() {
        let r = router();
        assert_eq!(r.unique_shard_for_tenant(5), Some(0));
        assert_eq!(r.unique_shard_for_tenant(25), Some(3));
        // Tenant 9 straddles shards 0 and 1: no unique shard.
        assert_eq!(r.shards_for_tenant(9), vec![0, 1]);
        assert_eq!(r.unique_shard_for_tenant(9), None);
        // Unknown tenant: nowhere (a scan would find nothing anyway).
        assert_eq!(r.shards_for_tenant(99), Vec::<usize>::new());
    }

    #[test]
    fn empty_shards_never_route() {
        assert!(!router().shards_for_tenant(15).contains(&2));
    }
}
