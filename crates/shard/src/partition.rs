//! Chunk-granular table partitioning.
//!
//! A shard owns *whole chunks* of the logical table, never row
//! sub-ranges, and each shard's chunk list is kept in ascending global
//! chunk order. Both choices serve the bitwise-identity contract: the
//! storage engine merges per-chunk partials in chunk-index order, and
//! float aggregation is non-associative, so results stay bit-identical
//! across shard counts only if the sharded execution can reproduce the
//! unsharded combine tree exactly — i.e. produce the *same* per-chunk
//! partials and fold them once in the *same* global order.
//!
//! Rebuilding a shard's table from its chunks' concatenated rows
//! reproduces the global chunk boundaries because every chunk except
//! the globally last one is exactly `chunk_rows` rows, and the globally
//! last (possibly short) chunk has the highest index, hence sorts last
//! inside whichever shard it lands in.

use smdb_common::{Error, Result};
use smdb_storage::value::ColumnValues;

/// How the logical table's chunks are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Chunk `i` goes to shard `mix(i) % shards` — spreads neighbouring
    /// chunks (and thus a sorted clustering key) over all shards.
    HashChunks,
    /// Contiguous chunk ranges, balanced to within one chunk — keeps a
    /// sorted clustering key (the tenant column) local to one shard.
    RangeChunks,
}

/// A partitioning scheme: shard count plus chunk assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    pub shards: usize,
    pub assignment: Assignment,
}

impl ShardSpec {
    /// A range-partitioned spec over `shards` shards.
    pub fn range(shards: usize) -> ShardSpec {
        ShardSpec {
            shards,
            assignment: Assignment::RangeChunks,
        }
    }

    /// A hash-partitioned spec over `shards` shards.
    pub fn hash(shards: usize) -> ShardSpec {
        ShardSpec {
            shards,
            assignment: Assignment::HashChunks,
        }
    }
}

/// SplitMix64 finalizer — decorrelates chunk index from shard choice so
/// hash assignment does not degenerate into round-robin.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Assigns `chunks` global chunk indices to `spec.shards` shards.
/// Returns one ascending global-chunk-index list per shard; every chunk
/// appears in exactly one list.
pub fn assign_chunks(chunks: usize, spec: &ShardSpec) -> Result<Vec<Vec<usize>>> {
    if spec.shards == 0 {
        return Err(Error::invalid("shard count must be at least 1"));
    }
    let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); spec.shards];
    match spec.assignment {
        Assignment::HashChunks => {
            for chunk in 0..chunks {
                per_shard[(mix(chunk as u64) % spec.shards as u64) as usize].push(chunk);
            }
        }
        Assignment::RangeChunks => {
            // Balanced contiguous ranges: the first `chunks % shards`
            // shards get one extra chunk.
            let base = chunks / spec.shards;
            let extra = chunks % spec.shards;
            let mut next = 0usize;
            for (s, list) in per_shard.iter_mut().enumerate() {
                let take = base + usize::from(s < extra);
                list.extend(next..next + take);
                next += take;
            }
        }
    }
    Ok(per_shard)
}

/// Number of chunks a table of `rows` rows splits into at `chunk_rows`.
pub fn chunk_count(rows: usize, chunk_rows: usize) -> usize {
    rows.div_ceil(chunk_rows.max(1))
}

/// Extracts the rows of the given global chunks (ascending order) from
/// full-table columns, concatenated — the raw data for one shard's
/// table. Re-chunking the result at `chunk_rows` reproduces exactly the
/// listed global chunks (see the module docs for why).
pub fn shard_columns(
    columns: &[ColumnValues],
    chunk_rows: usize,
    chunk_ids: &[usize],
) -> Vec<ColumnValues> {
    columns
        .iter()
        .map(|col| match col {
            ColumnValues::Int(v) => {
                ColumnValues::Int(gather_rows(v, chunk_rows, chunk_ids, |x| *x))
            }
            ColumnValues::Float(v) => {
                ColumnValues::Float(gather_rows(v, chunk_rows, chunk_ids, |x| *x))
            }
            ColumnValues::Text(v) => {
                ColumnValues::Text(gather_rows(v, chunk_rows, chunk_ids, Clone::clone))
            }
        })
        .collect()
}

fn gather_rows<T, U>(
    values: &[T],
    chunk_rows: usize,
    chunk_ids: &[usize],
    f: impl Fn(&T) -> U,
) -> Vec<U> {
    let mut out = Vec::new();
    for &chunk in chunk_ids {
        let start = chunk * chunk_rows;
        let end = ((chunk + 1) * chunk_rows).min(values.len());
        out.extend(values[start..end.max(start)].iter().map(&f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_assignment_is_contiguous_balanced_and_total() {
        let per_shard = assign_chunks(10, &ShardSpec::range(4)).unwrap();
        assert_eq!(
            per_shard,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7], vec![8, 9]]
        );
    }

    #[test]
    fn hash_assignment_is_total_ascending_and_spread() {
        let per_shard = assign_chunks(64, &ShardSpec::hash(4)).unwrap();
        let mut all: Vec<usize> = per_shard.iter().flatten().copied().collect();
        for list in &per_shard {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "ascending per shard");
            assert!(
                !list.is_empty(),
                "64 chunks over 4 shards leaves none empty"
            );
        }
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
        // Not round-robin: at least one shard's list has a gap != shards.
        assert!(per_shard
            .iter()
            .any(|l| l.windows(2).any(|w| w[1] - w[0] != 4)));
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(assign_chunks(4, &ShardSpec::range(0)).is_err());
    }

    #[test]
    fn shard_columns_gathers_whole_chunks_with_short_tail() {
        let col = ColumnValues::Int((0..10).collect());
        // chunk_rows 4 → chunks [0..4), [4..8), [8..10).
        assert_eq!(chunk_count(10, 4), 3);
        let got = shard_columns(&[col], 4, &[0, 2]);
        assert_eq!(got, vec![ColumnValues::Int(vec![0, 1, 2, 3, 8, 9])]);
    }
}
