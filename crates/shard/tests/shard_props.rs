//! Property tests for the sharded multi-tenant engine.
//!
//! Two invariants the sharding PR rests on:
//!
//! 1. **Shard-count / thread-count invariance** — for random
//!    multi-tenant fixtures and Zipfian query streams, answers (match
//!    counts, float aggregate bits, group bits) and the result digest
//!    are identical across shard counts {1, 2, 8} × both partitioning
//!    assignments × scan-thread counts {1, 4}. Float addition is
//!    non-associative, so this holds only because shards own whole
//!    chunks and the gather merge replays the global chunk order.
//! 2. **Global budget compliance** — per-shard tuners proposing under
//!    arbiter-assigned shares can never drive the fleet's configured
//!    index bytes past the global budget, for random budgets, floors
//!    and busy patterns, across repeated tune/rebalance rounds.

use proptest::prelude::*;
use smdb_common::rng::seeded_rng;
use smdb_core::{ConstraintSet, Driver, FeatureKind};
use smdb_obs::FlightRecorder;
use smdb_query::result_hash;
use smdb_shard::{
    build_sharded, Assignment, BudgetArbiter, MultiTenantConfig, ShardSpec, TenantQuery,
    TenantStream,
};
use smdb_storage::ScanPool;

use rand::RngExt;
use std::sync::Arc;

/// Answer bits that must be invariant across sharding and threading,
/// floats as raw bits.
type Fingerprint = (u64, Option<u64>, Option<Vec<(String, u64)>>);

fn fingerprint(out: &smdb_storage::ScanOutput) -> Fingerprint {
    (
        out.rows_matched,
        out.agg_value.map(f64::to_bits),
        out.groups.as_ref().map(|groups| {
            groups
                .iter()
                .map(|(k, v)| (format!("{k:?}"), v.to_bits()))
                .collect::<Vec<_>>()
        }),
    )
}

fn mt_config(
    seed: u64,
    tenants: usize,
    rows_per_tenant: usize,
    chunk_rows: usize,
) -> MultiTenantConfig {
    MultiTenantConfig {
        tenants,
        rows_per_tenant,
        chunk_rows,
        seed,
        ..MultiTenantConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn answers_and_digest_invariant_across_shards_and_threads(
        seed in 0u64..1_000_000,
        tenants in 20usize..50,
        rows_per_tenant in 5usize..16,
        chunk_rows in 40usize..160,
        queries in 30usize..60,
    ) {
        let cfg = mt_config(seed, tenants, rows_per_tenant, chunk_rows);
        let mut stream = TenantStream::new(&cfg);
        let plan: Vec<TenantQuery> = (0..queries).map(|_| stream.next_query()).collect();

        // Reference: one shard, inline scans.
        let reference = build_sharded(&cfg, &ShardSpec::range(1)).expect("builds");
        let mut want: Vec<Fingerprint> = Vec::with_capacity(plan.len());
        let mut want_digest = 0u64;
        for tq in &plan {
            let out = reference.run_query(&tq.query).expect("answers").output;
            want_digest = want_digest.wrapping_add(result_hash(&tq.query, &out));
            want.push(fingerprint(&out));
        }

        for shards in [1usize, 2, 8] {
            for assignment in [Assignment::RangeChunks, Assignment::HashChunks] {
                for threads in [1usize, 4] {
                    let spec = ShardSpec { shards, assignment };
                    let db = build_sharded(&cfg, &spec).expect("builds");
                    if threads > 1 {
                        for shard in db.shards() {
                            shard.set_scan_pool(Some(ScanPool::new(threads)), 1);
                        }
                    }
                    let mut digest = 0u64;
                    for (tq, expected) in plan.iter().zip(&want) {
                        let out = db.run_query(&tq.query).expect("answers").output;
                        digest = digest.wrapping_add(result_hash(&tq.query, &out));
                        prop_assert_eq!(
                            &fingerprint(&out),
                            expected,
                            "{:?} x {} threads",
                            spec,
                            threads
                        );
                    }
                    prop_assert_eq!(
                        digest,
                        want_digest,
                        "digest differs for {:?} x {} threads",
                        spec,
                        threads
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn per_shard_tuning_never_exceeds_global_budget(
        seed in 0u64..1_000_000,
        shards in 2usize..5,
        budget_kib in 4u64..96,
        floor_kib in 0u64..16,
        rounds in 1usize..4,
    ) {
        let budget = budget_kib * 1024;
        let cfg = mt_config(seed, 60, 10, 100);
        let db = Arc::new(build_sharded(&cfg, &ShardSpec::range(shards)).expect("builds"));
        let drivers: Vec<Arc<Driver>> = db
            .shards()
            .iter()
            .map(|shard| {
                Arc::new(
                    Driver::builder(Arc::clone(shard))
                        .features(vec![FeatureKind::Indexing, FeatureKind::Compression])
                        .constraints(ConstraintSet {
                            index_memory_bytes: Some((budget / shards as u64) as i64),
                            ..ConstraintSet::none()
                        })
                        .build(),
                )
            })
            .collect();
        let arbiter = BudgetArbiter::new(budget, floor_kib * 1024);
        let recorder = FlightRecorder::new(64);
        let mut stream = TenantStream::new(&cfg);
        let mut rng = seeded_rng(seed ^ 0xB07);
        for round in 0..rounds {
            // Traffic fills every shard's plan cache with the signals
            // its local tuner proposes from.
            for _ in 0..150 {
                let tq = stream.next_query();
                db.run_query(&tq.query).expect("answers");
            }
            for driver in &drivers {
                driver.close_bucket();
                driver.force_tune().expect("tunes");
            }
            let busy: Vec<f64> = (0..shards).map(|_| rng.random_range(0u32..1000) as f64).collect();
            let outcome = arbiter.rebalance(round as u64, &drivers, &busy, &recorder);
            prop_assert!(
                outcome.within_budget,
                "round {}: configured {} exceeds budget {}",
                round,
                outcome.used_bytes,
                budget
            );
            prop_assert!(outcome.used_bytes <= budget);
            prop_assert_eq!(outcome.shares.len(), shards);
        }
        // After the last rebalance, one more tuning pass under the new
        // shares must still respect the global budget.
        for driver in &drivers {
            driver.close_bucket();
            driver.force_tune().expect("tunes");
        }
        let configured: u64 = drivers
            .iter()
            .map(|d| d.database().engine().memory_report().index_bytes as u64)
            .sum();
        prop_assert!(
            configured <= budget,
            "final configured {} exceeds budget {}",
            configured,
            budget
        );
    }
}
