//! A minimal binary codec for durable state.
//!
//! Everything durable is encoded with these two types, by hand, in
//! little-endian order. Floats travel as their IEEE-754 bit patterns
//! ([`f64::to_bits`]) so round-trips are bit-exact — the recovery tests
//! assert byte-identical re-encoding, which text formats cannot provide
//! for `f64`. There is no reflection and no schema language: each layer
//! writes and reads its own fields in a fixed order, and a version tag
//! at the container level (WAL record tag, snapshot magic) gates layout
//! evolution.

use smdb_common::{Error, Result};

/// Appends primitive values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its bit pattern (bit-exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Writes an `Option<u64>` as a presence byte plus payload.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }

    /// Writes an `Option<f64>` as a presence byte plus payload.
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.f64(x);
            }
            None => self.u8(0),
        }
    }
}

/// Reads primitive values back out of an encoded buffer.
///
/// Every read is bounds-checked and returns
/// [`Error::InvalidArgument`](smdb_common::Error::InvalidArgument) on a
/// truncated or malformed buffer — decoding corrupt durable state must
/// degrade to an error, never panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Whether the whole buffer has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                Error::invalid(format!(
                    "truncated durable record: wanted {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool` byte (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::invalid(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `usize` written as `u64`, checked against the platform.
    pub fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| Error::invalid("usize overflows platform"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::invalid("invalid UTF-8 in durable string"))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads an `Option<f64>`.
    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.bool(true);
        w.usize(12345);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.opt_u64(Some(9));
        w.opt_u64(None);
        w.opt_f64(Some(2.5));
        w.opt_f64(None);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(2.5));
        assert_eq!(r.opt_f64().unwrap(), None);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..3]);
        assert!(r.u64().is_err());
        // A huge declared string length must not allocate or panic.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.str().is_err());
        assert!(ByteReader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_errors() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool().is_err());
        let mut w = ByteWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).str().is_err());
    }
}
