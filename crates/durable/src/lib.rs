//! # smdb-durable — std-only durability primitives
//!
//! The reproduction is in-memory; this crate makes the *tuned state*
//! survive a restart (ROADMAP open item 2). It deliberately knows
//! nothing about tables, configurations or the Driver — higher layers
//! encode their state into byte blobs with [`codec`] and hand them to:
//!
//! * [`persist`] — the [`persist::Persistence`] trait (append / read /
//!   write-atomic / list / remove over named blobs) with a directory
//!   backend for real runs and an in-memory backend for tests. The
//!   in-memory serving path simply never constructs one, so durability
//!   stays zero-cost when unused.
//! * [`wal`] — an append-only log of `[len][crc32][seq ‖ body]` frames.
//!   The reader stops at the first structurally or checksum-invalid
//!   frame *or* sequence break and reports the surviving prefix plus a
//!   dropped-record count, so recovery degrades instead of panicking.
//! * [`snapshot`] — checksummed, versioned full-state blobs; recovery
//!   picks the newest snapshot whose checksum validates and replays the
//!   WAL tail over it.
//! * [`fault`] — [`fault::TornWritePersistence`], a fault-injecting
//!   `Persistence` wrapper that truncates, corrupts or duplicates an
//!   append at an attempt-indexed offset and then fails the write — the
//!   crash models the recovery tests exercise.

pub mod codec;
pub mod fault;
pub mod persist;
pub mod snapshot;
pub mod wal;

pub use codec::{ByteReader, ByteWriter};
pub use fault::{TornWriteKind, TornWritePersistence, TornWritePlan};
pub use persist::{DirPersistence, MemPersistence, Persistence};
pub use snapshot::SnapshotStore;
pub use wal::{crc32, read_prefix, Wal, WalReadResult, WalRecord};
