//! The append-only write-ahead log.
//!
//! One WAL is one persistence blob holding a sequence of frames:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! payload = [seq: u64 LE][body]
//! ```
//!
//! `seq` is a strictly increasing record index starting at 0. The
//! reader accepts the longest prefix of frames that are structurally
//! sound (length fits the remaining bytes and a sanity cap), checksum
//! to their declared CRC32, and carry the expected next sequence
//! number; it stops at the first violation. The sequence check is what
//! catches a *duplicated* tail record — a byte-for-byte copy of a valid
//! frame passes the checksum, but repeats its `seq`. Everything after
//! the stop point is reported as dropped (counting frames where the
//! remaining bytes still parse structurally, plus one for a trailing
//! partial frame), so recovery can tell the operator how much history a
//! torn write cost — and never panics.

use smdb_common::Result;

use crate::codec::{ByteReader, ByteWriter};
use crate::persist::Persistence;

/// Upper bound on a single record's payload; anything larger is treated
/// as corruption (the length field itself may be torn).
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), computed
/// bytewise without a lookup table — WAL volumes here are tiny.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Record index within the log (0-based, strictly increasing).
    pub seq: u64,
    /// The opaque record body the caller appended.
    pub body: Vec<u8>,
}

/// The result of reading a WAL: its longest valid prefix.
#[derive(Debug, Clone, Default)]
pub struct WalReadResult {
    /// Records in the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes covered by the valid prefix.
    pub valid_bytes: u64,
    /// Bytes discarded after the valid prefix.
    pub dropped_bytes: u64,
    /// Discarded records: structurally parsable frames after the stop
    /// point, plus one for a trailing partial frame.
    pub dropped_records: u64,
}

/// An append-only log stored in one named persistence blob.
#[derive(Debug, Clone)]
pub struct Wal {
    name: String,
}

impl Wal {
    /// A WAL stored under blob `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Wal { name: name.into() }
    }

    /// The blob name this WAL writes to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frames and appends one record. Returns the framed size in bytes.
    /// The caller owns sequence numbering (`seq` must increase by 1 per
    /// append; the reader enforces it).
    pub fn append(&self, p: &dyn Persistence, seq: u64, body: &[u8]) -> Result<u64> {
        let mut payload = ByteWriter::new();
        payload.u64(seq);
        let mut payload = payload.into_bytes();
        payload.extend_from_slice(body);
        let mut frame = ByteWriter::new();
        frame.u32(payload.len() as u32);
        frame.u32(crc32(&payload));
        let mut frame = frame.into_bytes();
        frame.extend_from_slice(&payload);
        let len = frame.len() as u64;
        p.append(&self.name, &frame)?;
        Ok(len)
    }

    /// Reads the longest valid prefix. An absent blob is an empty log.
    pub fn read(&self, p: &dyn Persistence) -> Result<WalReadResult> {
        let Some(data) = p.read(&self.name)? else {
            return Ok(WalReadResult::default());
        };
        Ok(read_prefix(&data))
    }
}

/// Parses the longest valid prefix out of raw WAL bytes.
pub fn read_prefix(data: &[u8]) -> WalReadResult {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut next_seq = 0u64;
    loop {
        match parse_frame(&data[pos..]) {
            Some((consumed, seq, body)) if seq == next_seq => {
                records.push(WalRecord { seq, body });
                pos += consumed;
                next_seq += 1;
            }
            _ => break,
        }
    }
    let valid_bytes = pos as u64;
    let dropped_bytes = (data.len() - pos) as u64;
    WalReadResult {
        records,
        valid_bytes,
        dropped_bytes,
        dropped_records: count_dropped(&data[pos..]),
    }
}

/// Parses one frame (length + checksum + sequenced payload) at the head
/// of `data`. Returns `(bytes_consumed, seq, body)` or `None` when the
/// frame is truncated, oversized, or fails its checksum.
fn parse_frame(data: &[u8]) -> Option<(usize, u64, Vec<u8>)> {
    let mut r = ByteReader::new(data);
    let len = r.u32().ok()?;
    let declared_crc = r.u32().ok()?;
    if len > MAX_RECORD_BYTES || (len as usize) > r.remaining() || len < 8 {
        return None;
    }
    let payload = &data[8..8 + len as usize];
    if crc32(payload) != declared_crc {
        return None;
    }
    let mut pr = ByteReader::new(payload);
    let seq = pr.u64().ok()?;
    Some((8 + len as usize, seq, payload[8..].to_vec()))
}

/// Counts how many records the discarded suffix plausibly held: frames
/// whose length header still parses structurally (checksum and sequence
/// ignored — they are already known bad), plus one for trailing bytes
/// that do not form a whole frame.
fn count_dropped(mut data: &[u8]) -> u64 {
    let mut dropped = 0u64;
    while !data.is_empty() {
        let mut r = ByteReader::new(data);
        let Ok(len) = r.u32() else {
            return dropped + 1;
        };
        if r.u32().is_err() {
            return dropped + 1;
        }
        if len > MAX_RECORD_BYTES || (len as usize) > r.remaining() || len < 8 {
            return dropped + 1;
        }
        dropped += 1;
        data = &data[8 + len as usize..];
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::MemPersistence;

    fn filled_wal(bodies: &[&[u8]]) -> (MemPersistence, Wal) {
        let p = MemPersistence::new();
        let wal = Wal::new("wal.log");
        for (i, body) in bodies.iter().enumerate() {
            wal.append(&p, i as u64, body).unwrap();
        }
        (p, wal)
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn append_read_roundtrip() {
        let (p, wal) = filled_wal(&[b"alpha", b"", b"gamma"]);
        let r = wal.read(&p).unwrap();
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[0].body, b"alpha");
        assert_eq!(r.records[1].body, b"");
        assert_eq!(r.records[2].body, b"gamma");
        assert_eq!(r.dropped_records, 0);
        assert_eq!(r.dropped_bytes, 0);
        assert_eq!(
            r.valid_bytes,
            p.read("wal.log").unwrap().unwrap().len() as u64
        );
    }

    #[test]
    fn missing_blob_is_empty_log() {
        let p = MemPersistence::new();
        let r = Wal::new("wal.log").read(&p).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.valid_bytes, 0);
    }

    #[test]
    fn truncated_tail_record_drops_exactly_it() {
        let (p, wal) = filled_wal(&[b"aaaa", b"bbbb", b"cccc"]);
        p.mutate("wal.log", |b| {
            let cut = b.len() - 3;
            b.truncate(cut);
        })
        .unwrap();
        let r = wal.read(&p).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.dropped_records, 1);
        assert!(r.dropped_bytes > 0);
    }

    #[test]
    fn flipped_checksum_byte_stops_the_prefix() {
        let (p, wal) = filled_wal(&[b"aaaa", b"bbbb", b"cccc"]);
        let full = p.read("wal.log").unwrap().unwrap();
        let frame = full.len() / 3;
        // Flip a byte in the second frame's checksum field.
        p.mutate("wal.log", |b| b[frame + 5] ^= 0x40).unwrap();
        let r = wal.read(&p).unwrap();
        assert_eq!(r.records.len(), 1);
        // The corrupt frame and the (structurally sound) one after it.
        assert_eq!(r.dropped_records, 2);
    }

    #[test]
    fn duplicated_tail_record_is_rejected_by_sequence() {
        let (p, wal) = filled_wal(&[b"aaaa", b"bbbb"]);
        let full = p.read("wal.log").unwrap().unwrap();
        let frame = full.len() / 2;
        let tail = full[frame..].to_vec();
        p.append("wal.log", &tail).unwrap();
        let r = wal.read(&p).unwrap();
        assert_eq!(r.records.len(), 2, "the duplicate must not replay");
        assert_eq!(r.dropped_records, 1);
    }

    #[test]
    fn garbage_and_oversized_lengths_never_panic() {
        let p = MemPersistence::new();
        p.append("wal.log", &[0xFF; 7]).unwrap();
        let r = Wal::new("wal.log").read(&p).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.dropped_records, 1);

        let p = MemPersistence::new();
        let mut w = ByteWriter::new();
        w.u32(u32::MAX); // absurd length
        w.u32(0);
        p.append("wal.log", &w.into_bytes()).unwrap();
        let r = Wal::new("wal.log").read(&p).unwrap();
        assert!(r.records.is_empty());
        assert_eq!(r.dropped_records, 1);
    }

    #[test]
    fn prefix_reader_is_deterministic_at_every_crash_offset() {
        let (p, _) = filled_wal(&[b"alpha", b"beta", b"gamma", b"delta"]);
        let full = p.read("wal.log").unwrap().unwrap();
        let mut last_len = 0;
        for cut in 0..=full.len() {
            let r = read_prefix(&full[..cut]);
            let again = read_prefix(&full[..cut]);
            assert_eq!(r.records.len(), again.records.len());
            assert!(r.records.len() >= last_len || r.records.len() <= 4);
            last_len = r.records.len().max(last_len);
            // The surviving records are always a true prefix.
            for (i, rec) in r.records.iter().enumerate() {
                assert_eq!(rec.seq, i as u64);
            }
            assert_eq!(r.valid_bytes + r.dropped_bytes, cut as u64);
        }
        assert_eq!(last_len, 4);
    }
}
