//! Torn-write fault injection.
//!
//! [`TornWritePersistence`] wraps any backend and sabotages one append:
//! at the planned attempt index it writes a truncated, bit-flipped or
//! duplicated version of the record and then *fails* the call — the
//! moment a real system would have lost power mid-write. The recovery
//! tests drive a workload into the wrapper, let the fault fire, and
//! assert that recovery degrades to the last valid WAL prefix instead
//! of panicking. The attempt-indexed plan mirrors the PR 3
//! `FaultInjectingExecutor` rollback machinery, so crash points are
//! deterministic and enumerable.

use std::sync::atomic::{AtomicUsize, Ordering};

use smdb_common::{Error, Result};

use crate::persist::Persistence;

/// How the sabotaged append mangles its record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornWriteKind {
    /// Only the first `offset` bytes of the record reach the backend.
    Truncate,
    /// The full record is written with one bit flipped at `offset`
    /// (clamped to the record; offsets inside the checksum field model
    /// a corrupted header, offsets in the payload a corrupted body).
    FlipByte,
    /// The record is written twice — a replayed tail the reader must
    /// reject via its sequence check.
    DuplicateTail,
}

impl TornWriteKind {
    /// All kinds, for property tests sweeping the fault matrix.
    pub const ALL: [TornWriteKind; 3] = [
        TornWriteKind::Truncate,
        TornWriteKind::FlipByte,
        TornWriteKind::DuplicateTail,
    ];

    /// Stable short name for reports.
    pub fn label(self) -> &'static str {
        match self {
            TornWriteKind::Truncate => "truncate",
            TornWriteKind::FlipByte => "flip_byte",
            TornWriteKind::DuplicateTail => "duplicate_tail",
        }
    }
}

/// When and how to tear a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornWritePlan {
    /// Zero-based append attempt to sabotage; `None` disables injection.
    pub failing_attempt: Option<usize>,
    /// The corruption to apply.
    pub kind: TornWriteKind,
    /// Byte offset within the record the corruption anchors at.
    pub offset: usize,
}

impl TornWritePlan {
    /// A plan that never fires.
    pub fn none() -> Self {
        TornWritePlan {
            failing_attempt: None,
            kind: TornWriteKind::Truncate,
            offset: 0,
        }
    }

    /// Tears append number `attempt` with `kind` at `offset`.
    pub fn tearing(attempt: usize, kind: TornWriteKind, offset: usize) -> Self {
        TornWritePlan {
            failing_attempt: Some(attempt),
            kind,
            offset,
        }
    }
}

/// A `Persistence` wrapper that injects one torn write.
#[derive(Debug)]
pub struct TornWritePersistence<P> {
    inner: P,
    plan: TornWritePlan,
    appends: AtomicUsize,
    injected: AtomicUsize,
}

impl<P: Persistence> TornWritePersistence<P> {
    /// Wraps `inner` with a fault plan.
    pub fn new(inner: P, plan: TornWritePlan) -> Self {
        TornWritePersistence {
            inner,
            plan,
            appends: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Appends attempted so far (including the sabotaged one).
    pub fn appends(&self) -> usize {
        // ordering: relaxed statistics read; counters are independent.
        self.appends.load(Ordering::Relaxed)
    }

    /// Faults actually injected (0 or 1).
    pub fn injected(&self) -> usize {
        // ordering: relaxed statistics read; counters are independent.
        self.injected.load(Ordering::Relaxed)
    }

    fn corrupt(&self, data: &[u8]) -> Vec<u8> {
        match self.plan.kind {
            TornWriteKind::Truncate => data[..self.plan.offset.min(data.len())].to_vec(),
            TornWriteKind::FlipByte => {
                let mut out = data.to_vec();
                if let Some(byte) = out.get_mut(self.plan.offset.min(data.len().saturating_sub(1)))
                {
                    *byte ^= 0x20;
                }
                out
            }
            TornWriteKind::DuplicateTail => {
                let mut out = data.to_vec();
                out.extend_from_slice(data);
                out
            }
        }
    }
}

impl<P: Persistence> Persistence for TornWritePersistence<P> {
    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        // ordering: relaxed attempt counter; fetch_add claims each index once.
        let attempt = self.appends.fetch_add(1, Ordering::Relaxed);
        if self.plan.failing_attempt == Some(attempt) {
            // ordering: relaxed statistics add, see injected().
            self.injected.fetch_add(1, Ordering::Relaxed);
            let torn = self.corrupt(data);
            if !torn.is_empty() {
                self.inner.append(name, &torn)?;
            }
            return Err(Error::Configuration(format!(
                "torn write injected: append {attempt} {} at offset {}",
                self.plan.kind.label(),
                self.plan.offset
            )));
        }
        self.inner.append(name, data)
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        self.inner.write_atomic(name, data)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::MemPersistence;
    use crate::wal::Wal;

    fn torn_wal(kind: TornWriteKind, offset: usize) -> TornWritePersistence<MemPersistence> {
        let p = TornWritePersistence::new(
            MemPersistence::new(),
            TornWritePlan::tearing(2, kind, offset),
        );
        let wal = Wal::new("wal.log");
        for (i, body) in [b"aaaa", b"bbbb", b"cccc"].iter().enumerate() {
            let r = wal.append(&p, i as u64, *body);
            if i == 2 {
                assert!(r.is_err(), "fault must fail the append");
            } else {
                r.unwrap();
            }
        }
        p
    }

    #[test]
    fn truncate_fault_leaves_valid_prefix() {
        let p = torn_wal(TornWriteKind::Truncate, 5);
        assert_eq!(p.injected(), 1);
        let r = Wal::new("wal.log").read(&p).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.dropped_records, 1);
    }

    #[test]
    fn flip_fault_leaves_valid_prefix() {
        // Offset 9 lands in the payload (seq field) of the torn frame.
        let p = torn_wal(TornWriteKind::FlipByte, 9);
        let r = Wal::new("wal.log").read(&p).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.dropped_records, 1);
    }

    #[test]
    fn duplicate_fault_replays_nothing_extra() {
        let p = torn_wal(TornWriteKind::DuplicateTail, 0);
        let r = Wal::new("wal.log").read(&p).unwrap();
        // The first copy of record 2 is intact and in sequence; only
        // its duplicate is rejected.
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.dropped_records, 1);
    }

    #[test]
    fn plan_none_never_fires() {
        let p = TornWritePersistence::new(MemPersistence::new(), TornWritePlan::none());
        let wal = Wal::new("wal.log");
        for i in 0..10u64 {
            wal.append(&p, i, b"x").unwrap();
        }
        assert_eq!(p.injected(), 0);
        assert_eq!(p.appends(), 10);
        assert_eq!(wal.read(&p).unwrap().records.len(), 10);
    }

    #[test]
    fn truncate_to_zero_writes_nothing() {
        let p = TornWritePersistence::new(
            MemPersistence::new(),
            TornWritePlan::tearing(0, TornWriteKind::Truncate, 0),
        );
        assert!(Wal::new("wal.log").append(&p, 0, b"body").is_err());
        assert_eq!(p.inner().read("wal.log").unwrap(), None);
    }
}
