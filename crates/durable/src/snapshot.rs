//! Versioned, checksummed full-state snapshots.
//!
//! A snapshot is one atomically written blob named `<prefix><version>`
//! (version zero-padded so lexicographic listing is numeric), laid out
//! as `[crc32(payload): u32 LE][payload]`. Recovery asks for the
//! *latest valid* snapshot: versions are tried newest-first and any
//! blob whose checksum fails is skipped, so a torn snapshot write falls
//! back to the previous good one instead of aborting recovery.

use smdb_common::{Error, Result};

use crate::codec::{ByteReader, ByteWriter};
use crate::persist::Persistence;
use crate::wal::crc32;

/// Width of the zero-padded version in blob names.
const VERSION_DIGITS: usize = 20;

/// A family of versioned snapshot blobs sharing one name prefix.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    prefix: String,
}

impl SnapshotStore {
    /// A store whose blobs are named `<prefix><zero-padded version>`.
    pub fn new(prefix: impl Into<String>) -> Self {
        SnapshotStore {
            prefix: prefix.into(),
        }
    }

    fn blob_name(&self, version: u64) -> String {
        format!("{}{:0width$}", self.prefix, version, width = VERSION_DIGITS)
    }

    /// Writes snapshot `version` atomically. Returns the stored size in
    /// bytes (payload plus checksum header).
    pub fn write(&self, p: &dyn Persistence, version: u64, payload: &[u8]) -> Result<u64> {
        let mut w = ByteWriter::new();
        w.u32(crc32(payload));
        let mut blob = w.into_bytes();
        blob.extend_from_slice(payload);
        let len = blob.len() as u64;
        p.write_atomic(&self.blob_name(version), &blob)?;
        Ok(len)
    }

    /// All stored versions, ascending (including corrupt ones — the
    /// checksum is only verified on read).
    pub fn versions(&self, p: &dyn Persistence) -> Result<Vec<u64>> {
        let mut versions = Vec::new();
        for name in p.list()? {
            if let Some(tail) = name.strip_prefix(&self.prefix) {
                if tail.len() == VERSION_DIGITS && tail.bytes().all(|b| b.is_ascii_digit()) {
                    versions.push(
                        tail.parse::<u64>()
                            .map_err(|_| Error::invalid("snapshot version overflow"))?,
                    );
                }
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Reads and verifies snapshot `version`; `Ok(None)` when absent or
    /// corrupt.
    pub fn read(&self, p: &dyn Persistence, version: u64) -> Result<Option<Vec<u8>>> {
        let Some(blob) = p.read(&self.blob_name(version))? else {
            return Ok(None);
        };
        let mut r = ByteReader::new(&blob);
        let Ok(declared) = r.u32() else {
            return Ok(None);
        };
        let payload = &blob[4..];
        if crc32(payload) != declared {
            return Ok(None);
        }
        Ok(Some(payload.to_vec()))
    }

    /// The newest snapshot whose checksum validates, as
    /// `(version, payload)`. Corrupt or torn snapshots are skipped.
    pub fn latest_valid(&self, p: &dyn Persistence) -> Result<Option<(u64, Vec<u8>)>> {
        for version in self.versions(p)?.into_iter().rev() {
            if let Some(payload) = self.read(p, version)? {
                return Ok(Some((version, payload)));
            }
        }
        Ok(None)
    }

    /// Removes all snapshots older than `keep_from` (exclusive of it).
    pub fn prune_below(&self, p: &dyn Persistence, keep_from: u64) -> Result<u64> {
        let mut removed = 0;
        for version in self.versions(p)? {
            if version < keep_from {
                p.remove(&self.blob_name(version))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::MemPersistence;

    #[test]
    fn latest_valid_prefers_newest() {
        let p = MemPersistence::new();
        let s = SnapshotStore::new("snap-");
        s.write(&p, 0, b"old").unwrap();
        s.write(&p, 8, b"new").unwrap();
        let (v, payload) = s.latest_valid(&p).unwrap().unwrap();
        assert_eq!(v, 8);
        assert_eq!(payload, b"new");
        assert_eq!(s.versions(&p).unwrap(), vec![0, 8]);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let p = MemPersistence::new();
        let s = SnapshotStore::new("snap-");
        s.write(&p, 1, b"good").unwrap();
        s.write(&p, 2, b"torn").unwrap();
        p.mutate(&format!("snap-{:020}", 2), |b| {
            let last = b.len() - 1;
            b[last] ^= 0xFF;
        })
        .unwrap();
        let (v, payload) = s.latest_valid(&p).unwrap().unwrap();
        assert_eq!(v, 1);
        assert_eq!(payload, b"good");
        // Direct read of the corrupt one reports absence, not an error.
        assert_eq!(s.read(&p, 2).unwrap(), None);
    }

    #[test]
    fn empty_store_recovers_to_nothing() {
        let p = MemPersistence::new();
        let s = SnapshotStore::new("snap-");
        assert!(s.latest_valid(&p).unwrap().is_none());
        assert!(s.versions(&p).unwrap().is_empty());
    }

    #[test]
    fn prune_keeps_recent() {
        let p = MemPersistence::new();
        let s = SnapshotStore::new("snap-");
        for v in [0, 4, 8, 12] {
            s.write(&p, v, b"x").unwrap();
        }
        assert_eq!(s.prune_below(&p, 8).unwrap(), 2);
        assert_eq!(s.versions(&p).unwrap(), vec![8, 12]);
    }

    #[test]
    fn foreign_blobs_are_ignored() {
        let p = MemPersistence::new();
        p.write_atomic("wal.log", b"not a snapshot").unwrap();
        p.write_atomic("snap-short", b"bad name").unwrap();
        let s = SnapshotStore::new("snap-");
        assert!(s.versions(&p).unwrap().is_empty());
    }
}
