//! Pluggable persistence backends.
//!
//! [`Persistence`] is the narrow waist between the durability layer and
//! the outside world: named byte blobs with append, whole-blob read,
//! atomic replace, listing and removal. The WAL builds on `append`, the
//! snapshot store on `write_atomic`. Keeping the trait this small makes
//! the fault-injecting wrapper ([`crate::fault::TornWritePersistence`])
//! and the in-memory test backend trivial, and means the in-memory
//! serving path pays nothing: a runtime without a `Persistence` simply
//! has no durability code on its hot path.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use smdb_common::{Error, Result};

/// Named-blob storage: the durability layer's only I/O interface.
pub trait Persistence: Send + Sync {
    /// Appends `data` to blob `name`, creating it if absent.
    fn append(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Reads blob `name` in full; `Ok(None)` when it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Replaces blob `name` with `data` atomically: a reader never
    /// observes a partial write of the *new* content.
    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()>;

    /// All blob names, sorted.
    fn list(&self) -> Result<Vec<String>>;

    /// Removes blob `name` (no-op when absent).
    fn remove(&self, name: &str) -> Result<()>;
}

fn io_err(op: &str, name: &str, e: std::io::Error) -> Error {
    Error::invalid(format!("persistence {op} '{name}': {e}"))
}

/// Checks a blob name is a plain file name (no path traversal).
fn check_name(name: &str) -> Result<()> {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name == "." || name == ".." {
        return Err(Error::invalid(format!("invalid blob name '{name}'")));
    }
    Ok(())
}

/// Directory-backed persistence: one file per blob.
#[derive(Debug)]
pub struct DirPersistence {
    root: PathBuf,
}

impl DirPersistence {
    /// Opens (creating if needed) a directory as the blob root.
    pub fn open(root: impl AsRef<Path>) -> Result<DirPersistence> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create root", &root.display().to_string(), e))?;
        Ok(DirPersistence { root })
    }

    fn path(&self, name: &str) -> Result<PathBuf> {
        check_name(name)?;
        Ok(self.root.join(name))
    }
}

impl Persistence for DirPersistence {
    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open", name, e))?;
        file.write_all(data)
            .map_err(|e| io_err("append", name, e))?;
        // Durability of the *data* matters for the WAL contract; fsync
        // cost is irrelevant at the simulation's scale.
        file.sync_data().map_err(|e| io_err("sync", name, e))
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.path(name)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", name, e)),
        }
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let tmp = self.root.join(format!("{name}.tmp"));
        {
            let mut file =
                std::fs::File::create(&tmp).map_err(|e| io_err("create tmp", name, e))?;
            file.write_all(data)
                .map_err(|e| io_err("write tmp", name, e))?;
            file.sync_data().map_err(|e| io_err("sync tmp", name, e))?;
        }
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", name, e))
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| io_err("list", &self.root.display().to_string(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list entry", "", e))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".tmp") {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove(&self, name: &str) -> Result<()> {
        let path = self.path(name)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", name, e)),
        }
    }
}

/// In-memory persistence for tests: a mutex-guarded map of blobs.
#[derive(Debug, Default)]
pub struct MemPersistence {
    blobs: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemPersistence {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemPersistence::default()
    }

    fn lock(&self) -> Result<std::sync::MutexGuard<'_, BTreeMap<String, Vec<u8>>>> {
        self.blobs
            .lock()
            .map_err(|_| Error::invalid("mem persistence poisoned"))
    }

    /// Direct mutable access to a blob's bytes, for tests that corrupt
    /// durable state in place (torn-write fixtures). `Ok(None)` when
    /// the blob does not exist.
    pub fn mutate(&self, name: &str, f: impl FnOnce(&mut Vec<u8>)) -> Result<bool> {
        let mut blobs = self.lock()?;
        match blobs.get_mut(name) {
            Some(data) => {
                f(data);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl Persistence for MemPersistence {
    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        check_name(name)?;
        self.lock()?
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        check_name(name)?;
        Ok(self.lock()?.get(name).cloned())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        check_name(name)?;
        self.lock()?.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.lock()?.keys().cloned().collect())
    }

    fn remove(&self, name: &str) -> Result<()> {
        check_name(name)?;
        self.lock()?.remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(p: &dyn Persistence) {
        assert_eq!(p.read("wal").unwrap(), None);
        p.append("wal", b"ab").unwrap();
        p.append("wal", b"cd").unwrap();
        assert_eq!(p.read("wal").unwrap().unwrap(), b"abcd");
        p.write_atomic("snap-1", b"state").unwrap();
        p.write_atomic("snap-1", b"state2").unwrap();
        assert_eq!(p.read("snap-1").unwrap().unwrap(), b"state2");
        let names = p.list().unwrap();
        assert_eq!(names, vec!["snap-1".to_string(), "wal".to_string()]);
        p.remove("snap-1").unwrap();
        p.remove("snap-1").unwrap(); // idempotent
        assert_eq!(p.list().unwrap(), vec!["wal".to_string()]);
    }

    #[test]
    fn mem_persistence_contract() {
        exercise(&MemPersistence::new());
    }

    #[test]
    fn dir_persistence_contract() {
        let dir = std::env::temp_dir().join(format!(
            "smdb-durable-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let p = DirPersistence::open(&dir).unwrap();
        exercise(&p);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_traversal_names_are_rejected() {
        let p = MemPersistence::new();
        for bad in ["", "..", "a/b", "a\\b"] {
            assert!(p.read(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn mem_mutate_edits_in_place() {
        let p = MemPersistence::new();
        assert!(!p.mutate("wal", |_| {}).unwrap());
        p.append("wal", b"abc").unwrap();
        assert!(p.mutate("wal", |b| b.truncate(1)).unwrap());
        assert_eq!(p.read("wal").unwrap().unwrap(), b"a");
    }
}
