//! Morsel-driven parallel scan scheduling.
//!
//! A scan's chunk list is split into fixed-size **morsels** (contiguous
//! runs of chunks, [`morsel_ranges`]); morsels are dispatched to a
//! shared [`ScanPool`] whose helper threads steal them from one
//! [`crossbeam::deque::Injector`] queue. Three properties carry the
//! engine's determinism guarantees through the parallelism:
//!
//! * **Caller helps first.** The submitting thread starts claiming its
//!   own job's morsels immediately — it never waits behind another
//!   query's work, so a heavy analytical scan cannot head-of-line-block
//!   a light query beyond the light query's own execution time.
//! * **Canonical combine order.** Workers only *compute* per-chunk
//!   partials; the submitting thread merges them in chunk-index order
//!   after the job completes. Results are therefore bit-identical for
//!   every thread count and morsel size (see `engine::scan_grouped`).
//! * **Simulated lane latency.** Wall-clock speedup depends on the host;
//!   the engine's ground-truth *latency* model does not. Morsel costs
//!   are assigned round-robin to `lanes` simulated lanes and the scan's
//!   latency is the maximum lane sum ([`simulated_latency`]) — a
//!   deterministic critical-path model the cost estimators can mirror
//!   and the bench gate can lock in.
//!
//! Observability: every submitted job opens a `storage`/`scan_job` span
//! carrying its morsel count, the shared queue exports a
//! `scan_pool.queue_depth` gauge, and `scan_pool.morsels_executed` /
//! `scan_pool.jobs` counters tally pool traffic. All three are
//! deliberately job-granular on the hot path: a per-morsel span or
//! per-morsel registry lookup costs a name hash plus a subscriber lock
//! per morsel, which the soak measures as several percent of total wall.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use smdb_common::Cost;
use smdb_obs::span;

/// Default number of chunks per morsel.
pub const DEFAULT_MORSEL_CHUNKS: usize = 4;

/// Splits `chunks` chunk indices into contiguous morsels of
/// `morsel_chunks` chunks each (the last may be shorter). `morsel_chunks
/// = 0` is treated as "whole table": one morsel covering everything.
pub fn morsel_ranges(chunks: usize, morsel_chunks: usize) -> Vec<(usize, usize)> {
    if chunks == 0 {
        return Vec::new();
    }
    let size = if morsel_chunks == 0 {
        chunks
    } else {
        morsel_chunks
    };
    let mut out = Vec::with_capacity(chunks.div_ceil(size));
    let mut start = 0;
    while start < chunks {
        let end = (start + size).min(chunks);
        out.push((start, end));
        start = end;
    }
    out
}

/// Deterministic simulated latency of a parallel scan: morsel costs (in
/// ms, morsel order) are assigned round-robin to `lanes` lanes, each
/// morsel is charged `dispatch_ms` of scheduling overhead, and the
/// scan's latency is the maximum lane sum. With one lane this degrades
/// to the sequential sum plus dispatch overhead; the engine skips the
/// model entirely (latency = work) for inline scans.
pub fn simulated_latency(morsel_costs_ms: &[f64], lanes: usize, dispatch_ms: f64) -> Cost {
    let lanes = lanes.max(1).min(morsel_costs_ms.len().max(1));
    let mut lane_ms = vec![0.0f64; lanes];
    for (i, cost) in morsel_costs_ms.iter().enumerate() {
        lane_ms[i % lanes] += cost + dispatch_ms;
    }
    Cost(lane_ms.iter().fold(0.0f64, |a, &b| a.max(b)))
}

/// A scan job being executed by the pool: a type-erased morsel runner
/// plus claim/completion bookkeeping.
struct JobState {
    /// Borrow of the submitter's morsel closure with its lifetime erased.
    /// SAFETY invariant: only dereferenced for morsel indices below
    /// `morsels`, each claimed exactly once via `cursor`, and
    /// [`ScanPool::run`] blocks until `remaining` reaches zero — so every
    /// dereference happens-before the borrow expires.
    task: TaskPtr,
    morsels: usize,
    cursor: AtomicUsize,
    remaining: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

struct TaskPtr(*const (dyn Fn(usize) + Sync + 'static));
// SAFETY: the pointee is `Sync` (shared calls from any thread are safe)
// and the pointer is only dereferenced while the submitter provably
// keeps the closure alive (see `JobState::task`).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

struct PoolShared {
    queue: crossbeam::deque::Injector<Arc<JobState>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// Cached handles for the pool's registry metrics: resolving a metric
/// by name costs a string allocation and a registry lock, so the hot
/// path resolves each handle once per process.
struct PoolMetrics {
    jobs: Arc<smdb_obs::metrics::Counter>,
    morsels_executed: Arc<smdb_obs::metrics::Counter>,
    queue_depth: Arc<smdb_obs::metrics::Gauge>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: std::sync::OnceLock<PoolMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        jobs: smdb_obs::metrics::counter("scan_pool.jobs"),
        morsels_executed: smdb_obs::metrics::counter("scan_pool.morsels_executed"),
        queue_depth: smdb_obs::metrics::gauge("scan_pool.queue_depth"),
    })
}

impl PoolShared {
    fn publish_depth(&self) {
        pool_metrics().queue_depth.set(self.queue.len() as f64);
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock — the pool
/// must keep serving even if a panicking task poisoned a lock.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A shared work-stealing pool executing scan morsels.
///
/// The pool owns `threads - 1` helper threads; the submitting thread is
/// the remaining lane. [`ScanPool::run`] publishes up to one steal
/// ticket per helper, then the submitter claims morsels from its own
/// job until the cursor is exhausted and waits for in-flight claims to
/// finish. Tickets from different jobs interleave FIFO in the shared
/// queue, so concurrent scans share the helpers at morsel granularity.
pub struct ScanPool {
    shared: Arc<PoolShared>,
    threads: usize,
    helpers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ScanPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanPool")
            .field("threads", &self.threads)
            .field("helpers", &self.helpers.len())
            .finish()
    }
}

impl ScanPool {
    /// A pool with `threads` total scan lanes (the submitter plus up to
    /// `threads - 1` helper threads). `threads <= 1` builds a pool with
    /// no helpers — callers should treat it as "scan inline".
    ///
    /// The *physical* helper count is additionally clamped to the host's
    /// available parallelism: helpers beyond the core count can never
    /// run concurrently, they only add a condvar wakeup and a context
    /// switch to every job (ruinous when the whole pool shares one
    /// core). The clamp is invisible to everything deterministic —
    /// [`ScanPool::threads`] keeps reporting the configured lane count,
    /// which is what the simulated latency model and the morsel
    /// counters are derived from.
    pub fn new(threads: usize) -> Arc<ScanPool> {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: crossbeam::deque::Injector::new(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(threads);
        let physical = (threads - 1).min(host.saturating_sub(1));
        let mut helpers = Vec::with_capacity(physical);
        for i in 0..physical {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("smdb-scan-{i}"));
            // A failed spawn (resource exhaustion) degrades to fewer
            // helpers; the submitting lane always exists.
            if let Ok(handle) = builder.spawn(move || helper_loop(&shared)) {
                helpers.push(handle);
            }
        }
        Arc::new(ScanPool {
            shared,
            threads,
            helpers,
        })
    }

    /// Total scan lanes (submitter + helpers as configured).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(0..morsels)` across the pool, blocking until every
    /// morsel has run. The submitting thread participates (it claims
    /// morsels before waiting), so progress never depends on a helper
    /// being free. Returns `false` if a morsel panicked (its output is
    /// missing); the pool itself survives panics.
    pub fn run<F>(&self, morsels: usize, task: F) -> bool
    where
        F: Fn(usize) + Sync,
    {
        if morsels == 0 {
            return true;
        }
        let erased: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: lifetime erasure. `run` does not return until
        // `remaining` hits zero, i.e. until every dereference of this
        // pointer has completed, so the borrow never escapes this call.
        let raw: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(erased as *const (dyn Fn(usize) + Sync)) };
        let job = Arc::new(JobState {
            task: TaskPtr(raw),
            morsels,
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(morsels),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        let _span = span!("storage", "scan_job", { morsels: morsels });
        pool_metrics().jobs.inc();
        // One steal ticket per helper at most — a helper drains the
        // whole job once it holds a ticket.
        let tickets = self.helpers.len().min(morsels.saturating_sub(1));
        if tickets > 0 {
            for _ in 0..tickets {
                self.shared.queue.push(Arc::clone(&job));
            }
            self.shared.publish_depth();
            let _g = lock_recover(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        // Caller helps first: claim and run morsels of our own job.
        work_on(&job);
        // Wait for morsels claimed by helpers to finish.
        let mut done = lock_recover(&job.done);
        while !*done {
            done = match job.done_cv.wait(done) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        !job.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let _g = lock_recover(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for handle in self.helpers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims morsels from `job` until its cursor is exhausted. The
/// `morsels_executed` tally is batched into one counter add when the
/// claim loop drains — per-morsel bookkeeping is kept to two atomics.
fn work_on(job: &JobState) {
    let mut executed = 0u64;
    loop {
        let i = job.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= job.morsels {
            break;
        }
        // SAFETY: `i < morsels` means this claim is unique and the
        // submitter is still blocked in `run`, keeping the task alive.
        let task = unsafe { &*job.task.0 };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)));
        if outcome.is_err() {
            job.panicked.store(true, Ordering::Relaxed);
        }
        executed += 1;
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = lock_recover(&job.done);
            *done = true;
            job.done_cv.notify_all();
        }
    }
    if executed > 0 {
        pool_metrics().morsels_executed.add(executed);
    }
}

/// Helper thread main loop: sleep until work is queued, steal a ticket,
/// drain that job, repeat.
fn helper_loop(shared: &PoolShared) {
    loop {
        let ticket = {
            let mut guard = lock_recover(&shared.sleep);
            loop {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = shared.queue.steal().success() {
                    break job;
                }
                guard = match shared.wake.wait(guard) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        shared.publish_depth();
        work_on(&ticket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn morsel_ranges_cover_everything_once() {
        assert_eq!(morsel_ranges(0, 4), vec![]);
        assert_eq!(morsel_ranges(5, 2), vec![(0, 2), (2, 4), (4, 5)]);
        assert_eq!(morsel_ranges(5, 0), vec![(0, 5)]);
        assert_eq!(morsel_ranges(3, 100), vec![(0, 3)]);
        for chunks in 0..40usize {
            for size in 0..10usize {
                let ranges = morsel_ranges(chunks, size);
                let covered: usize = ranges.iter().map(|(s, e)| e - s).sum();
                assert_eq!(covered, chunks, "chunks {chunks} size {size}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
            }
        }
    }

    #[test]
    fn simulated_latency_is_critical_path() {
        // 4 morsels of 1 ms on 2 lanes: each lane gets 2 ms.
        let lat = simulated_latency(&[1.0, 1.0, 1.0, 1.0], 2, 0.0);
        assert!((lat.ms() - 2.0).abs() < 1e-12);
        // One lane degrades to the sum.
        let lat = simulated_latency(&[1.0, 2.0, 3.0], 1, 0.0);
        assert!((lat.ms() - 6.0).abs() < 1e-12);
        // More lanes than morsels: latency is the largest morsel.
        let lat = simulated_latency(&[5.0, 1.0], 8, 0.0);
        assert!((lat.ms() - 5.0).abs() < 1e-12);
        // Dispatch overhead is charged per morsel on its lane.
        let lat = simulated_latency(&[1.0, 1.0], 2, 0.5);
        assert!((lat.ms() - 1.5).abs() < 1e-12);
        // Latency never exceeds total work plus total dispatch.
        let costs = [0.3, 0.9, 0.1, 2.0, 0.7];
        for lanes in 1..8 {
            let lat = simulated_latency(&costs, lanes, 0.01).ms();
            let total: f64 = costs.iter().sum::<f64>() + 0.05;
            assert!(lat <= total + 1e-12, "lanes {lanes}");
            assert!(lat >= 2.0, "critical path at least the largest morsel");
        }
    }

    #[test]
    fn pool_runs_every_morsel_exactly_once() {
        let pool = ScanPool::new(4);
        for morsels in [1usize, 2, 7, 64] {
            let hits: Vec<AtomicU64> = (0..morsels).map(|_| AtomicU64::new(0)).collect();
            let clean = pool.run(morsels, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(clean);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "morsel {i}");
            }
        }
    }

    #[test]
    fn pool_without_helpers_still_completes() {
        let pool = ScanPool::new(1);
        let count = AtomicU64::new(0);
        assert!(pool.run(5, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn submitter_makes_progress_while_helpers_are_busy() {
        // Occupy every helper of a 3-lane pool with a job that blocks
        // until released, then submit a light job from this thread: the
        // caller-helps-first protocol must complete it without any
        // helper becoming free (the no-starvation property).
        let pool = ScanPool::new(3);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let blocker = {
            let release = Arc::clone(&release);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                pool.run(2, |_| {
                    let (lock, cv) = &*release;
                    let mut open = lock_recover(lock);
                    while !*open {
                        open = match cv.wait(open) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                });
            })
        };
        // Give the blocker a moment to enqueue and occupy the helpers.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let count = AtomicU64::new(0);
        assert!(pool.run(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(count.load(Ordering::Relaxed), 4, "light job completed");
        {
            let (lock, cv) = &*release;
            *lock_recover(lock) = true;
            cv.notify_all();
        }
        blocker.join().expect("blocker finishes");
    }

    #[test]
    fn a_panicking_morsel_is_reported_and_the_pool_survives() {
        let pool = ScanPool::new(2);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let clean = pool.run(3, |i| {
            if i == 1 {
                panic!("injected");
            }
        });
        std::panic::set_hook(prev);
        assert!(!clean, "panic must be reported");
        let count = AtomicU64::new(0);
        assert!(pool.run(4, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(count.load(Ordering::Relaxed), 4, "pool still works");
    }
}
