//! Scan predicates and aggregates — the low-level query surface of the
//! storage engine.
//!
//! The query crate lowers its logical queries to these structures; the
//! engine evaluates them per chunk with encoding- and index-specific
//! paths.

use smdb_common::ColumnId;

use crate::value::Value;

/// Access-path rule: an index drives a scan only when the predicate's
/// estimated selectivity is at or below this threshold; broader
/// predicates scan (probing produces so many matches that per-match
/// costs exceed the sequential scan). The rule is deliberately public
/// and statistic-based so cost estimators can mirror the engine's
/// access-path choice exactly.
pub const INDEX_SELECTIVITY_THRESHOLD: f64 = 0.1;

/// Comparison operator of a scan predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateOp {
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
    /// Inclusive range `lo <= x <= hi`.
    Between,
}

impl PredicateOp {
    /// Whether the operator describes a range (benefits from ordered
    /// indexes) rather than a point lookup.
    pub fn is_range(self) -> bool {
        !matches!(self, PredicateOp::Eq)
    }
}

/// A single column-vs-constant predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPredicate {
    pub column: ColumnId,
    pub op: PredicateOp,
    /// Comparison value; for `Between` this is the lower bound.
    pub value: Value,
    /// Upper bound, only used by `Between`.
    pub upper: Option<Value>,
}

impl ScanPredicate {
    /// Point equality predicate.
    pub fn eq(column: ColumnId, value: impl Into<Value>) -> Self {
        ScanPredicate {
            column,
            op: PredicateOp::Eq,
            value: value.into(),
            upper: None,
        }
    }

    /// Single-sided comparison predicate.
    pub fn cmp(column: ColumnId, op: PredicateOp, value: impl Into<Value>) -> Self {
        debug_assert!(!matches!(op, PredicateOp::Between));
        ScanPredicate {
            column,
            op,
            value: value.into(),
            upper: None,
        }
    }

    /// Inclusive range predicate.
    pub fn between(column: ColumnId, lo: impl Into<Value>, hi: impl Into<Value>) -> Self {
        ScanPredicate {
            column,
            op: PredicateOp::Between,
            value: lo.into(),
            upper: Some(hi.into()),
        }
    }

    /// Evaluates the predicate against a concrete value.
    pub fn matches(&self, v: &Value) -> bool {
        match self.op {
            PredicateOp::Eq => v == &self.value,
            PredicateOp::Lt => v < &self.value,
            PredicateOp::Le => v <= &self.value,
            PredicateOp::Gt => v > &self.value,
            PredicateOp::Ge => v >= &self.value,
            PredicateOp::Between => {
                // No upper bound degrades to equality.
                let hi = self.upper.as_ref().unwrap_or(&self.value);
                v >= &self.value && v <= hi
            }
        }
    }

    /// Whether a chunk whose column values span `[min, max]` can contain a
    /// match — used for chunk pruning.
    pub fn overlaps_range(&self, min: &Value, max: &Value) -> bool {
        match self.op {
            PredicateOp::Eq => &self.value >= min && &self.value <= max,
            PredicateOp::Lt => min < &self.value,
            PredicateOp::Le => min <= &self.value,
            PredicateOp::Gt => max > &self.value,
            PredicateOp::Ge => max >= &self.value,
            PredicateOp::Between => {
                let hi = self.upper.as_ref().unwrap_or(&self.value);
                max >= &self.value && min <= hi
            }
        }
    }
}

/// Aggregate operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// An aggregate over the rows matching the predicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    pub op: AggregateOp,
    /// Aggregated column; ignored for `Count`.
    pub column: ColumnId,
}

impl Aggregate {
    /// Creates an aggregate specification.
    pub fn new(op: AggregateOp, column: ColumnId) -> Self {
        Aggregate { op, column }
    }

    /// `COUNT(*)`.
    pub fn count() -> Self {
        Aggregate {
            op: AggregateOp::Count,
            column: ColumnId(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches() {
        let p = ScanPredicate::eq(ColumnId(0), 5i64);
        assert!(p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(6)));
    }

    #[test]
    fn between_matches_inclusive() {
        let p = ScanPredicate::between(ColumnId(0), 2i64, 4i64);
        assert!(p.matches(&Value::Int(2)));
        assert!(p.matches(&Value::Int(4)));
        assert!(!p.matches(&Value::Int(5)));
        assert!(!p.matches(&Value::Int(1)));
    }

    #[test]
    fn comparisons_match() {
        let lt = ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 3i64);
        assert!(lt.matches(&Value::Int(2)) && !lt.matches(&Value::Int(3)));
        let ge = ScanPredicate::cmp(ColumnId(0), PredicateOp::Ge, 3i64);
        assert!(ge.matches(&Value::Int(3)) && !ge.matches(&Value::Int(2)));
    }

    #[test]
    fn pruning_respects_ranges() {
        let min = Value::Int(10);
        let max = Value::Int(20);
        assert!(ScanPredicate::eq(ColumnId(0), 15i64).overlaps_range(&min, &max));
        assert!(!ScanPredicate::eq(ColumnId(0), 25i64).overlaps_range(&min, &max));
        assert!(!ScanPredicate::cmp(ColumnId(0), PredicateOp::Lt, 10i64).overlaps_range(&min, &max));
        assert!(ScanPredicate::cmp(ColumnId(0), PredicateOp::Le, 10i64).overlaps_range(&min, &max));
        assert!(ScanPredicate::between(ColumnId(0), 18i64, 30i64).overlaps_range(&min, &max));
        assert!(!ScanPredicate::between(ColumnId(0), 21i64, 30i64).overlaps_range(&min, &max));
    }

    #[test]
    fn range_detection() {
        assert!(!PredicateOp::Eq.is_range());
        assert!(PredicateOp::Between.is_range());
        assert!(PredicateOp::Lt.is_range());
    }
}
