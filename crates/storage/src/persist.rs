//! Binary (de)serialization of storage-layer state.
//!
//! Encodes the durable face of the engine with the `smdb-durable`
//! codec: raw table data (chunks are decoded to full columns and
//! re-chunked deterministically on load via [`Table::from_columns`],
//! so the on-disk form is encoding-independent) and configuration
//! state ([`ConfigSnapshot`], [`ConfigAction`]). Physical design is
//! *not* serialized with the data — recovery re-applies the recovered
//! configuration to rebuild indexes and encodings from raw values,
//! which keeps the snapshot format a pure function of the logical
//! content.

use smdb_common::{ChunkColumnRef, ChunkId, ColumnId, Error, Result, TableId};
use smdb_durable::{ByteReader, ByteWriter};

use crate::config::{ConfigAction, ConfigSnapshot, KnobKind};
use crate::encoding::EncodingKind;
use crate::index::IndexKind;
use crate::placement::Tier;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::value::{ColumnValues, DataType};

fn write_data_type(w: &mut ByteWriter, dt: DataType) {
    w.u8(match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
    });
}

fn read_data_type(r: &mut ByteReader) -> Result<DataType> {
    match r.u8()? {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Text),
        other => Err(Error::invalid(format!("unknown data type tag {other}"))),
    }
}

/// Writes one column's raw values.
pub fn write_column_values(w: &mut ByteWriter, col: &ColumnValues) {
    write_data_type(w, col.data_type());
    w.usize(col.len());
    match col {
        ColumnValues::Int(v) => v.iter().for_each(|&x| w.i64(x)),
        ColumnValues::Float(v) => v.iter().for_each(|&x| w.f64(x)),
        ColumnValues::Text(v) => v.iter().for_each(|x| w.str(x)),
    }
}

/// Reads one column's raw values.
pub fn read_column_values(r: &mut ByteReader) -> Result<ColumnValues> {
    let dt = read_data_type(r)?;
    let len = r.usize()?;
    Ok(match dt {
        DataType::Int => {
            let mut v = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                v.push(r.i64()?);
            }
            ColumnValues::Int(v)
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                v.push(r.f64()?);
            }
            ColumnValues::Float(v)
        }
        DataType::Text => {
            let mut v = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                v.push(r.str()?);
            }
            ColumnValues::Text(v)
        }
    })
}

/// Writes a schema.
pub fn write_schema(w: &mut ByteWriter, schema: &Schema) {
    w.usize(schema.arity());
    for def in schema.columns() {
        w.str(&def.name);
        write_data_type(w, def.data_type);
    }
}

/// Reads a schema.
pub fn read_schema(r: &mut ByteReader) -> Result<Schema> {
    let arity = r.usize()?;
    let mut defs = Vec::with_capacity(arity.min(1 << 12));
    for _ in 0..arity {
        let name = r.str()?;
        let dt = read_data_type(r)?;
        defs.push(ColumnDef::new(name, dt));
    }
    Schema::new(defs)
}

/// Writes a whole table: name, schema, chunking target, and every
/// column's raw values (chunk segments decoded and concatenated).
pub fn write_table(w: &mut ByteWriter, table: &Table) -> Result<()> {
    w.str(table.name());
    write_schema(w, table.schema());
    w.usize(table.target_chunk_rows());
    for (col_id, def) in table.schema().iter() {
        let mut full = ColumnValues::empty(def.data_type);
        for (_, chunk) in table.chunks() {
            let part = chunk.segment(col_id)?.decode();
            extend_column(&mut full, part)?;
        }
        write_column_values(w, &full);
    }
    Ok(())
}

/// Reads a table written by [`write_table`], re-chunking the raw
/// columns at the recorded target size.
pub fn read_table(r: &mut ByteReader) -> Result<Table> {
    let name = r.str()?;
    let schema = read_schema(r)?;
    let target_chunk_rows = r.usize()?;
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        columns.push(read_column_values(r)?);
    }
    Table::from_columns(name, schema, columns, target_chunk_rows)
}

fn extend_column(dst: &mut ColumnValues, src: ColumnValues) -> Result<()> {
    match (dst, src) {
        (ColumnValues::Int(d), ColumnValues::Int(s)) => d.extend(s),
        (ColumnValues::Float(d), ColumnValues::Float(s)) => d.extend(s),
        (ColumnValues::Text(d), ColumnValues::Text(s)) => d.extend(s),
        _ => return Err(Error::invalid("chunk segment type mismatch")),
    }
    Ok(())
}

fn write_ref(w: &mut ByteWriter, r: ChunkColumnRef) {
    w.u32(r.table.0);
    w.u32(u32::from(r.column.0));
    w.u32(r.chunk.0);
}

fn read_ref(r: &mut ByteReader) -> Result<ChunkColumnRef> {
    let table = r.u32()?;
    let column = u16::try_from(r.u32()?).map_err(|_| Error::invalid("column id overflow"))?;
    let chunk = r.u32()?;
    Ok(ChunkColumnRef::new(table, column, chunk))
}

fn write_index_kind(w: &mut ByteWriter, kind: IndexKind) {
    match kind {
        IndexKind::Hash => w.u8(0),
        IndexKind::BTree => w.u8(1),
        IndexKind::CompositeHash { second } => {
            w.u8(2);
            w.u32(u32::from(second.0));
        }
    }
}

fn read_index_kind(r: &mut ByteReader) -> Result<IndexKind> {
    match r.u8()? {
        0 => Ok(IndexKind::Hash),
        1 => Ok(IndexKind::BTree),
        2 => {
            let second =
                u16::try_from(r.u32()?).map_err(|_| Error::invalid("column id overflow"))?;
            Ok(IndexKind::CompositeHash {
                second: ColumnId(second),
            })
        }
        other => Err(Error::invalid(format!("unknown index kind tag {other}"))),
    }
}

fn write_encoding_kind(w: &mut ByteWriter, kind: EncodingKind) {
    w.u8(match kind {
        EncodingKind::Unencoded => 0,
        EncodingKind::Dictionary => 1,
        EncodingKind::RunLength => 2,
        EncodingKind::FrameOfReference => 3,
    });
}

fn read_encoding_kind(r: &mut ByteReader) -> Result<EncodingKind> {
    match r.u8()? {
        0 => Ok(EncodingKind::Unencoded),
        1 => Ok(EncodingKind::Dictionary),
        2 => Ok(EncodingKind::RunLength),
        3 => Ok(EncodingKind::FrameOfReference),
        other => Err(Error::invalid(format!("unknown encoding tag {other}"))),
    }
}

fn write_tier(w: &mut ByteWriter, tier: Tier) {
    w.u8(match tier {
        Tier::Hot => 0,
        Tier::Warm => 1,
        Tier::Cold => 2,
    });
}

fn read_tier(r: &mut ByteReader) -> Result<Tier> {
    match r.u8()? {
        0 => Ok(Tier::Hot),
        1 => Ok(Tier::Warm),
        2 => Ok(Tier::Cold),
        other => Err(Error::invalid(format!("unknown tier tag {other}"))),
    }
}

/// Writes a configuration snapshot.
pub fn write_config_snapshot(w: &mut ByteWriter, snap: &ConfigSnapshot) {
    w.usize(snap.indexes.len());
    for &(target, kind) in &snap.indexes {
        write_ref(w, target);
        write_index_kind(w, kind);
    }
    w.usize(snap.encodings.len());
    for &(target, kind) in &snap.encodings {
        write_ref(w, target);
        write_encoding_kind(w, kind);
    }
    w.usize(snap.placements.len());
    for &(table, chunk, tier) in &snap.placements {
        w.u32(table.0);
        w.u32(chunk.0);
        write_tier(w, tier);
    }
    w.f64(snap.buffer_pool_mb);
}

/// Reads a configuration snapshot.
pub fn read_config_snapshot(r: &mut ByteReader) -> Result<ConfigSnapshot> {
    let n = r.usize()?;
    let mut indexes = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let target = read_ref(r)?;
        let kind = read_index_kind(r)?;
        indexes.push((target, kind));
    }
    let n = r.usize()?;
    let mut encodings = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let target = read_ref(r)?;
        let kind = read_encoding_kind(r)?;
        encodings.push((target, kind));
    }
    let n = r.usize()?;
    let mut placements = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let table = TableId(r.u32()?);
        let chunk = ChunkId(r.u32()?);
        let tier = read_tier(r)?;
        placements.push((table, chunk, tier));
    }
    let buffer_pool_mb = r.f64()?;
    Ok(ConfigSnapshot {
        indexes,
        encodings,
        placements,
        buffer_pool_mb,
    })
}

/// Writes one configuration action.
pub fn write_config_action(w: &mut ByteWriter, action: &ConfigAction) {
    match action {
        ConfigAction::CreateIndex { target, kind } => {
            w.u8(0);
            write_ref(w, *target);
            write_index_kind(w, *kind);
        }
        ConfigAction::DropIndex { target } => {
            w.u8(1);
            write_ref(w, *target);
        }
        ConfigAction::SetEncoding { target, kind } => {
            w.u8(2);
            write_ref(w, *target);
            write_encoding_kind(w, *kind);
        }
        ConfigAction::SetPlacement { table, chunk, tier } => {
            w.u8(3);
            w.u32(table.0);
            w.u32(chunk.0);
            write_tier(w, *tier);
        }
        ConfigAction::SetKnob { knob, value } => {
            w.u8(4);
            match knob {
                KnobKind::BufferPoolMb => w.u8(0),
            }
            w.f64(*value);
        }
    }
}

/// Reads one configuration action.
pub fn read_config_action(r: &mut ByteReader) -> Result<ConfigAction> {
    match r.u8()? {
        0 => Ok(ConfigAction::CreateIndex {
            target: read_ref(r)?,
            kind: read_index_kind(r)?,
        }),
        1 => Ok(ConfigAction::DropIndex {
            target: read_ref(r)?,
        }),
        2 => Ok(ConfigAction::SetEncoding {
            target: read_ref(r)?,
            kind: read_encoding_kind(r)?,
        }),
        3 => Ok(ConfigAction::SetPlacement {
            table: TableId(r.u32()?),
            chunk: ChunkId(r.u32()?),
            tier: read_tier(r)?,
        }),
        4 => {
            let knob = match r.u8()? {
                0 => KnobKind::BufferPoolMb,
                other => return Err(Error::invalid(format!("unknown knob tag {other}"))),
            };
            Ok(ConfigAction::SetKnob {
                knob,
                value: r.f64()?,
            })
        }
        other => Err(Error::invalid(format!("unknown action tag {other}"))),
    }
}

/// Writes a list of actions with a count prefix.
pub fn write_actions(w: &mut ByteWriter, actions: &[ConfigAction]) {
    w.usize(actions.len());
    for a in actions {
        write_config_action(w, a);
    }
}

/// Reads a count-prefixed list of actions.
pub fn read_actions(r: &mut ByteReader) -> Result<Vec<ConfigAction>> {
    let n = r.usize()?;
    let mut actions = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        actions.push(read_config_action(r)?);
    }
    Ok(actions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConfigInstance;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("v", DataType::Float),
            ColumnDef::new("tag", DataType::Text),
        ])
        .unwrap();
        Table::from_columns(
            "events",
            schema,
            vec![
                ColumnValues::Int((0..10).collect()),
                ColumnValues::Float((0..10).map(|i| i as f64 * 0.5).collect()),
                ColumnValues::Text((0..10).map(|i| format!("t{i}")).collect()),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn table_roundtrips_including_rechunking() {
        let table = sample_table();
        let mut w = ByteWriter::new();
        write_table(&mut w, &table).unwrap();
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_table(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.name(), table.name());
        assert_eq!(back.rows(), table.rows());
        assert_eq!(back.chunk_count(), table.chunk_count());
        assert_eq!(back.schema(), table.schema());
        // Re-encoding the decoded table is byte-identical.
        let mut w2 = ByteWriter::new();
        write_table(&mut w2, &back).unwrap();
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn encoded_table_serializes_to_same_raw_bytes() {
        let mut table = sample_table();
        table
            .chunk_mut(ChunkId(0))
            .unwrap()
            .set_encoding(ColumnId(0), EncodingKind::Dictionary)
            .unwrap();
        let mut plain = ByteWriter::new();
        write_table(&mut plain, &sample_table()).unwrap();
        let mut encoded = ByteWriter::new();
        write_table(&mut encoded, &table).unwrap();
        assert_eq!(
            plain.into_bytes(),
            encoded.into_bytes(),
            "snapshots are encoding-independent"
        );
    }

    #[test]
    fn config_snapshot_roundtrips() {
        let mut c = ConfigInstance::default();
        c.indexes
            .insert(ChunkColumnRef::new(0, 1, 2), IndexKind::BTree);
        c.indexes.insert(
            ChunkColumnRef::new(0, 0, 0),
            IndexKind::CompositeHash {
                second: ColumnId(3),
            },
        );
        c.encodings
            .insert(ChunkColumnRef::new(1, 0, 0), EncodingKind::RunLength);
        c.placements.insert((TableId(0), ChunkId(3)), Tier::Warm);
        c.knobs.buffer_pool_mb = 192.0;
        let snap = ConfigSnapshot::from(&c);
        let mut w = ByteWriter::new();
        write_config_snapshot(&mut w, &snap);
        let bytes = w.into_bytes();
        let back = read_config_snapshot(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, snap);
        assert_eq!(ConfigInstance::from(&back), c);
    }

    #[test]
    fn all_action_variants_roundtrip() {
        let actions = vec![
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(1, 2, 3),
                kind: IndexKind::Hash,
            },
            ConfigAction::CreateIndex {
                target: ChunkColumnRef::new(1, 2, 3),
                kind: IndexKind::CompositeHash {
                    second: ColumnId(7),
                },
            },
            ConfigAction::DropIndex {
                target: ChunkColumnRef::new(0, 0, 0),
            },
            ConfigAction::SetEncoding {
                target: ChunkColumnRef::new(2, 1, 0),
                kind: EncodingKind::FrameOfReference,
            },
            ConfigAction::SetPlacement {
                table: TableId(4),
                chunk: ChunkId(9),
                tier: Tier::Cold,
            },
            ConfigAction::SetKnob {
                knob: KnobKind::BufferPoolMb,
                value: 48.5,
            },
        ];
        let mut w = ByteWriter::new();
        write_actions(&mut w, &actions);
        let bytes = w.into_bytes();
        let back = read_actions(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn corrupt_tags_error_cleanly() {
        let mut r = ByteReader::new(&[9]);
        assert!(read_data_type(&mut r).is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(read_tier(&mut r).is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(read_encoding_kind(&mut r).is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(read_index_kind(&mut r).is_err());
        let mut r = ByteReader::new(&[9]);
        assert!(read_config_action(&mut r).is_err());
    }
}
