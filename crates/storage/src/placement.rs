//! Data placement tiers.
//!
//! Chunks are placed on one of three tiers modelling a NUMA/tiered-memory
//! hierarchy: accesses to non-hot tiers pay a latency multiplier, part of
//! which the buffer pool hides (see [`crate::simcost`]). Moving a chunk
//! between tiers is a one-time reconfiguration cost proportional to its
//! size. Placement frees *hot* capacity: the engine's memory report
//! distinguishes per-tier residency so a memory constraint on the hot
//! tier makes placement a real optimization problem.

/// A placement tier for a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Tier {
    /// Fast local memory; multiplier 1.
    #[default]
    Hot,
    /// Remote-socket / far memory.
    Warm,
    /// Tiered slow storage (e.g. NVM / SSD-backed pool).
    Cold,
}

impl Tier {
    /// All tiers, for candidate enumeration.
    pub const ALL: [Tier; 3] = [Tier::Hot, Tier::Warm, Tier::Cold];

    /// Raw access-latency multiplier relative to the hot tier, before
    /// buffer-pool caching is applied.
    pub fn latency_multiplier(self) -> f64 {
        match self {
            Tier::Hot => 1.0,
            Tier::Warm => 4.0,
            Tier::Cold => 25.0,
        }
    }

    /// Short label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Hot => "hot",
            Tier::Warm => "warm",
            Tier::Cold => "cold",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers_increase_down_the_hierarchy() {
        assert!(Tier::Hot.latency_multiplier() < Tier::Warm.latency_multiplier());
        assert!(Tier::Warm.latency_multiplier() < Tier::Cold.latency_multiplier());
        assert_eq!(Tier::Hot.latency_multiplier(), 1.0);
    }

    #[test]
    fn default_is_hot() {
        assert_eq!(Tier::default(), Tier::Hot);
    }
}
