//! Table schemas.

use smdb_common::{ColumnId, Error, Result};

use crate::value::DataType;

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Creates a schema from column definitions. Column names must be
    /// unique.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::invalid(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column definitions, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The definition of column `id`.
    pub fn column(&self, id: ColumnId) -> Result<&ColumnDef> {
        self.columns
            .get(id.0 as usize)
            .ok_or_else(|| Error::not_found("column", format!("{id}")))
    }

    /// Resolves a column name to its id.
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(i as u16))
            .ok_or_else(|| Error::not_found("column", name))
    }

    /// Iterator over `(ColumnId, &ColumnDef)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &ColumnDef)> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, c)| (ColumnId(i as u16), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("price", DataType::Float),
            ColumnDef::new("name", DataType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        let id = s.column_id("price").unwrap();
        assert_eq!(id, ColumnId(1));
        assert_eq!(s.column(id).unwrap().data_type, DataType::Float);
    }

    #[test]
    fn unknown_column_errors() {
        let s = sample();
        assert!(s.column_id("nope").is_err());
        assert!(s.column(ColumnId(9)).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("a", DataType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = sample();
        let ids: Vec<_> = s.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
